"""Tests for repro.core.universe."""

import pytest

from repro.core.universe import Universe


class TestIntern:
    def test_first_label_gets_id_zero(self):
        assert Universe().intern("x") == 0

    def test_ids_are_dense_and_ordered(self):
        u = Universe()
        assert [u.intern(c) for c in "abc"] == [0, 1, 2]

    def test_interning_twice_returns_same_id(self):
        u = Universe()
        first = u.intern("x")
        u.intern("y")
        assert u.intern("x") == first

    def test_constructor_seeds_labels(self):
        u = Universe(["p", "q"])
        assert u.id_of("p") == 0
        assert u.id_of("q") == 1

    def test_intern_many_preserves_order(self):
        u = Universe()
        assert u.intern_many(["b", "a", "b"]) == [0, 1, 0]

    def test_mixed_label_types(self):
        u = Universe()
        assert u.intern(42) != u.intern("42")

    def test_tuple_labels_are_hashable_entities(self):
        u = Universe()
        assert u.intern(("row", 3)) == 0
        assert u.label(0) == ("row", 3)


class TestLookup:
    def test_label_round_trip(self):
        u = Universe()
        for label in ("x", "y", "z"):
            assert u.label(u.intern(label)) == label

    def test_labels_vectorised(self):
        u = Universe(["a", "b", "c"])
        assert u.labels([2, 0]) == ["c", "a"]

    def test_id_of_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Universe().id_of("missing")

    def test_label_of_unknown_id_raises(self):
        with pytest.raises(IndexError):
            Universe(["a"]).label(5)

    def test_label_of_negative_id_raises(self):
        with pytest.raises(IndexError):
            Universe(["a"]).label(-1)

    def test_contains(self):
        u = Universe(["a"])
        assert "a" in u
        assert "b" not in u


class TestProtocol:
    def test_len_counts_distinct_labels(self):
        u = Universe(["a", "b", "a"])
        assert len(u) == 2

    def test_iteration_order_is_id_order(self):
        u = Universe(["c", "a", "b"])
        assert list(u) == ["c", "a", "b"]

    def test_as_sequence_is_immutable_snapshot(self):
        u = Universe(["a"])
        seq = u.as_sequence()
        u.intern("b")
        assert seq == ("a",)

    def test_repr_mentions_size(self):
        assert "2" in repr(Universe(["a", "b"]))

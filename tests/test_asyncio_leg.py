"""Native pytest-asyncio tests for the async serving front-end.

The bulk of the async-service suite (``test_async_service.py``) drives
its own event loops via ``asyncio.run`` so it runs everywhere; this
module is the part that exercises the service under **pytest-asyncio's
own loop management** (``@pytest.mark.asyncio`` coroutine tests sharing
the plugin-provided loop), which is how downstream asyncio applications
will actually host it.  CI's asyncio leg installs the plugin; without it
this module skips itself.
"""

from __future__ import annotations

import asyncio

import pytest

pytest.importorskip("pytest_asyncio")

from repro.core.discovery import DiscoverySession  # noqa: E402
from repro.core.selection import InfoGainSelector, MostEvenSelector  # noqa: E402
from repro.data.synthetic import SyntheticConfig, generate_collection  # noqa: E402
from repro.oracle import SimulatedUser  # noqa: E402
from repro.serve import AsyncDiscoveryService  # noqa: E402


def make_collection(n_sets: int = 60, seed: int = 3):
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=10, size_hi=16, overlap=0.8, seed=seed
        ),
        backend="bigint",
    )


@pytest.mark.asyncio
async def test_service_under_plugin_managed_loop():
    # The service must bind to whatever loop the host framework provides
    # (here: pytest-asyncio's), not only loops it created itself.
    collection = make_collection()
    async with AsyncDiscoveryService(
        collection, flush_after_ms=1.0, max_batch=4
    ) as service:
        keys = [service.spawn(InfoGainSelector()) for _ in range(6)]
        oracles = {
            k: SimulatedUser(collection, target_index=7 + j)
            for j, k in enumerate(keys)
        }

        async def drive(key):
            while (entity := await service.ask(key)) is not None:
                service.answer(key, oracles[key](entity))
            return await service.result(key)

        results = await asyncio.gather(*(drive(k) for k in keys))
    assert all(r.resolved for r in results)
    # parity against sequential runs on the same loop-less path
    for j, key in enumerate(keys):
        expected = DiscoverySession(collection, InfoGainSelector()).run(
            SimulatedUser(collection, target_index=7 + j)
        )
        assert results[j].transcript == expected.transcript


@pytest.mark.asyncio
async def test_cancellation_under_plugin_managed_loop():
    collection = make_collection(n_sets=40)
    async with AsyncDiscoveryService(
        collection, flush_after_ms=50.0, max_batch=None
    ) as service:
        key = service.spawn(MostEvenSelector())
        task = asyncio.create_task(service.ask(key))
        await asyncio.sleep(0)
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        oracle = SimulatedUser(collection, target_index=3)
        while (entity := await service.ask(key)) is not None:
            service.answer(key, oracle(entity))
        assert (await service.result(key)).resolved

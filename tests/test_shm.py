"""Shared-memory shard executor: wire format, lifecycle, parity, leaks.

The randomized cross-executor parity sweep lives in
``tests/test_parity_fuzz.py``; this module pins down the *mechanics* of
``executor="shm"`` (:mod:`repro.core.kernels.shm`):

* the argument wire format (``_all_eids`` travels as a sentinel, shared
  ``eids`` objects stay shared after decode);
* segment publish/attach — the worker-side kernel rebuild is exercised
  in-process over the parent's own segment buffer;
* the refcounted worker/segment lifecycle: lazy spawn, close/unlink,
  reopen-after-close, epoch sharing via ``from_delta`` (clean shards keep
  the parent's worker, dirty shards respawn), and error propagation from
  a worker without killing it;
* the fork-registry leak guard for the plain ``"process"`` executor:
  ``close()`` and garbage collection both shrink ``_FORK_REGISTRY``.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro.core.bitmask import popcount
from repro.core.collection import DeltaBatch, SetCollection
from repro.core.kernels import HAS_NUMPY
from repro.core.kernels import shm as shm_mod
from repro.core.kernels.sharded import (
    _FORK_REGISTRY,
    ShardedKernel,
    _fork_available,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

needs_shm = pytest.mark.skipif(
    not (shm_mod.HAS_SHM and _fork_available()),
    reason="shm executor needs numpy, shared_memory and fork",
)
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="needs numpy")
needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="needs the fork start method"
)


def raw_sets(n_sets: int = 30, seed: int = 3) -> list[list[str]]:
    rng = random.Random(seed)
    seen: set[frozenset[str]] = set()
    out: list[list[str]] = []
    while len(out) < n_sets:
        s = frozenset(
            f"e{rng.randrange(20)}" for _ in range(rng.randint(2, 6))
        )
        if len(s) >= 2 and s not in seen:
            seen.add(s)
            out.append(sorted(s))
    return out


def build(raw, **kwargs) -> SetCollection:
    return SetCollection(raw, **kwargs)


def assert_results_equal(a, b) -> None:
    (ea, ca), (eb, cb) = a, b
    assert list(map(int, ea)) == list(map(int, eb))
    assert list(map(int, ca)) == list(map(int, cb))


def scan_all(coll: SetCollection):
    """One of each statistic, through the collection's kernel."""
    kernel = coll._kernel
    mask = coll.full_mask
    n = popcount(mask)
    eids = sorted(coll.entity_ids())
    em = coll.entity_mask(eids[0])
    narrowed = mask & ~em if popcount(mask & ~em) >= 2 else mask
    return (
        kernel.scan_informative(mask, n, None),
        kernel.scan_informative(mask, n, eids[:5]),
        kernel.scan_informative_many(
            [mask, narrowed], [n, popcount(narrowed)]
        ),
        list(map(int, kernel.positive_counts(mask, eids))),
        [
            (int(p), int(r))
            for p, r in kernel.partition_many(narrowed, eids[:4])
        ],
    )


def assert_parity(coll: SetCollection, ref: SetCollection) -> None:
    got, want = scan_all(coll), scan_all(ref)
    assert_results_equal(got[0], want[0])
    assert_results_equal(got[1], want[1])
    for g, w in zip(got[2], want[2]):
        assert_results_equal(g, w)
    assert got[3] == want[3]
    assert got[4] == want[4]


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


class TestWireFormat:
    def test_all_eids_replaced_by_identity(self):
        eids = [1, 2, 3]
        look_alike = [1, 2, 3]
        args = (0, (5, eids), [eids, look_alike])
        enc = shm_mod.encode_args(args, eids)
        # The identical object becomes the sentinel; the equal-but-distinct
        # look-alike passes through as data (identity, not equality).
        assert enc == (
            0,
            (5, shm_mod.ALL_EIDS_SENTINEL),
            [shm_mod.ALL_EIDS_SENTINEL, [1, 2, 3]],
        )

    def test_decode_maps_every_sentinel_to_one_object(self):
        worker_eids = [7, 8]
        enc = (
            0,
            (shm_mod.ALL_EIDS_SENTINEL, 1),
            [shm_mod.ALL_EIDS_SENTINEL],
        )
        dec = shm_mod.decode_args(enc, worker_eids)
        assert dec[1][0] is worker_eids
        assert dec[2][0] is worker_eids
        # id()-grouping in the scan block relies on this identity.
        assert dec[1][0] is dec[2][0]

    def test_roundtrip_preserves_other_values(self):
        args = (3, "x", ["y", 4.5, None], (1, 2))
        enc = shm_mod.encode_args(args, object())
        assert shm_mod.decode_args(enc, object()) == args


# --------------------------------------------------------------------- #
# Segments and the worker-side rebuild (in-process)
# --------------------------------------------------------------------- #


@needs_shm
class TestSegments:
    def test_segment_roundtrips_matrix_bytes(self):
        matrix = np.arange(12, dtype=np.uint64).reshape(3, 4)
        seg = shm_mod.ShardSegment(matrix)
        try:
            got = np.frombuffer(
                bytes(seg.shm.buf[: seg.nbytes]), dtype=np.uint64
            )
            assert (got == matrix.ravel()).all()
        finally:
            seg.destroy()
        assert seg.destroyed

    def test_segment_is_a_snapshot(self):
        matrix = np.ones((2, 2), dtype=np.uint64)
        seg = shm_mod.ShardSegment(matrix)
        try:
            matrix[0, 0] = 99
            got = np.frombuffer(
                bytes(seg.shm.buf[: seg.nbytes]), dtype=np.uint64
            )
            assert got[0] == 1
        finally:
            seg.destroy()

    def test_zero_row_matrix_gets_one_byte_segment(self):
        seg = shm_mod.ShardSegment(np.empty((0, 3), dtype=np.uint64))
        try:
            assert seg.nbytes == 0
            assert seg.shm.size >= 1
        finally:
            seg.destroy()

    def test_destroy_is_idempotent(self):
        seg = shm_mod.ShardSegment(np.zeros((1, 1), dtype=np.uint64))
        seg.destroy()
        seg.destroy()
        assert seg.destroyed

    def test_attached_kernel_matches_parent_shard(self):
        coll = build(
            raw_sets(), backend="numpy", shards=3, shard_executor="serial"
        )
        parent = coll._kernel
        shard = 1
        spec = shm_mod.build_shard_spec(parent, shard)
        seg = shm_mod.ShardSegment(parent._shards[shard]._matrix)
        kernel = shell = None
        try:
            kernel = shm_mod.attach_shard_kernel(spec, seg.shm.buf)
            shell = shm_mod.build_owner_shell(spec, kernel)
            assert shell.n_shards == parent.n_shards
            assert shell._shards[shard] is kernel
            sm = parent._slice(coll.full_mask, shard)
            want = parent._shard_all_counts(shard, sm)
            got = shell._shard_all_counts(shard, sm)
            assert list(map(int, got)) == list(map(int, want))
            w_full, w_cand = parent._shard_scan_block(
                shard, (coll.full_mask,), ()
            )
            g_full, g_cand = shell._shard_scan_block(
                shard, (coll.full_mask,), ()
            )
            assert [list(map(int, c)) for c in g_full] == [
                list(map(int, c)) for c in w_full
            ]
            assert g_cand == w_cand == []
        finally:
            # Drop the matrix view before closing the mapping.
            if shell is not None:
                shell._shards[shard] = None
            if kernel is not None:
                kernel._matrix = None
                del kernel
            seg.destroy()


# --------------------------------------------------------------------- #
# The shm executor end to end
# --------------------------------------------------------------------- #


@needs_shm
class TestShmExecutor:
    def test_parity_with_serial(self):
        raw = raw_sets()
        ref = build(raw, backend="numpy", shards=3, shard_executor="serial")
        coll = build(raw, backend="numpy", shards=3, shard_executor="shm")
        try:
            assert coll._kernel.executor_kind == "shm"
            assert_parity(coll, ref)
        finally:
            coll._kernel.close()

    @pytest.mark.skipif(
        not shm_mod.HAS_NATIVE, reason="needs the compiled extension"
    )
    def test_parity_with_serial_native_base(self):
        raw = raw_sets(seed=4)
        ref = build(raw, backend="native", shards=3, shard_executor="serial")
        coll = build(raw, backend="native", shards=3, shard_executor="shm")
        try:
            assert_parity(coll, ref)
        finally:
            coll._kernel.close()

    def test_workers_spawn_lazily(self):
        coll = build(
            raw_sets(), backend="numpy", shards=3, shard_executor="shm"
        )
        kernel = coll._kernel
        try:
            assert kernel._shm_workers == [None, None, None]
            kernel.scan_informative(coll.full_mask, coll.n_sets, None)
            assert all(w is not None for w in kernel._shm_workers)
            assert all(not w.closed for w in kernel._shm_workers)
        finally:
            kernel.close()

    def test_close_unlinks_segments_and_reopen_respawns(self):
        from multiprocessing import shared_memory

        coll = build(
            raw_sets(), backend="numpy", shards=3, shard_executor="shm"
        )
        kernel = coll._kernel
        kernel.scan_informative(coll.full_mask, coll.n_sets, None)
        workers = list(kernel._shm_workers)
        names = [w._segment.name for w in workers]
        kernel.close()
        assert kernel._shm_workers is None
        assert all(w.closed for w in workers)
        assert all(w._segment.destroyed for w in workers)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        kernel.close()  # idempotent
        # The kernel stays usable: workers respawn on the next fan-out.
        ref = build(
            raw_sets(), backend="numpy", shards=3, shard_executor="serial"
        )
        try:
            assert_parity(coll, ref)
            assert all(w is not None for w in kernel._shm_workers)
        finally:
            kernel.close()

    def test_worker_error_propagates_without_killing_worker(self):
        coll = build(
            raw_sets(), backend="numpy", shards=3, shard_executor="shm"
        )
        kernel = coll._kernel
        try:
            kernel.scan_informative(coll.full_mask, coll.n_sets, None)
            worker = kernel._shm_workers[0]
            thunk = worker.submit("_no_such_method", ())
            with pytest.raises(RuntimeError, match="_no_such_method"):
                thunk()
            # The serve loop answered the error and kept going.
            ref = build(
                raw_sets(), backend="numpy", shards=3,
                shard_executor="serial",
            )
            assert_parity(coll, ref)
        finally:
            kernel.close()

    def test_bigint_base_rejected(self):
        with pytest.raises(ValueError, match="vectorized base"):
            build(
                raw_sets(), backend="bigint", shards=2, shard_executor="shm"
            )

    def test_env_requested_shm_degrades_on_bigint(self, monkeypatch):
        # The env var is a soft preference (a blanket
        # REPRO_SHARD_EXECUTOR=shm CI leg must not crash big-int
        # kernels), unlike the hard explicit-argument rejection above.
        import repro.core.kernels.sharded as sharded_mod
        from repro.core.kernels.sharded import (
            SHARD_EXECUTOR_ENV_VAR,
            ShardExecutorFallbackWarning,
        )

        monkeypatch.setenv(SHARD_EXECUTOR_ENV_VAR, "shm")
        monkeypatch.setattr(sharded_mod, "_executor_fallback_warned", False)
        with pytest.warns(ShardExecutorFallbackWarning, match="packed matrix"):
            coll = build(raw_sets(), backend="bigint", shards=2)
        assert coll._kernel.executor_kind == "thread"
        ref = build(raw_sets(), backend="bigint")
        assert_parity(coll, ref)


@needs_shm
class TestShmDelta:
    def _delta_same_entities(self, coll: SetCollection) -> DeltaBatch:
        """Adds one set of already-known labels: entity keys unchanged,
        so only the last shard is dirty and clean shards stay shared."""
        labels = [coll.universe.label(e) for e in sorted(coll.entity_ids())]
        # Seven members: wider than any generated set, so never a duplicate.
        return DeltaBatch().add_sets({"delta-extra": labels[:7]})

    def test_from_delta_republishes_only_dirty_shards(self):
        raw = raw_sets(seed=5)
        coll = build(raw, backend="numpy", shards=3, shard_executor="shm")
        kernel = coll._kernel
        kernel.scan_informative(coll.full_mask, coll.n_sets, None)
        old_workers = list(kernel._shm_workers)
        new_coll = coll.apply_delta(self._delta_same_entities(coll))
        new_kernel = new_coll._kernel
        try:
            assert isinstance(new_kernel, ShardedKernel)
            assert new_kernel.executor_kind == "shm"
            # Clean shards carried the parent's worker (one extra ref);
            # the dirty last shard starts unpublished.
            assert new_kernel._shm_workers[0] is old_workers[0]
            assert new_kernel._shm_workers[1] is old_workers[1]
            assert new_kernel._shm_workers[-1] is None
            ref = build(
                raw, backend="numpy", shards=3, shard_executor="serial"
            ).apply_delta(self._delta_same_entities(coll))
            assert_parity(new_coll, ref)
        finally:
            new_kernel.close()
            kernel.close()

    def test_epoch_sharing_keeps_workers_until_last_close(self):
        raw = raw_sets(seed=6)
        coll = build(raw, backend="numpy", shards=3, shard_executor="shm")
        kernel = coll._kernel
        kernel.scan_informative(coll.full_mask, coll.n_sets, None)
        new_coll = coll.apply_delta(self._delta_same_entities(coll))
        new_kernel = new_coll._kernel
        shared = new_kernel._shm_workers[0]
        assert shared is kernel._shm_workers[0]
        # Old epoch closes first: the shared worker must survive for the
        # new epoch, which still fans out through it.
        kernel.close()
        assert not shared.closed
        ref = build(
            raw, backend="numpy", shards=3, shard_executor="serial"
        ).apply_delta(self._delta_same_entities(coll))
        assert_parity(new_coll, ref)
        new_kernel.close()
        assert shared.closed
        assert shared._segment.destroyed


# --------------------------------------------------------------------- #
# Fork-registry hygiene (the "process" executor)
# --------------------------------------------------------------------- #


@needs_numpy
@needs_fork
class TestForkRegistry:
    def test_close_shrinks_registry(self):
        gc.collect()
        baseline = len(_FORK_REGISTRY)
        colls = [
            build(
                raw_sets(seed=s),
                backend="numpy",
                shards=2,
                shard_executor="process",
            )
            for s in range(3)
        ]
        assert len(_FORK_REGISTRY) == baseline + 3
        for coll in colls:
            coll._kernel.close()
        assert len(_FORK_REGISTRY) == baseline

    def test_abandoned_kernel_leaves_no_registry_entry(self):
        gc.collect()
        baseline = len(_FORK_REGISTRY)
        coll = build(
            raw_sets(seed=9),
            backend="numpy",
            shards=2,
            shard_executor="process",
        )
        assert len(_FORK_REGISTRY) == baseline + 1
        del coll
        gc.collect()
        assert len(_FORK_REGISTRY) == baseline

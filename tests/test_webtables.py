"""Tests for repro.data.webtables (web-tables substitute, Sec. 5.2.1)."""

import pytest

from repro.core.bitmask import popcount
from repro.data.webtables import (
    DEFAULT_STOPWORDS,
    WebTableConfig,
    WebTableWorkload,
    clean_sets,
    generate_webtable_collection,
    generate_webtable_sets,
    initial_pair_subcollections,
    is_all_numeric,
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        WebTableConfig()

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            WebTableConfig(n_sets=0)
        with pytest.raises(ValueError):
            WebTableConfig(n_domains=1)
        with pytest.raises(ValueError):
            WebTableConfig(size_lo=2)


class TestIsAllNumeric:
    def test_numeric_strings(self):
        assert is_all_numeric(["1", "2.5", "-3"])

    def test_mixed(self):
        assert not is_all_numeric(["1", "two"])

    def test_empty_iterable_is_not_numeric(self):
        assert not is_all_numeric([])


class TestCleaning:
    def test_paper_rules(self):
        raw = [
            ["Steve Nash", "Kobe Bryant", "Tracy McGrady", "unknown"],
            ["1", "2", "3", "4"],                 # all numeric: dropped
            ["a", "b"],                           # too small: dropped
            ["x", "x", "y", "z"],                 # dup entries collapse
            ["x", "y", "z"],                      # duplicate set: dropped
            ["total", "tba", "p", "q", "r"],      # stopwords removed
        ]
        cleaned = clean_sets(raw)
        assert frozenset({"Steve Nash", "Kobe Bryant", "Tracy McGrady"}) in cleaned
        assert frozenset({"x", "y", "z"}) in cleaned
        assert frozenset({"p", "q", "r"}) in cleaned
        assert len(cleaned) == 3

    def test_min_size_applies_after_stopword_removal(self):
        raw = [["unknown", "tba", "a", "b", "c"]]
        assert clean_sets(raw, min_size=4) == []
        assert clean_sets(raw, min_size=3) == [frozenset({"a", "b", "c"})]

    def test_stopwords_case_insensitive(self):
        raw = [["Unknown", "TBA", "a", "b", "c"]]
        assert clean_sets(raw) == [frozenset({"a", "b", "c"})]

    def test_numeric_check_can_be_disabled(self):
        raw = [["1", "2", "3"]]
        assert clean_sets(raw, drop_all_numeric=False) == [
            frozenset({"1", "2", "3"})
        ]

    def test_default_stopwords_cover_paper_keywords(self):
        assert {"unknown", "tba", "total"} <= set(DEFAULT_STOPWORDS)


class TestGeneration:
    def test_deterministic(self):
        cfg = WebTableConfig(n_sets=100, seed=5)
        assert generate_webtable_sets(cfg) == generate_webtable_sets(cfg)

    def test_collection_has_min_three_elements_per_set(self):
        coll = generate_webtable_collection(WebTableConfig(n_sets=300))
        for s in coll.sets:
            assert len(s) >= 3

    def test_noise_tokens_removed(self):
        coll = generate_webtable_collection(WebTableConfig(n_sets=300))
        labels = {
            str(coll.universe.label(e)).lower()
            for e in coll.entity_ids()
        }
        assert not labels & {"unknown", "tba", "total"}

    def test_domain_structure_creates_overlap(self):
        """Sets from the same latent domain must overlap a lot more than
        sets from different domains (the structure discovery relies on)."""
        coll = generate_webtable_collection(
            WebTableConfig(n_sets=400, n_domains=10, seed=3)
        )
        # Popular entities co-occur in many sets.
        best = max(
            popcount(coll.entity_mask(e)) for e in coll.entity_ids()
        )
        assert best >= 20


class TestInitialPairs:
    def test_pairs_meet_candidate_floor(self):
        coll = generate_webtable_collection(WebTableConfig(n_sets=400))
        pairs = initial_pair_subcollections(coll, min_candidates=10)
        for pair in pairs:
            assert pair.n_candidates >= 10
            joint = coll.entity_mask(pair.entity_a) & coll.entity_mask(
                pair.entity_b
            )
            assert pair.mask == joint

    def test_max_pairs_is_deterministic(self):
        coll = generate_webtable_collection(WebTableConfig(n_sets=400))
        a = initial_pair_subcollections(
            coll, min_candidates=5, max_pairs=7, seed=1
        )
        b = initial_pair_subcollections(
            coll, min_candidates=5, max_pairs=7, seed=1
        )
        assert [(p.entity_a, p.entity_b) for p in a] == [
            (p.entity_a, p.entity_b) for p in b
        ]
        assert len(a) == 7

    def test_min_candidates_validation(self):
        coll = generate_webtable_collection(WebTableConfig(n_sets=200))
        with pytest.raises(ValueError):
            initial_pair_subcollections(coll, min_candidates=1)

    def test_workload_builder(self):
        workload = WebTableWorkload.build(
            config=WebTableConfig(n_sets=300),
            min_candidates=8,
            max_pairs=5,
        )
        assert workload.collection.n_sets > 0
        assert len(workload.pairs) <= 5
        assert list(workload) == workload.pairs
        assert all(
            s >= 8 for s in workload.subcollection_sizes()
        )

"""Tests for repro.relational.generator (Sec. 5.2.3 steps 1-5)."""

import pytest

from repro.relational.generator import (
    GeneratorConfig,
    categorical_condition,
    generate_candidate_queries,
    numerical_conditions,
)
from repro.relational.table import Column, ColumnKind, Table


@pytest.fixture
def table() -> Table:
    columns = [
        Column("city", ColumnKind.CATEGORICAL),
        Column("hand", ColumnKind.CATEGORICAL),
        Column("height", ColumnKind.NUMERICAL),
        Column("weight", ColumnKind.NUMERICAL),
    ]
    rows = [
        {"city": "Chicago", "hand": "L", "height": 62, "weight": 150},
        {"city": "Seattle", "hand": "L", "height": 73, "weight": 190},
        {"city": "Boston", "hand": "R", "height": 68, "weight": 170},
        {"city": "Chicago", "hand": "R", "height": 77, "weight": 230},
        {"city": "Miami", "hand": "L", "height": 66, "weight": 160},
    ]
    return Table("T", columns, rows)


@pytest.fixture
def config() -> GeneratorConfig:
    return GeneratorConfig(
        reference_values={
            "height": (60, 65, 70, 75, 80),
            "weight": (120, 160, 200, 240),
        },
        categorical=("city", "hand"),
        numerical=("height", "weight"),
    )


class TestCategoricalCondition:
    def test_two_distinct_values_give_disjunction(self, table):
        cond = categorical_condition(
            "city", [table.row(0), table.row(1)]
        )
        text = cond.describe()
        assert "Chicago" in text and "Seattle" in text and "OR" in text

    def test_same_value_gives_single_equality(self, table):
        cond = categorical_condition(
            "city", [table.row(0), table.row(3)]
        )
        assert cond.describe() == "city = 'Chicago'"

    def test_no_rows_raises(self):
        with pytest.raises(ValueError):
            categorical_condition("city", [])


class TestNumericalConditions:
    def test_paper_example(self, table):
        """Heights 62 and 73 with refs {60,65,70,75,80} must yield exactly
        the five conditions the paper lists."""
        from repro.relational.predicates import CNF, Gt, Lt

        conds = numerical_conditions(
            "height", (60, 65, 70, 75, 80), [table.row(0), table.row(1)]
        )
        assert set(conds) == {
            CNF([Gt("height", 60), Lt("height", 75)]),
            CNF([Gt("height", 60), Lt("height", 80)]),
            CNF([Gt("height", 60)]),
            CNF([Lt("height", 75)]),
            CNF([Lt("height", 80)]),
        }

    def test_bounds_are_strict(self, table):
        # Example value equal to a reference: that reference cannot bound.
        row = {"height": 65}
        conds = numerical_conditions("height", (60, 65, 70), [row])
        texts = {c.describe() for c in conds}
        assert "height > 65" not in texts
        assert "height < 65" not in texts
        assert "height > 60" in texts
        assert "height < 70" in texts

    def test_none_value_disables_column(self):
        assert (
            numerical_conditions("height", (60, 70), [{"height": None}])
            == []
        )

    def test_all_conditions_contain_examples(self, table):
        rows = [table.row(0), table.row(1)]
        for cond in numerical_conditions(
            "height", (60, 65, 70, 75, 80), rows
        ):
            assert all(cond.matches(r) for r in rows)


class TestGenerateCandidates:
    def test_every_candidate_contains_the_examples(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        examples = {0, 1}
        for query in result.queries:
            assert examples <= query.evaluate(), query.sql()

    def test_deduplication(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        conditions = [q.condition for q in result.queries]
        assert len(set(conditions)) == len(conditions)

    def test_single_and_two_column_queries_present(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        widths = {len(q.condition.columns()) for q in result.queries}
        assert widths == {1, 2}

    def test_max_columns_one(self, table, config):
        narrow = GeneratorConfig(
            reference_values=config.reference_values,
            categorical=config.categorical,
            numerical=config.numerical,
            max_columns=1,
        )
        result = generate_candidate_queries(table, [0, 1], narrow)
        assert all(
            len(q.condition.columns()) == 1 for q in result.queries
        )

    def test_count_matches_combinatorics(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        per_column = {
            col: len(conds)
            for col, conds in result.conditions_by_column.items()
        }
        singles = sum(per_column.values())
        import itertools

        pairs = sum(
            per_column[a] * per_column[b]
            for a, b in itertools.combinations(sorted(per_column), 2)
        )
        assert result.n_queries == singles + pairs

    def test_query_parts_align_with_queries(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        assert len(result.query_parts) == len(result.queries)
        for parts, query in zip(result.query_parts, result.queries):
            cols = {col for col, _ in parts}
            assert cols == set(query.condition.columns())

    def test_evaluate_all_matches_per_query_evaluation(self, table, config):
        result = generate_candidate_queries(table, [0, 1], config)
        fast = result.evaluate_all()
        slow = [q.evaluate() for q in result.queries]
        assert fast == slow

    def test_empty_examples_rejected(self, table, config):
        with pytest.raises(ValueError):
            generate_candidate_queries(table, [], config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(
                reference_values={}, numerical=("height",)
            )
        with pytest.raises(ValueError):
            GeneratorConfig(reference_values={}, max_columns=0)

    def test_single_example_row(self, table, config):
        result = generate_candidate_queries(table, [2], config)
        for query in result.queries:
            assert 2 in query.evaluate()

"""Tests for repro.relational.{table,predicates,query}."""

import pytest

from repro.relational.predicates import (
    CNF,
    Clause,
    Eq,
    Gt,
    Lt,
    interval,
)
from repro.relational.query import SelectQuery
from repro.relational.table import Column, ColumnKind, Table


@pytest.fixture
def people() -> Table:
    columns = [
        Column("name", ColumnKind.CATEGORICAL),
        Column("city", ColumnKind.CATEGORICAL),
        Column("height", ColumnKind.NUMERICAL),
    ]
    rows = [
        {"name": "ann", "city": "Chicago", "height": 62},
        {"name": "bob", "city": "Seattle", "height": 73},
        {"name": "cyd", "city": "Chicago", "height": 71},
        {"name": "dee", "city": "Boston", "height": 66},
    ]
    return Table("people", columns, rows)


class TestTable:
    def test_schema_accessors(self, people):
        assert people.column_names == ("name", "city", "height")
        assert people.categorical_columns() == ["name", "city"]
        assert people.numerical_columns() == ["height"]
        assert people.column("city").kind is ColumnKind.CATEGORICAL
        assert people.has_column("height")
        assert not people.has_column("weight")

    def test_unknown_column_raises_helpfully(self, people):
        with pytest.raises(KeyError, match="weight"):
            people.column("weight")

    def test_row_access(self, people):
        assert people.n_rows == 4
        assert len(people) == 4
        assert people.value(1, "city") == "Seattle"
        assert people.row(0)["name"] == "ann"

    def test_rows_iterator_yields_ids(self, people):
        ids = [rid for rid, _ in people.rows()]
        assert ids == [0, 1, 2, 3]

    def test_column_values_and_distinct(self, people):
        assert people.column_values("city") == [
            "Chicago", "Seattle", "Chicago", "Boston",
        ]
        assert people.distinct_values("city") == {
            "Chicago", "Seattle", "Boston",
        }

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Table("t", [], [])
        cols = [Column("a", ColumnKind.CATEGORICAL)] * 2
        with pytest.raises(ValueError):
            Table("t", cols, [])
        with pytest.raises(ValueError):
            Table(
                "t",
                [Column("a", ColumnKind.CATEGORICAL)],
                [{"b": 1}],
            )

    def test_column_name_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Column("", ColumnKind.NUMERICAL)

    def test_repr(self, people):
        assert "people" in repr(people)


class TestPredicates:
    def test_eq(self, people):
        pred = Eq("city", "Chicago")
        assert pred.matches(people.row(0))
        assert not pred.matches(people.row(1))
        assert pred.describe() == "city = 'Chicago'"

    def test_gt_lt(self, people):
        assert Gt("height", 70).matches(people.row(1))
        assert not Gt("height", 70).matches(people.row(0))
        assert Lt("height", 65).matches(people.row(0))

    def test_comparisons_treat_none_as_unknown(self):
        assert not Gt("h", 5).matches({"h": None})
        assert not Lt("h", 5).matches({"h": None})

    def test_clause_is_disjunction(self, people):
        clause = Clause((Eq("city", "Chicago"), Eq("city", "Seattle")))
        assert clause.matches(people.row(0))
        assert clause.matches(people.row(1))
        assert not clause.matches(people.row(3))
        assert "OR" in clause.describe()

    def test_clause_single_column_enforced(self):
        with pytest.raises(ValueError):
            Clause((Eq("city", "x"), Eq("name", "y")))
        with pytest.raises(ValueError):
            Clause(())

    def test_cnf_is_conjunction(self, people):
        cnf = CNF([Eq("city", "Chicago"), Gt("height", 65)])
        assert cnf.matches(people.row(2))
        assert not cnf.matches(people.row(0))  # Chicago but short

    def test_empty_cnf_is_true(self, people):
        assert CNF().matches(people.row(0))
        assert CNF().describe() == "TRUE"

    def test_cnf_flattens_nested_cnf(self):
        inner = CNF([Gt("height", 60)])
        outer = CNF([inner, Lt("height", 75)])
        assert len(outer.clauses) == 2

    def test_structural_equality_and_hash(self):
        a = CNF([Eq("city", "Chicago"), Gt("height", 60)])
        b = CNF([Gt("height", 60), Eq("city", "Chicago")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != CNF([Eq("city", "Boston")])

    def test_clause_canonical_order(self):
        a = Clause((Eq("c", "x"), Eq("c", "y")))
        b = Clause((Eq("c", "y"), Eq("c", "x")))
        assert a == b

    def test_interval_helper(self, people):
        cnf = interval("height", 60, 75)
        assert cnf.matches(people.row(1))
        assert len(cnf.clauses) == 2
        one_sided = interval("height", None, 65)
        assert one_sided.matches(people.row(0))
        with pytest.raises(ValueError):
            interval("height", None, None)

    def test_columns_reported(self):
        cnf = CNF([Eq("city", "x"), Gt("height", 1)])
        assert cnf.columns() == frozenset({"city", "height"})

    def test_conjoin(self, people):
        cnf = CNF([Eq("city", "Chicago")]).conjoin(Gt("height", 65))
        assert cnf.matches(people.row(2))
        assert not cnf.matches(people.row(0))


class TestSelectQuery:
    def test_evaluate(self, people):
        q = SelectQuery(people, CNF([Eq("city", "Chicago")]))
        assert q.evaluate() == frozenset({0, 2})

    def test_cardinality_matches_evaluate(self, people):
        q = SelectQuery(people, CNF([Gt("height", 64)]))
        assert q.cardinality() == len(q.evaluate())

    def test_contains_rows(self, people):
        q = SelectQuery(people, CNF([Gt("height", 64)]))
        assert q.contains_rows({1, 2})
        assert not q.contains_rows({0})

    def test_sql_rendering(self, people):
        q = SelectQuery(people, CNF([Eq("city", "Chicago")]))
        assert q.sql() == (
            "SELECT * FROM people WHERE city = 'Chicago'"
        )

    def test_conjoin_narrows(self, people):
        q = SelectQuery(people, CNF([Eq("city", "Chicago")]))
        narrowed = q.conjoin(Gt("height", 65))
        assert narrowed.evaluate() < q.evaluate()

    def test_empty_condition_selects_everything(self, people):
        assert SelectQuery(people, CNF()).evaluate() == frozenset(
            range(4)
        )

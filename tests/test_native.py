"""Gating, fallback and primitive-level tests for the native backend.

Parity of the native kernel against bigint/numpy is carried by the shared
harnesses (``test_parity_fuzz.py``, ``test_kernels.py``, the golden engine
transcripts); this file covers what is *specific* to the compiled
extension: backend resolution and auto-preference, the one-time fallback
warning when the extension is absent, sharded composition, and the C
primitives' buffer validation.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import kernels
from repro.core.collection import SetCollection
from repro.core.kernels import (
    HAS_NATIVE,
    HAS_NUMPY,
    NativeFallbackWarning,
    available_backends,
    resolve_backend_name,
)
from repro.core.kernels import native_backend

from conftest import FIG1_SETS

needs_native = pytest.mark.skipif(
    not HAS_NATIVE, reason="native extension not built"
)

RAW = [[0, 1, 2], [1, 2, 3], [2, 3, 4], [0, 4], [5]]


@pytest.fixture
def no_native(monkeypatch):
    """Simulate an environment where the extension failed to import."""
    monkeypatch.setattr(native_backend, "HAS_NATIVE", False)
    monkeypatch.setattr(kernels, "_native_fallback_warned", False)


class TestGating:
    @needs_native
    def test_explicit_native(self):
        coll = SetCollection(RAW, backend="native")
        assert coll.backend == "native"

    @needs_native
    def test_native_listed_as_available(self):
        assert "native" in available_backends()

    @needs_native
    def test_env_var_forces_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "native")
        assert SetCollection(RAW).backend == "native"

    @needs_native
    def test_auto_prefers_native_on_large_collections(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name("auto") == "native"

    @needs_native
    def test_auto_small_collection_still_prefers_bigint(self, monkeypatch):
        # The calibrated auto crossover applies to native exactly as it
        # does to numpy: tiny collections stay on the reference backend.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        coll = SetCollection.from_named_sets(FIG1_SETS)
        assert coll.backend == "bigint"

    @needs_native
    def test_sharded_native(self):
        coll = SetCollection(RAW, backend="native", shards=2)
        assert coll.backend == "native[x2]"
        assert coll.shards == 2
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    @needs_native
    def test_reshard_keeps_native_base(self):
        coll = SetCollection(RAW, backend="native")
        coll.reshard(2)
        assert coll.backend == "native[x2]"
        coll.reshard(None)
        assert coll.backend == "native"


class TestFallbackWarning:
    def test_fallback_warns_exactly_once(self, no_native):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = SetCollection(RAW, backend="native")
            second = SetCollection(RAW, backend="native")
        expected = "numpy" if HAS_NUMPY else "bigint"
        assert first.backend == expected
        assert second.backend == expected
        fallback = [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]
        assert len(fallback) == 1
        assert "falling back" in str(fallback[0].message)

    def test_fallback_result_parity(self, no_native):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeFallbackWarning)
            coll = SetCollection(RAW, backend="native")
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    def test_auto_without_extension_never_warns(self, no_native, monkeypatch):
        # A genuine auto request only: $REPRO_BACKEND=native (as the CI
        # native leg sets) is an *explicit* request and is supposed to warn.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_backend_name("auto")
            SetCollection(RAW)
        assert not [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]

    @pytest.mark.skipif(
        HAS_NATIVE, reason="only meaningful when the extension is absent"
    )
    def test_environment_without_extension_warns_once(self):  # pragma: no cover
        # The CI no-compiler job runs this for real: a genuinely missing
        # extension (not a monkeypatched flag) must degrade with exactly
        # one warning across any number of collections.
        kernels._native_fallback_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SetCollection(RAW, backend="native")
            SetCollection(RAW, backend="native")
        fallback = [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]
        assert len(fallback) == 1


@needs_native
class TestPrimitiveValidation:
    """The C entry points must reject malformed buffers, never segfault."""

    def setup_method(self):
        import numpy as np

        from repro.core.kernels._native import ext

        self.np = np
        self.ext = ext
        rng = np.random.default_rng(3)
        self.n_words = 2
        self.matrix = rng.integers(
            0, 2**63, size=(5, self.n_words), dtype=np.uint64
        )
        self.mask = rng.integers(0, 2**63, size=self.n_words, dtype=np.uint64)
        self.rows = np.arange(5, dtype=np.int64)

    def test_mask_length_mismatch(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="mask_words"):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask[:1], out
            )

    def test_out_length_mismatch(self):
        out = self.np.empty(3, dtype=self.np.int64)
        with pytest.raises(ValueError, match="out"):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask, out
            )

    def test_matrix_not_multiple_of_words(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="n_words"):
            self.ext.popcount_rows(
                self.matrix.reshape(-1)[:-1], self.n_words, self.rows,
                self.mask, out,
            )

    def test_readonly_out_rejected(self):
        out = self.np.empty(5, dtype=self.np.int64)
        out.flags.writeable = False
        with pytest.raises((BufferError, TypeError, ValueError)):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask, out
            )

    def test_nonpositive_n_words_rejected(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="n_words"):
            self.ext.popcount_rows(
                self.matrix, 0, self.rows, self.mask, out
            )

    def test_out_of_range_rows_count_zero(self):
        # Unknown entity ids resolve to row -1; anything out of range must
        # count 0 rather than read out of bounds.
        rows = self.np.array([-1, 99, 0], dtype=self.np.int64)
        out = self.np.empty(3, dtype=self.np.int64)
        self.ext.popcount_rows(
            self.matrix, self.n_words, rows, self.mask, out
        )
        want = int(
            self.np.bitwise_count(self.matrix[0] & self.mask).sum()
        )
        assert out.tolist() == [0, 0, want]

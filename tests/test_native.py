"""Gating, fallback and primitive-level tests for the native backend.

Parity of the native kernel against bigint/numpy is carried by the shared
harnesses (``test_parity_fuzz.py``, ``test_kernels.py``, the golden engine
transcripts); this file covers what is *specific* to the compiled
extension: backend resolution and auto-preference, the one-time fallback
warning when the extension is absent, sharded composition, and the C
primitives' buffer validation.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import kernels
from repro.core.collection import SetCollection
from repro.core.kernels import (
    HAS_NATIVE,
    HAS_NUMPY,
    NativeFallbackWarning,
    available_backends,
    resolve_backend_name,
)
from repro.core.kernels import native_backend

from conftest import FIG1_SETS

needs_native = pytest.mark.skipif(
    not HAS_NATIVE, reason="native extension not built"
)

RAW = [[0, 1, 2], [1, 2, 3], [2, 3, 4], [0, 4], [5]]


@pytest.fixture
def no_native(monkeypatch):
    """Simulate an environment where the extension failed to import."""
    monkeypatch.setattr(native_backend, "HAS_NATIVE", False)
    monkeypatch.setattr(kernels, "_native_fallback_warned", False)


class TestGating:
    @needs_native
    def test_explicit_native(self):
        coll = SetCollection(RAW, backend="native")
        assert coll.backend == "native"

    @needs_native
    def test_native_listed_as_available(self):
        assert "native" in available_backends()

    @needs_native
    def test_env_var_forces_native(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "native")
        assert SetCollection(RAW).backend == "native"

    @needs_native
    def test_auto_prefers_native_on_large_collections(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name("auto") == "native"

    @needs_native
    def test_auto_small_collection_still_prefers_bigint(self, monkeypatch):
        # The calibrated auto crossover applies to native exactly as it
        # does to numpy: tiny collections stay on the reference backend.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        coll = SetCollection.from_named_sets(FIG1_SETS)
        assert coll.backend == "bigint"

    @needs_native
    def test_sharded_native(self):
        coll = SetCollection(RAW, backend="native", shards=2)
        assert coll.backend == "native[x2]"
        assert coll.shards == 2
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    @needs_native
    def test_reshard_keeps_native_base(self):
        coll = SetCollection(RAW, backend="native")
        coll.reshard(2)
        assert coll.backend == "native[x2]"
        coll.reshard(None)
        assert coll.backend == "native"


class TestFallbackWarning:
    def test_fallback_warns_exactly_once(self, no_native):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = SetCollection(RAW, backend="native")
            second = SetCollection(RAW, backend="native")
        expected = "numpy" if HAS_NUMPY else "bigint"
        assert first.backend == expected
        assert second.backend == expected
        fallback = [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]
        assert len(fallback) == 1
        assert "falling back" in str(fallback[0].message)

    def test_fallback_result_parity(self, no_native):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeFallbackWarning)
            coll = SetCollection(RAW, backend="native")
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    def test_auto_without_extension_never_warns(self, no_native, monkeypatch):
        # A genuine auto request only: $REPRO_BACKEND=native (as the CI
        # native leg sets) is an *explicit* request and is supposed to warn.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_backend_name("auto")
            SetCollection(RAW)
        assert not [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]

    @pytest.mark.skipif(
        HAS_NATIVE, reason="only meaningful when the extension is absent"
    )
    def test_environment_without_extension_warns_once(self):  # pragma: no cover
        # The CI no-compiler job runs this for real: a genuinely missing
        # extension (not a monkeypatched flag) must degrade with exactly
        # one warning across any number of collections.
        kernels._native_fallback_warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SetCollection(RAW, backend="native")
            SetCollection(RAW, backend="native")
        fallback = [
            w for w in caught if issubclass(w.category, NativeFallbackWarning)
        ]
        assert len(fallback) == 1


@needs_native
class TestPrimitiveValidation:
    """The C entry points must reject malformed buffers, never segfault."""

    def setup_method(self):
        import numpy as np

        from repro.core.kernels._native import ext

        self.np = np
        self.ext = ext
        rng = np.random.default_rng(3)
        self.n_words = 2
        self.matrix = rng.integers(
            0, 2**63, size=(5, self.n_words), dtype=np.uint64
        )
        self.mask = rng.integers(0, 2**63, size=self.n_words, dtype=np.uint64)
        self.rows = np.arange(5, dtype=np.int64)

    def test_mask_length_mismatch(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="mask_words"):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask[:1], out
            )

    def test_out_length_mismatch(self):
        out = self.np.empty(3, dtype=self.np.int64)
        with pytest.raises(ValueError, match="out"):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask, out
            )

    def test_matrix_not_multiple_of_words(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="n_words"):
            self.ext.popcount_rows(
                self.matrix.reshape(-1)[:-1], self.n_words, self.rows,
                self.mask, out,
            )

    def test_readonly_out_rejected(self):
        out = self.np.empty(5, dtype=self.np.int64)
        out.flags.writeable = False
        with pytest.raises((BufferError, TypeError, ValueError)):
            self.ext.popcount_rows(
                self.matrix, self.n_words, self.rows, self.mask, out
            )

    def test_nonpositive_n_words_rejected(self):
        out = self.np.empty(5, dtype=self.np.int64)
        with pytest.raises(ValueError, match="n_words"):
            self.ext.popcount_rows(
                self.matrix, 0, self.rows, self.mask, out
            )

    def test_out_of_range_rows_count_zero(self):
        # Unknown entity ids resolve to row -1; anything out of range must
        # count 0 rather than read out of bounds.
        rows = self.np.array([-1, 99, 0], dtype=self.np.int64)
        out = self.np.empty(3, dtype=self.np.int64)
        self.ext.popcount_rows(
            self.matrix, self.n_words, rows, self.mask, out
        )
        want = int(
            self.np.bitwise_count(self.matrix[0] & self.mask).sum()
        )
        assert out.tolist() == [0, 0, want]


@needs_native
class TestSimdDispatch:
    """Runtime SIMD tier selection: introspection, pinning, env, fallback."""

    def setup_method(self):
        from repro.core.kernels._native import ext

        self.ext = ext
        self.auto = ext.simd_level()

    def teardown_method(self):
        self.ext.set_simd_level(self.auto)

    def test_active_tier_is_listed_available(self):
        tiers = self.ext.available_simd_levels()
        assert "scalar" in tiers
        assert self.ext.simd_level() in tiers

    def test_pin_roundtrip_every_available_tier(self):
        for tier in self.ext.available_simd_levels():
            assert self.ext.set_simd_level(tier) == tier
            assert self.ext.simd_level() == tier

    def test_unavailable_tier_raises(self):
        with pytest.raises(ValueError, match="is not available"):
            self.ext.set_simd_level("avx1024")
        assert self.ext.simd_level() == self.auto

    def test_tiers_agree_on_scan(self):
        # The deep parity sweep is in test_parity_fuzz.py; this is the
        # smoke check that pinning a tier changes throughput only.
        coll = SetCollection(RAW, backend="native")
        ref = coll.informative_entities(coll.full_mask)
        for tier in self.ext.available_simd_levels():
            self.ext.set_simd_level(tier)
            fresh = SetCollection(RAW, backend="native")
            assert fresh.informative_entities(fresh.full_mask) == ref

    def test_apply_simd_override_none_keeps_selection(self):
        from repro.core.kernels import _native

        assert _native.apply_simd_override(None) == self.auto
        assert _native.apply_simd_override("") == self.auto
        assert self.ext.simd_level() == self.auto

    def test_apply_simd_override_pins(self):
        from repro.core.kernels import _native

        assert _native.apply_simd_override("scalar") == "scalar"
        assert self.ext.simd_level() == "scalar"

    def test_bad_override_warns_once_and_keeps_tier(self, monkeypatch):
        from repro.core.kernels import _native

        monkeypatch.setattr(_native, "_simd_fallback_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert _native.apply_simd_override("bogus") == self.auto
            assert _native.apply_simd_override("bogus") == self.auto
        fallback = [
            w
            for w in caught
            if issubclass(w.category, kernels.SimdFallbackWarning)
        ]
        assert len(fallback) == 1
        assert "bogus" in str(fallback[0].message)
        assert self.ext.simd_level() == self.auto

    def test_env_var_pins_tier_at_import(self):
        # A real subprocess: $REPRO_SIMD must take effect at import time.
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, REPRO_SIMD="scalar", PYTHONPATH=src)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core.kernels._native import ext; "
                "print(ext.simd_level())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "scalar"


@needs_native
class TestThreadedScan:
    """The in-C pthread fan-out: parity with the serial sweep, validation."""

    def setup_method(self):
        import numpy as np

        from repro.core.kernels._native import ext

        self.np = np
        self.ext = ext
        if not ext.threaded_scan_available():  # pragma: no cover
            pytest.skip("this build lacks the pthread scan pool")
        rng = np.random.default_rng(11)
        self.n_words = 5
        self.matrix = rng.integers(
            0, 2**63, size=(37, self.n_words), dtype=np.uint64
        )
        self.masks = rng.integers(
            0, 2**63, size=(3, self.n_words), dtype=np.uint64
        )
        self.ns = np.array([40, 7, 150], dtype=np.int64)

    def _run(self, fn, *extra):
        n_masks, n_rows = self.masks.shape[0], self.matrix.shape[0]
        out_rows = self.np.empty(n_masks * n_rows, dtype=self.np.int64)
        out_counts = self.np.empty_like(out_rows)
        indptr = self.np.empty(n_masks + 1, dtype=self.np.int64)
        fn(
            self.matrix, self.n_words, self.masks, self.ns,
            *extra, out_rows, out_counts, indptr,
        )
        kept = int(indptr[-1])
        return out_rows[:kept].tolist(), out_counts[:kept].tolist(), (
            indptr.tolist()
        )

    def test_parity_with_serial_sweep_at_every_thread_count(self):
        want = self._run(self.ext.scan_informative_many)
        for n_threads in (1, 2, 3, 4, 7, 64):
            got = self._run(
                self.ext.scan_informative_threaded, n_threads
            )
            assert got == want, f"n_threads={n_threads} diverged"

    def test_nonpositive_thread_count_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            self._run(self.ext.scan_informative_threaded, 0)
        with pytest.raises(ValueError, match="n_threads"):
            self._run(self.ext.scan_informative_threaded, -2)

    def test_kernel_scan_threads_parity(self):
        from repro.core.kernels.tuning import KernelTuning

        tuning = KernelTuning(thread_min_cells=1)
        serial = native_backend.NativeKernel(
            *_kernel_index(RAW), tuning=tuning, scan_threads=1
        )
        threaded = native_backend.NativeKernel(
            *_kernel_index(RAW), tuning=tuning, scan_threads=4
        )
        mask = (1 << len(RAW)) - 1
        n = len(RAW)
        se, sc = serial.scan_informative(mask, n, None)
        te, tc = threaded.scan_informative(mask, n, None)
        assert se.tolist() == te.tolist()
        assert sc.tolist() == tc.tolist()
        s_many = serial.scan_informative_many([mask, mask >> 1], [n, n - 1])
        t_many = threaded.scan_informative_many([mask, mask >> 1], [n, n - 1])
        for (a, b), (c, d) in zip(s_many, t_many):
            assert a.tolist() == c.tolist()
            assert b.tolist() == d.tolist()

    def test_small_scans_stay_serial(self):
        kernel = native_backend.NativeKernel(
            *_kernel_index(RAW), scan_threads=8
        )
        # Default tuning: 6 entities x 1 word is far below the crossover.
        assert kernel._scan_parts(len(kernel._row_eids)) == 1

    def test_scan_threads_survive_from_delta(self):
        from repro.core.kernels.base import KernelDelta

        sets, masks, n = _kernel_index(RAW)
        kernel = native_backend.NativeKernel(
            sets, masks, n, scan_threads=3
        )
        new = native_backend.NativeKernel.from_delta(
            kernel, sets, masks, n, KernelDelta(dirty_new=(), dirty_old=())
        )
        # The class default is 1; the delta path must not resurrect it on
        # the instance built via __new__.
        assert new._scan_threads in (1, 3)
        rebuilt = native_backend.NativeKernel.from_delta(
            kernel, sets, masks, n, KernelDelta(dirty_new=(0,), dirty_old=(0,))
        )
        assert rebuilt.scan_informative(
            (1 << n) - 1, n, None
        )[0].tolist() == kernel.scan_informative(
            (1 << n) - 1, n, None
        )[0].tolist()


def _kernel_index(raw):
    """Build the (sets, entity_masks, n_sets) index triple for ``raw``."""
    sets = tuple(frozenset(s) for s in raw)
    entity_masks: dict[int, int] = {}
    for i, s in enumerate(sets):
        for e in s:
            entity_masks[e] = entity_masks.get(e, 0) | (1 << i)
    return sets, entity_masks, len(sets)


@needs_native
class TestNativeExecutor:
    """``executor="native"``: one full-width kernel on the C thread pool."""

    def setup_method(self):
        from repro.core.kernels._native import ext

        if not ext.threaded_scan_available():  # pragma: no cover
            pytest.skip("this build lacks the pthread scan pool")

    def test_delegates_to_full_width_inner_kernel(self):
        coll = SetCollection(
            RAW, backend="native", shards=4, shard_executor="native"
        )
        kernel = coll._kernel
        assert kernel.executor_kind == "native"
        assert kernel._inner is not None
        assert kernel._inner._scan_threads == 4
        assert kernel.n_shards == 4
        assert kernel.name == "native[t4]"
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    def test_non_native_base_degrades_with_warning(self, monkeypatch):
        from repro.core.kernels import sharded as sharded_mod

        monkeypatch.setattr(sharded_mod, "_executor_fallback_warned", False)
        with pytest.warns(
            kernels.ShardExecutorFallbackWarning, match="no in-C"
        ):
            coll = SetCollection(
                RAW, backend="numpy", shards=2, shard_executor="native"
            )
        assert coll._kernel.executor_kind == "thread"
        ref = SetCollection(RAW, backend="bigint")
        assert coll.informative_entities(
            coll.full_mask
        ) == ref.informative_entities(ref.full_mask)

    def test_missing_pthread_pool_degrades_with_warning(self, monkeypatch):
        from repro.core.kernels import sharded as sharded_mod

        monkeypatch.setattr(sharded_mod, "_executor_fallback_warned", False)
        monkeypatch.setattr(
            sharded_mod._ext, "threaded_scan_available", lambda: False
        )
        with pytest.warns(
            kernels.ShardExecutorFallbackWarning, match="pthread"
        ):
            coll = SetCollection(
                RAW, backend="native", shards=2, shard_executor="native"
            )
        assert coll._kernel.executor_kind == "thread"

    def test_delta_preserves_executor_and_threads(self):
        from repro.core.collection import DeltaBatch

        coll = SetCollection(
            RAW, backend="native", shards=4, shard_executor="native"
        )
        labels = [coll.universe.label(e) for e in sorted(coll.entity_ids())]
        new = coll.apply_delta(
            DeltaBatch().add_sets({"delta-x": labels[:4]})
        )
        kernel = new._kernel
        assert kernel.executor_kind == "native"
        assert kernel._inner._scan_threads == 4
        assert kernel.n_shards == 4
        ref = SetCollection(
            [list(s) for s in RAW] + [sorted(labels[:4])], backend="bigint"
        )
        assert sorted(
            new.informative_entities(new.full_mask)
        ) == sorted(ref.informative_entities(ref.full_mask))

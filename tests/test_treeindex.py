"""Tests for repro.core.treeindex (offline construction, Sec. 4.5)."""

import pytest

from repro.core.lookahead import KLPSelector
from repro.core.treeindex import TreeIndex
from repro.oracle import SimulatedUser


class TestBuild:
    def test_add_builds_tree_over_candidates(self, fig1):
        index = TreeIndex(fig1)
        tree = index.add({"b", "c"}, KLPSelector(k=2))
        assert tree is not None
        assert tree.n_leaves == 3  # S1, S3, S4
        assert len(index) == 1
        assert {"b", "c"} in index
        assert {"c", "b"} in index  # order-independent key

    def test_single_candidate_initial_not_indexed(self, fig1):
        index = TreeIndex(fig1)
        assert index.add({"e"}, KLPSelector(k=2)) is None  # only S2
        assert len(index) == 0

    def test_unknown_entity_initial_not_indexed(self, fig1):
        index = TreeIndex(fig1)
        assert index.add({"zzz"}, KLPSelector(k=2)) is None

    def test_add_all_counts(self, fig1):
        index = TreeIndex(fig1)
        added = index.add_all(
            [{"b", "c"}, {"g"}, {"e"}, set()], KLPSelector(k=2)
        )
        assert added == 3  # {"e"} is a singleton
        assert len(index) == 3

    def test_empty_initial_indexes_whole_collection(self, fig1):
        index = TreeIndex(fig1)
        tree = index.add(set(), KLPSelector(k=2))
        assert tree is not None
        assert tree.n_leaves == 7

    def test_stats(self, fig1):
        index = TreeIndex(fig1)
        assert index.stats()["trees"] == 0
        index.add(set(), KLPSelector(k=2))
        stats = index.stats()
        assert stats["trees"] == 1
        assert stats["mean_ad"] == pytest.approx(20 / 7)
        assert stats["max_height"] == 3


class TestDiscover:
    def test_indexed_discovery_finds_target(self, fig1):
        index = TreeIndex(fig1)
        index.add({"b", "c"}, KLPSelector(k=2))
        target = fig1.index_of("S3")
        result = index.discover(
            {"b", "c"}, SimulatedUser(fig1, target_index=target)
        )
        assert result.target == target

    def test_indexed_matches_online_question_count(self, fig1):
        index = TreeIndex(fig1)
        index.add(set(), KLPSelector(k=2))
        from repro.core.discovery import DiscoverySession

        for target in range(7):
            offline = index.discover(
                set(), SimulatedUser(fig1, target_index=target)
            )
            online = DiscoverySession(fig1, KLPSelector(k=2)).run(
                SimulatedUser(fig1, target_index=target)
            )
            assert offline.target == online.target == target
            assert offline.n_questions == online.n_questions

    def test_unindexed_without_fallback_raises(self, fig1):
        index = TreeIndex(fig1)
        with pytest.raises(KeyError):
            index.discover({"g"}, SimulatedUser(fig1, target_index=6))

    def test_unindexed_with_fallback_runs_online(self, fig1):
        index = TreeIndex(fig1)
        result = index.discover(
            {"g"},
            SimulatedUser(fig1, target_index=6),
            fallback=KLPSelector(k=2),
        )
        assert result.target == 6


class TestPersistence:
    def test_save_load_round_trip(self, fig1, tmp_path):
        index = TreeIndex(fig1)
        index.add({"b", "c"}, KLPSelector(k=2))
        index.add(set(), KLPSelector(k=2))
        path = tmp_path / "index.json"
        index.save(path)
        loaded = TreeIndex.load(fig1, path)
        assert len(loaded) == 2
        result = loaded.discover(
            {"b", "c"}, SimulatedUser(fig1, target_index=0)
        )
        assert result.target == 0

    def test_load_rejects_mismatched_collection(self, fig1, synthetic_tiny, tmp_path):
        index = TreeIndex(fig1)
        index.add(set(), KLPSelector(k=2))
        path = tmp_path / "index.json"
        index.save(path)
        with pytest.raises(ValueError):
            TreeIndex.load(synthetic_tiny, path)

    def test_loaded_trees_validate(self, fig1, tmp_path):
        index = TreeIndex(fig1)
        index.add(set(), KLPSelector(k=2))
        path = tmp_path / "index.json"
        index.save(path)
        loaded = TreeIndex.load(fig1, path)
        tree = loaded.get(set())
        assert tree is not None
        tree.validate(fig1)


class TestWorkloadIndexing:
    def test_webtable_pair_index(self):
        """Index all qualifying pairs of a small web-table corpus and
        serve discoveries from it — the Sec. 4.5 deployment story."""
        from repro.data.webtables import WebTableConfig, WebTableWorkload

        workload = WebTableWorkload.build(
            config=WebTableConfig(n_sets=300, seed=23),
            min_candidates=8,
            max_pairs=4,
        )
        coll = workload.collection
        index = TreeIndex(coll)
        for pair in workload.pairs:
            labels = {
                coll.universe.label(pair.entity_a),
                coll.universe.label(pair.entity_b),
            }
            index.add(labels, KLPSelector(k=2))
        assert len(index) == len(workload.pairs)
        if workload.pairs:
            pair = workload.pairs[0]
            labels = {
                coll.universe.label(pair.entity_a),
                coll.universe.label(pair.entity_b),
            }
            target = next(coll.sets_in(pair.mask))
            result = index.discover(
                labels, SimulatedUser(coll, target_index=target)
            )
            assert result.target == target

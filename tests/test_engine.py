"""Tests for repro.serve.engine (multi-session batched discovery).

The engine's contract is *bit-identical transcripts*: running N sessions
through :class:`SessionEngine` must produce, for every session, exactly the
transcript, final candidates and question count that a sequential
``DiscoverySession.run`` produces — for every selector, on both kernel
backends, with and without "don't know" answers.  On top of parity, the
pull-style serving API, halting conditions and cache-release behaviour are
covered.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.bounds import AD
from repro.core.collection import SetCollection
from repro.core.discovery import DiscoverySession
from repro.core.kernels import HAS_NATIVE, HAS_NUMPY
from repro.core.lookahead import KLPSelector
from repro.core.selection import (
    IndistinguishablePairsSelector,
    InfoGainSelector,
    LB1Selector,
    MostEvenSelector,
    RandomSelector,
)
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser, UnsureUser
from repro.serve import SessionEngine

from conftest import FIG1_SETS

BOTH_BACKENDS = (
    ["bigint"]
    + (["numpy"] if HAS_NUMPY else [])
    + (["native"] if HAS_NATIVE else [])
)

SELECTOR_FACTORIES = [
    MostEvenSelector,
    InfoGainSelector,
    IndistinguishablePairsSelector,
    lambda: LB1Selector(AD),
    lambda: KLPSelector(k=2),  # non-batchable: engine falls back to select()
]


def make_collection(backend: str, n_sets: int = 120, seed: int = 3):
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=10, size_hi=16, overlap=0.8, seed=seed
        ),
        backend=backend,
    )


def sequential_results(collection, factory, targets, oracle_factory):
    results = []
    for i, target in enumerate(targets):
        session = DiscoverySession(collection, factory())
        results.append(session.run(oracle_factory(collection, target, i)))
    return results


def engine_results(collection, factory, targets, oracle_factory):
    engine = SessionEngine(collection)
    for i, target in enumerate(targets):
        engine.add(
            DiscoverySession(collection, factory()),
            oracle=oracle_factory(collection, target, i),
            key=i,
        )
    results = engine.run()
    return [results[i] for i in range(len(targets))], engine


def perfect_oracle(collection, target, _i):
    return SimulatedUser(collection, target_index=target)


def unsure_oracle(collection, target, i):
    return UnsureUser(collection, 0.25, target_index=target, seed=100 + i)


# --------------------------------------------------------------------- #
# Transcript parity engine vs sequential
# --------------------------------------------------------------------- #


class TestEngineParity:
    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    @pytest.mark.parametrize("factory", SELECTOR_FACTORIES)
    def test_transcripts_bit_identical(self, backend, factory):
        collection = make_collection(backend)
        rng = random.Random(17)
        targets = [rng.randrange(collection.n_sets) for _ in range(24)]
        collection.clear_caches()
        seq = sequential_results(collection, factory, targets, perfect_oracle)
        collection.clear_caches()
        eng, _ = engine_results(collection, factory, targets, perfect_oracle)
        for i in range(len(targets)):
            assert eng[i].transcript == seq[i].transcript
            assert eng[i].candidates == seq[i].candidates
            assert eng[i].resolved and eng[i].target == seq[i].target

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_parity_with_dont_know_answers(self, backend):
        # "Don't know" answers exclude entities per session; grouping must
        # respect each session's exclusion set.
        collection = make_collection(backend, n_sets=60, seed=5)
        rng = random.Random(23)
        targets = [rng.randrange(collection.n_sets) for _ in range(16)]
        collection.clear_caches()
        seq = sequential_results(
            collection, MostEvenSelector, targets, unsure_oracle
        )
        collection.clear_caches()
        eng, _ = engine_results(
            collection, MostEvenSelector, targets, unsure_oracle
        )
        for i in range(len(targets)):
            assert eng[i].transcript == seq[i].transcript
            assert eng[i].candidates == seq[i].candidates

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_parity_with_per_session_random_selectors(self, backend):
        # Each session owns its own seeded RandomSelector; the engine must
        # not share or reorder their rng draws.
        collection = make_collection(backend, seed=9)
        rng = random.Random(31)
        targets = [rng.randrange(collection.n_sets) for _ in range(10)]
        collection.clear_caches()
        seq = []
        for i, t in enumerate(targets):
            session = DiscoverySession(collection, RandomSelector(seed=i))
            seq.append(session.run(perfect_oracle(collection, t, i)))
        collection.clear_caches()
        engine = SessionEngine(collection)
        for i, t in enumerate(targets):
            engine.add(
                DiscoverySession(collection, RandomSelector(seed=i)),
                oracle=perfect_oracle(collection, t, i),
                key=i,
            )
        res = engine.run()
        for i in range(len(targets)):
            assert res[i].transcript == seq[i].transcript

    def test_parity_with_initial_example_sets(self):
        collection = SetCollection.from_named_sets(FIG1_SETS)
        seq = []
        for target in range(collection.n_sets):
            session = DiscoverySession(
                collection, MostEvenSelector(), initial={"a", "b"}
            )
            seq.append(
                session.run(SimulatedUser(collection, target_index=target))
            )
        engine = SessionEngine(collection)
        for target in range(collection.n_sets):
            engine.add(
                DiscoverySession(
                    collection, MostEvenSelector(), initial={"a", "b"}
                ),
                oracle=SimulatedUser(collection, target_index=target),
                key=target,
            )
        res = engine.run()
        for target in range(collection.n_sets):
            assert res[target].transcript == seq[target].transcript
            assert res[target].candidates == seq[target].candidates

    def test_parity_with_max_questions(self):
        collection = make_collection("bigint", n_sets=80, seed=7)
        targets = list(range(12))
        seq = []
        for i, t in enumerate(targets):
            session = DiscoverySession(
                collection, InfoGainSelector(), max_questions=3
            )
            seq.append(session.run(perfect_oracle(collection, t, i)))
        engine = SessionEngine(collection)
        for i, t in enumerate(targets):
            engine.add(
                DiscoverySession(
                    collection, InfoGainSelector(), max_questions=3
                ),
                oracle=perfect_oracle(collection, t, i),
                key=i,
            )
        res = engine.run()
        for i in range(len(targets)):
            assert res[i].n_questions <= 3
            assert res[i].transcript == seq[i].transcript

    def test_heterogeneous_selectors_in_one_engine(self):
        collection = make_collection("bigint", n_sets=60, seed=11)
        factories = [
            MostEvenSelector,
            InfoGainSelector,
            lambda: KLPSelector(k=2),
        ]
        targets = [4, 17, 33]
        seq = [
            DiscoverySession(collection, f()).run(
                SimulatedUser(collection, target_index=t)
            )
            for f, t in zip(factories, targets)
        ]
        engine = SessionEngine(collection)
        for i, (f, t) in enumerate(zip(factories, targets)):
            engine.add(
                DiscoverySession(collection, f()),
                oracle=SimulatedUser(collection, target_index=t),
                key=i,
            )
        res = engine.run()
        for i in range(3):
            assert res[i].transcript == seq[i].transcript


# --------------------------------------------------------------------- #
# Golden transcripts: serialized engine output vs sequential, sharded too
# --------------------------------------------------------------------- #


def serialize_results(results) -> bytes:
    """Canonical byte serialization of a list of DiscoveryResults.

    Everything observable about the sessions goes in — full transcripts,
    final candidates, question counts — so byte equality is transcript
    equality with no wiggle room.
    """
    payload = [
        {
            "candidates": r.candidates,
            "n_questions": r.n_questions,
            "transcript": [
                [i.entity, i.answer, i.candidates_before, i.candidates_after]
                for i in r.transcript
            ],
        }
        for r in results
    ]
    return json.dumps(payload, sort_keys=True).encode()


class TestGoldenTranscripts:
    """The sharded tick must not change a single serialized byte.

    Every selector x both backends x shards in {1, 4}: the engine's
    results, serialized, are byte-identical to a sequential
    ``DiscoverySession.run`` golden — extending the parity contract of
    :class:`TestEngineParity` to the sharded scan dispatch.
    """

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("factory", SELECTOR_FACTORIES)
    def test_serialized_transcripts_byte_identical(
        self, backend, shards, factory
    ):
        collection = make_collection(backend, n_sets=130, seed=13)
        rng = random.Random(29)
        targets = [rng.randrange(collection.n_sets) for _ in range(12)]
        collection.clear_caches()
        golden = serialize_results(
            sequential_results(collection, factory, targets, perfect_oracle)
        )
        collection.clear_caches()
        engine = SessionEngine(collection, shards=shards)
        assert collection.shards == shards
        for i, target in enumerate(targets):
            engine.add(
                DiscoverySession(collection, factory()),
                oracle=perfect_oracle(collection, target, i),
                key=i,
            )
        results = engine.run()
        got = serialize_results([results[i] for i in range(len(targets))])
        assert got == golden

    @pytest.mark.parametrize("backend", BOTH_BACKENDS)
    def test_sharded_golden_with_dont_know_answers(self, backend):
        collection = make_collection(backend, n_sets=70, seed=21)
        rng = random.Random(37)
        targets = [rng.randrange(collection.n_sets) for _ in range(10)]
        collection.clear_caches()
        golden = serialize_results(
            sequential_results(
                collection, MostEvenSelector, targets, unsure_oracle
            )
        )
        collection.clear_caches()
        engine = SessionEngine(collection, shards=4)
        for i, target in enumerate(targets):
            engine.add(
                DiscoverySession(collection, MostEvenSelector()),
                oracle=unsure_oracle(collection, target, i),
                key=i,
            )
        results = engine.run()
        got = serialize_results([results[i] for i in range(len(targets))])
        assert got == golden

    def test_engine_shards_argument_reshards_collection(self):
        collection = make_collection("bigint", n_sets=40, seed=2)
        assert collection.shards == 1
        SessionEngine(collection, shards=3)
        assert collection.shards == 3
        # an engine without a shards request leaves the kernel alone
        SessionEngine(collection)
        assert collection.shards == 3
        collection.reshard(None)
        assert collection.shards == 1

    def test_engine_shard_executor_switch_is_honoured(self, monkeypatch):
        # Regression: a matching shard count used to short-circuit the
        # reshard, silently ignoring an explicitly requested executor.
        monkeypatch.delenv("REPRO_SHARD_EXECUTOR", raising=False)
        collection = make_collection("bigint", n_sets=40, seed=2)
        SessionEngine(collection, shards=3)
        assert collection.kernel.executor_kind == "thread"
        SessionEngine(collection, shards=3, shard_executor="serial")
        assert collection.kernel.executor_kind == "serial"
        # executor alone applies to the current shard count
        SessionEngine(collection, shard_executor="thread")
        assert collection.shards == 3
        assert collection.kernel.executor_kind == "thread"
        collection.reshard(None)
        # ...and is a no-op on an unsharded collection (no kernel rebuild)
        kernel = collection.kernel
        SessionEngine(collection, shard_executor="serial")
        assert collection.kernel is kernel


# --------------------------------------------------------------------- #
# Pull-style serving API
# --------------------------------------------------------------------- #


class TestPullStyleServing:
    def test_tick_answer_loop_matches_run(self):
        collection = make_collection("bigint", n_sets=50, seed=2)
        targets = [1, 7, 22, 40]
        oracles = {
            i: SimulatedUser(collection, target_index=t)
            for i, t in enumerate(targets)
        }
        engine = SessionEngine(collection)
        for i in range(len(targets)):
            engine.add(DiscoverySession(collection, MostEvenSelector()), key=i)
        rounds = 0
        while engine.n_active:
            newly = engine.tick()
            rounds += 1
            for key, entity in newly.items():
                engine.answer(key, oracles[key](entity))
            assert rounds < 100, "pull loop failed to make progress"
        results = engine.completed()
        for i, t in enumerate(targets):
            expected = DiscoverySession(collection, MostEvenSelector()).run(
                SimulatedUser(collection, target_index=t)
            )
            assert results[i].transcript == expected.transcript
        # completed() drains
        assert engine.completed() == {}

    def test_pending_reflects_unanswered_questions(self):
        collection = make_collection("bigint", n_sets=40, seed=4)
        engine = SessionEngine(collection)
        engine.add(DiscoverySession(collection, MostEvenSelector()), key="u1")
        newly = engine.tick()
        assert set(newly) == {"u1"}
        assert engine.pending() == newly
        # tick is idempotent while an answer is outstanding
        assert engine.tick() == {}
        assert engine.pending() == newly
        engine.answer("u1", True)
        assert engine.pending() == {}

    def test_spawn_convenience(self):
        collection = make_collection("bigint", n_sets=40, seed=4)
        engine = SessionEngine(collection)
        key = engine.spawn(
            MostEvenSelector(),
            oracle=SimulatedUser(collection, target_index=3),
        )
        assert engine.session(key).n_candidates == collection.n_sets
        results = engine.run()
        assert results[key].resolved

    def test_immediately_finished_session_is_retired(self):
        collection = SetCollection.from_named_sets(FIG1_SETS)
        engine = SessionEngine(collection)
        engine.add(
            DiscoverySession(collection, MostEvenSelector(), initial={"e"}),
            key="done",
        )  # {"e"} pins S2 immediately
        assert engine.tick() == {}
        assert engine.n_active == 0
        assert engine.results["done"].resolved

    def test_add_rejects_foreign_collection(self):
        a = make_collection("bigint", n_sets=30, seed=1)
        b = make_collection("bigint", n_sets=30, seed=1)
        engine = SessionEngine(a)
        with pytest.raises(ValueError, match="different collection"):
            engine.add(DiscoverySession(b, MostEvenSelector()))

    def test_duplicate_key_rejected(self):
        collection = make_collection("bigint", n_sets=30, seed=1)
        engine = SessionEngine(collection)
        engine.add(DiscoverySession(collection, MostEvenSelector()), key="x")
        with pytest.raises(KeyError):
            engine.add(
                DiscoverySession(collection, MostEvenSelector()), key="x"
            )

    def test_run_requires_oracles(self):
        collection = make_collection("bigint", n_sets=30, seed=1)
        engine = SessionEngine(collection)
        engine.add(DiscoverySession(collection, MostEvenSelector()))
        with pytest.raises(ValueError, match="oracle"):
            engine.run()

    def test_all_dont_know_terminates(self):
        collection = SetCollection.from_named_sets(FIG1_SETS)
        engine = SessionEngine(collection)
        engine.add(
            DiscoverySession(collection, MostEvenSelector()),
            oracle=lambda entity: None,
            key=0,
        )
        results = engine.run()
        assert not results[0].resolved
        assert results[0].n_questions == 0


# --------------------------------------------------------------------- #
# Serving hygiene: cache release, stats, seconds
# --------------------------------------------------------------------- #


class TestServingHygiene:
    def test_engine_releases_cached_masks_on_completion(self):
        collection = make_collection("bigint", n_sets=80, seed=6)
        engine = SessionEngine(collection, release_caches=True)
        rng = random.Random(8)
        for i in range(12):
            engine.add(
                DiscoverySession(collection, MostEvenSelector()),
                oracle=SimulatedUser(
                    collection, target_index=rng.randrange(collection.n_sets)
                ),
                key=i,
            )
        engine.run()
        # every session finished and released its visited masks
        assert collection.cached_mask_count() == 0

    def test_release_can_be_disabled(self):
        collection = make_collection("bigint", n_sets=80, seed=6)
        engine = SessionEngine(collection, release_caches=False)
        engine.add(
            DiscoverySession(collection, MostEvenSelector()),
            oracle=SimulatedUser(collection, target_index=0),
        )
        engine.run()
        assert collection.cached_mask_count() > 0

    def test_engine_stats_counters(self):
        collection = make_collection("bigint", n_sets=60, seed=3)
        engine = SessionEngine(collection)
        for i in range(8):
            engine.add(
                DiscoverySession(collection, MostEvenSelector()),
                oracle=SimulatedUser(collection, target_index=i),
                key=i,
            )
        engine.run()
        stats = engine.stats
        assert stats.ticks > 0
        assert stats.selections > 0
        assert stats.batched_selections == stats.selections
        assert stats.fallback_selections == 0
        # dedup: 8 sessions all start at the full mask -> fewer scoring
        # groups than selections
        assert stats.scoring_groups < stats.selections
        assert stats.scanned_masks > 0
        assert stats.seconds > 0.0

    def test_engine_sessions_record_seconds(self):
        collection = make_collection("bigint", n_sets=60, seed=3)
        engine = SessionEngine(collection)
        engine.add(
            DiscoverySession(collection, MostEvenSelector()),
            oracle=SimulatedUser(collection, target_index=5),
            key=0,
        )
        results = engine.run()
        assert results[0].seconds > 0.0

    def test_fallback_selector_counts_as_fallback(self):
        collection = make_collection("bigint", n_sets=40, seed=3)
        engine = SessionEngine(collection)
        engine.add(
            DiscoverySession(collection, KLPSelector(k=2)),
            oracle=SimulatedUser(collection, target_index=1),
        )
        engine.run()
        assert engine.stats.fallback_selections > 0
        assert engine.stats.batched_selections == 0


class TestScoringDedupSafety:
    def test_lb1_metrics_sharing_a_name_are_not_conflated(self):
        # Two distinct metrics with equal display names must not share a
        # scoring group — batch_key carries the metric object itself.
        from repro.core.bounds import AD, H

        class RenamedH(type(H)):
            name = "AD"

        a, b = LB1Selector(AD), LB1Selector(RenamedH())
        assert a.batch_key() != b.batch_key()
        assert LB1Selector(AD).batch_key() == LB1Selector(AD).batch_key()

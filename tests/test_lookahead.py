"""Tests for repro.core.lookahead (Algorithm 1: k-LP, k-LPLE, k-LPLVE)."""

import pytest

from repro.core.bounds import AD, H
from repro.core.construction import build_tree
from repro.core.gain_k import UnprunedKLPSelector, lb_k, lb_k_entity
from repro.core.lookahead import KLPSelector, klp, klple, klplve
from repro.core.optimal import optimal_cost
from repro.core.selection import NoInformativeEntityError


class TestConstructorValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            KLPSelector(k=0)

    def test_q_must_be_positive(self):
        with pytest.raises(ValueError):
            KLPSelector(k=2, q=0)

    def test_lve_needs_q(self):
        with pytest.raises(ValueError):
            KLPSelector(k=2, variable=True)

    def test_names(self):
        assert klp(2).name == "2-LP[AD]"
        assert klple(3, 10).name == "3-LPLE[AD,q=10]"
        assert klplve(3, 10, H).name == "3-LPLVE[H,q=10]"


class TestPaperWalkthrough:
    """The Sec. 4.3 example on collections C1 and C2 (metric H)."""

    def test_c1_one_step_bounds(self, fig1):
        full = fig1.full_mask
        for label in "cd":
            e = fig1.universe.id_of(label)
            assert lb_k_entity(fig1, full, e, 1, H) == 3.0
        for label in "befghijk":
            e = fig1.universe.id_of(label)
            assert lb_k_entity(fig1, full, e, 1, H) == 4.0

    def test_c1_three_step_bound_of_d_is_3(self, fig1):
        d = fig1.universe.id_of("d")
        assert lb_k_entity(fig1, fig1.full_mask, d, 3, H) == 3.0

    def test_c2_three_step_bound_of_d_is_4(self, fig1_c2):
        d = fig1_c2.universe.id_of("d")
        assert lb_k_entity(fig1_c2, fig1_c2.full_mask, d, 3, H) == 4.0

    def test_c2_two_step_bound_of_c_is_4(self, fig1_c2):
        c = fig1_c2.universe.id_of("c")
        assert lb_k_entity(fig1_c2, fig1_c2.full_mask, c, 2, H) == 4.0

    def test_selected_entity_on_c1_splits_3_4(self, fig1):
        for k in (1, 2, 3):
            chosen = KLPSelector(k=k, metric=H).select(fig1, fig1.full_mask)
            n1 = fig1.positive_count(fig1.full_mask, chosen)
            assert sorted([n1, 7 - n1]) == [3, 4]


class TestPrunedEqualsUnpruned:
    """Pruning must not change the selected entity or its bound."""

    @pytest.mark.parametrize("metric", [AD, H], ids=["AD", "H"])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_agreement_on_fig1(self, fig1, metric, k):
        pruned = KLPSelector(k=k, metric=metric)
        reference = UnprunedKLPSelector(k=k, metric=metric)
        assert pruned.select(fig1, fig1.full_mask) == reference.select(
            fig1, fig1.full_mask
        )

    @pytest.mark.parametrize("metric", [AD, H], ids=["AD", "H"])
    @pytest.mark.parametrize("k", [2, 3])
    def test_agreement_on_synthetic(self, synthetic_small, metric, k):
        coll = synthetic_small
        pruned = KLPSelector(k=k, metric=metric)
        reference = UnprunedKLPSelector(k=k, metric=metric)
        masks = [coll.full_mask]
        first = pruned.select(coll, coll.full_mask)
        masks.extend(coll.partition(coll.full_mask, first))
        for mask in masks:
            if coll.count(mask) < 2:
                continue
            assert pruned.select(coll, mask) == reference.select(coll, mask)

    def test_identical_trees_on_synthetic(self, synthetic_small):
        pruned_tree = build_tree(synthetic_small, KLPSelector(k=2))
        reference_tree = build_tree(
            synthetic_small, UnprunedKLPSelector(k=2)
        )
        assert (
            pruned_tree.leaf_depths() == reference_tree.leaf_depths()
        )


class TestLowerBounds:
    def test_lower_bound_matches_reference(self, fig1):
        selector = KLPSelector(k=3, metric=H)
        for k in (1, 2, 3):
            assert selector.lower_bound(fig1, k=k) == lb_k(
                fig1, fig1.full_mask, k, H
            )

    def test_monotone_in_k_lemma_4_1(self, fig1, synthetic_tiny):
        for coll in (fig1, synthetic_tiny):
            for metric in (AD, H):
                selector = KLPSelector(k=1, metric=metric)
                bounds = [
                    selector.lower_bound(coll, k=k) for k in range(0, 6)
                ]
                assert bounds == sorted(bounds), (metric.name, bounds)

    def test_lb_at_large_k_reaches_optimal_cost(self, synthetic_tiny):
        coll = synthetic_tiny
        for metric in (AD, H):
            exact = optimal_cost(coll, metric)
            bound = KLPSelector(k=1, metric=metric).lower_bound(
                coll, k=coll.n_sets - 1
            )
            assert bound == pytest.approx(exact), metric.name

    def test_lower_bound_of_singleton_is_zero(self, fig1):
        assert KLPSelector(k=2).lower_bound(fig1, mask=0b1) == 0.0

    def test_lower_bound_k0_is_lb0(self, fig1):
        assert KLPSelector(k=2).lower_bound(fig1, k=0) == AD.lb0(7)


class TestOptimalityAtLargeK:
    """Sec. 4.4.1: with k >= optimal height, k-LP finds an optimal tree."""

    @pytest.mark.parametrize("metric", [AD, H], ids=["AD", "H"])
    def test_fig1(self, fig1, metric):
        exact = optimal_cost(fig1, metric)
        tree = build_tree(fig1, KLPSelector(k=6, metric=metric))
        assert metric.tree_cost(tree.depths()) == pytest.approx(exact)

    @pytest.mark.parametrize("metric", [AD, H], ids=["AD", "H"])
    def test_synthetic_tiny(self, synthetic_tiny, metric):
        exact = optimal_cost(synthetic_tiny, metric)
        tree = build_tree(
            synthetic_tiny,
            KLPSelector(k=synthetic_tiny.n_sets - 1, metric=metric),
        )
        assert metric.tree_cost(tree.depths()) == pytest.approx(exact)


class TestBeamVariants:
    def test_lple_matches_klp_with_wide_beam(self, fig1):
        wide = KLPSelector(k=3, q=100)
        plain = KLPSelector(k=3)
        assert wide.select(fig1, fig1.full_mask) == plain.select(
            fig1, fig1.full_mask
        )

    def test_lple_trees_are_valid(self, synthetic_small):
        tree = build_tree(synthetic_small, klple(k=3, q=5))
        tree.validate(synthetic_small)

    def test_lplve_trees_are_valid(self, synthetic_small):
        tree = build_tree(synthetic_small, klplve(k=3, q=5))
        tree.validate(synthetic_small)

    def test_narrow_beam_never_better_than_exact(self, synthetic_tiny):
        exact = optimal_cost(synthetic_tiny, AD)
        for q in (1, 2, 5):
            tree = build_tree(synthetic_tiny, klple(k=3, q=q))
            assert AD.tree_cost(tree.depths()) >= exact - 1e-9

    def test_beam_quality_improves_weakly_with_q(self, synthetic_small):
        costs = []
        for q in (1, 3, 10):
            tree = build_tree(synthetic_small, klple(k=2, q=q))
            costs.append(AD.tree_cost(tree.depths()))
        # Not guaranteed monotone in theory, but the wide beam must be at
        # least as good as the single-entity beam on this seed.
        assert costs[-1] <= costs[0] + 1e-9


class TestCacheAndStats:
    def test_reset_clears_cache(self, fig1):
        selector = KLPSelector(k=2)
        selector.select(fig1, fig1.full_mask)
        assert selector._cache
        selector.reset()
        assert not selector._cache

    def test_cache_reuse_gives_same_answer(self, fig1):
        selector = KLPSelector(k=3)
        first = selector.select(fig1, fig1.full_mask)
        second = selector.select(fig1, fig1.full_mask)
        assert first == second

    def test_stats_record_per_node(self, synthetic_small):
        selector = KLPSelector(k=2, collect_stats=True)
        build_tree(synthetic_small, selector)
        stats = selector.stats
        assert stats is not None
        # One record per internal node of the tree.
        assert len(stats.records) == synthetic_small.n_sets - 1
        assert 0.0 <= stats.min_pruned <= stats.average_pruned <= 1.0

    def test_stats_show_substantial_pruning(self, synthetic_small):
        selector = KLPSelector(k=2, collect_stats=True)
        selector.select(synthetic_small, synthetic_small.full_mask)
        assert selector.stats is not None
        root = selector.stats.records[0]
        assert root.n_expanded < root.n_informative
        assert root.pruned_fraction > 0.5

    def test_exclude_bypasses_cache(self, fig1):
        selector = KLPSelector(k=2)
        best = selector.select(fig1, fig1.full_mask)
        other = selector.select(fig1, fig1.full_mask, exclude={best})
        assert other != best

    def test_select_on_singleton_raises(self, fig1):
        with pytest.raises(ValueError):
            KLPSelector(k=2).select(fig1, 0b1)

    def test_all_informative_excluded_raises(self, fig1):
        informative = {
            e for e, _ in fig1.informative_entities(fig1.full_mask)
        }
        with pytest.raises(NoInformativeEntityError):
            KLPSelector(k=2).select(
                fig1, fig1.full_mask, exclude=informative
            )


class TestKCapping:
    def test_k_larger_than_collection_is_safe(self, fig1):
        selector = KLPSelector(k=50)
        entity = selector.select(fig1, fig1.full_mask)
        n1 = fig1.positive_count(fig1.full_mask, entity)
        assert 0 < n1 < 7

    def test_two_set_collection(self):
        from repro.core.collection import SetCollection

        coll = SetCollection([{"x", "y"}, {"x", "z"}])
        entity = KLPSelector(k=4).select(coll, coll.full_mask)
        assert coll.universe.label(entity) in {"y", "z"}
        assert KLPSelector(k=4).lower_bound(coll) == 1.0

"""Tests for the HTTP/WebSocket serving edge (repro.serve.http).

Three contracts hold the edge to the rest of the stack:

* **parity** — a session driven over HTTP or WebSocket produces a
  transcript byte-identical to a sequential ``DiscoverySession.run``
  (the same golden serialization the engine tests use);
* **validation** — malformed requests get clear 4xx JSON errors, never
  hangs or 500s: missing/wrong bearer tokens, unknown sessions and
  routes, wrong methods, bad JSON, double answers;
* **drain** — a draining server rejects new sessions with 503, lets
  in-flight sessions finish, and rejects waiters stranded by ``aclose``
  with 503 too (the HTTP mirror of ``ServiceClosed``).

Everything runs against the real :class:`EmbeddedServer` over loopback
TCP via the stdlib client (:mod:`repro.serve.client`) — no ASGI
test-double, so the HTTP/1.1 and RFC 6455 bridging is exercised as
deployed.  Loops are driven with ``asyncio.run`` inside sync tests, so
no pytest-asyncio dependency.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager

import pytest

from repro.core.discovery import DiscoverySession
from repro.core.selection import MostEvenSelector
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser
from repro.serve import (
    AsyncDiscoveryService,
    DiscoveryApp,
    EmbeddedServer,
    FlushPolicy,
    LatencyReservoir,
    ScanScheduler,
    SessionRegistry,
)
from repro.serve.client import (
    HttpConnection,
    HttpSessionClient,
    ServerBusy,
    WsSessionClient,
)
from repro.serve.http import websocket_accept_key
from repro.serve.metrics import quantile_sorted


def make_collection(n_sets: int = 60, seed: int = 7):
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=10, size_hi=16, overlap=0.8, seed=seed
        ),
        backend="bigint",
    )


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


@asynccontextmanager
async def serve(
    collection,
    *,
    flush_after_ms: float = 1.0,
    max_batch: "int | None" = 64,
    require_auth: bool = True,
    service_kwargs: "dict | None" = None,
    app_kwargs: "dict | None" = None,
):
    """A live embedded server over loopback; yields (app, host, port)."""
    async with AsyncDiscoveryService(
        collection,
        flush_after_ms=flush_after_ms,
        max_batch=max_batch,
        **(service_kwargs or {}),
    ) as service:
        app = DiscoveryApp(service, require_auth=require_auth, **(app_kwargs or {}))
        async with EmbeddedServer(app, port=0) as server:
            yield app, server.host, server.port


def serialize_payloads(payloads) -> bytes:
    """Golden serialization of HTTP result payloads (mirrors
    tests/test_engine.serialize_results field for field)."""
    out = [
        {
            "candidates": p["candidates"],
            "n_questions": p["n_questions"],
            "transcript": [
                [
                    i["entity"],
                    i["answer"],
                    i["candidates_before"],
                    i["candidates_after"],
                ]
                for i in p["transcript"]
            ],
        }
        for p in payloads
    ]
    return json.dumps(out, sort_keys=True).encode()


def serialize_results(results) -> bytes:
    out = [
        {
            "candidates": r.candidates,
            "n_questions": r.n_questions,
            "transcript": [
                [i.entity, i.answer, i.candidates_before, i.candidates_after]
                for i in r.transcript
            ],
        }
        for r in results
    ]
    return json.dumps(out, sort_keys=True).encode()


def sequential_golden(collection, targets) -> bytes:
    results = []
    for target in targets:
        session = DiscoverySession(collection, MostEvenSelector())
        results.append(
            session.run(SimulatedUser(collection, target_index=target))
        )
    return serialize_results(results)


# --------------------------------------------------------------------- #
# Transcript parity over the wire
# --------------------------------------------------------------------- #


class TestTranscriptParity:
    TARGETS = [0, 7, 19, 33, 41, 52]

    def test_http_sessions_match_sequential_golden(self):
        collection = make_collection()
        golden = sequential_golden(collection, self.TARGETS)

        async def scenario():
            async with serve(collection) as (_, host, port):

                async def one(target):
                    oracle = SimulatedUser(collection, target_index=target)
                    async with HttpSessionClient(host, port) as client:
                        await client.create(selector="most-even")
                        return await client.run(oracle)

                return await asyncio.gather(
                    *(one(t) for t in self.TARGETS)
                )

        payloads = run(scenario())
        assert serialize_payloads(payloads) == golden
        assert all(p["resolved"] for p in payloads)

    def test_websocket_sessions_match_sequential_golden(self):
        collection = make_collection()
        golden = sequential_golden(collection, self.TARGETS)

        async def scenario():
            async with serve(collection) as (_, host, port):

                async def one(target):
                    oracle = SimulatedUser(collection, target_index=target)
                    async with WsSessionClient(host, port) as client:
                        await client.create(selector="most-even")
                        return await client.run(oracle)

                return await asyncio.gather(
                    *(one(t) for t in self.TARGETS)
                )

        payloads = run(scenario())
        assert serialize_payloads(payloads) == golden

    def test_http_and_ws_mixed_still_match(self):
        collection = make_collection()
        golden = sequential_golden(collection, self.TARGETS)

        async def scenario():
            async with serve(collection) as (_, host, port):

                async def one(i, target):
                    oracle = SimulatedUser(collection, target_index=target)
                    cls = HttpSessionClient if i % 2 else WsSessionClient
                    async with cls(host, port) as client:
                        await client.create(selector="most-even")
                        return await client.run(oracle)

                return await asyncio.gather(
                    *(one(i, t) for i, t in enumerate(self.TARGETS))
                )

        payloads = run(scenario())
        assert serialize_payloads(payloads) == golden


# --------------------------------------------------------------------- #
# Request validation: clear 4xx errors
# --------------------------------------------------------------------- #


class TestValidation:
    def test_auth_and_route_errors(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (_, host, port):
                async with HttpConnection(host, port) as conn:
                    status, created = await conn.request(
                        "POST", "/sessions", {"selector": "most-even"}
                    )
                    assert status == 201
                    sid, token = created["session"], created["token"]

                    # no token at all
                    status, body = await conn.request(
                        "GET", f"/sessions/{sid}/question"
                    )
                    assert (status, body["error"]) == (401, "missing-token")

                    # malformed Authorization header
                    status, body = await conn.request(
                        "GET", f"/sessions/{sid}/question", token=""
                    )
                    assert status in (401, 403)

                    # wrong token
                    status, body = await conn.request(
                        "GET", f"/sessions/{sid}/question", token="nope"
                    )
                    assert (status, body["error"]) == (403, "wrong-token")

                    # unknown session (404 before any token check)
                    status, body = await conn.request(
                        "GET", "/sessions/ghost/question", token=token
                    )
                    assert (status, body["error"]) == (
                        404,
                        "unknown-session",
                    )

                    # unknown route and wrong method
                    status, body = await conn.request("GET", "/nope")
                    assert (status, body["error"]) == (404, "not-found")
                    status, body = await conn.request("GET", "/sessions")
                    assert (status, body["error"]) == (
                        405,
                        "method-not-allowed",
                    )
                    status, body = await conn.request(
                        "POST", f"/sessions/{sid}/question", token=token
                    )
                    assert status == 405

        run(scenario())

    def test_create_validation(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (_, host, port):
                async with HttpConnection(host, port) as conn:
                    status, body = await conn.request(
                        "POST", "/sessions", {"selector": "quantum"}
                    )
                    assert (status, body["error"]) == (400, "bad-selector")

                    status, body = await conn.request(
                        "POST", "/sessions", {"initial": "e3"}
                    )
                    assert (status, body["error"]) == (400, "bad-initial")

                    status, body = await conn.request(
                        "POST", "/sessions", {"max_questions": 0}
                    )
                    assert (status, body["error"]) == (
                        400,
                        "bad-max-questions",
                    )

        run(scenario())

    def test_answer_validation(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (_, host, port):
                async with HttpSessionClient(host, port) as client:
                    await client.create(selector="most-even")
                    sid, token = client.session, client.token
                    conn = client.conn

                    # answer with no pending question
                    status, body = await conn.request(
                        "POST",
                        f"/sessions/{sid}/answer",
                        {"answer": True},
                        token=token,
                    )
                    assert (status, body["error"]) == (
                        409,
                        "no-pending-question",
                    )

                    assert await client.next_question() is not None

                    # body missing the field / wrong type
                    status, body = await conn.request(
                        "POST",
                        f"/sessions/{sid}/answer",
                        {},
                        token=token,
                    )
                    assert (status, body["error"]) == (
                        400,
                        "missing-answer",
                    )
                    status, body = await conn.request(
                        "POST",
                        f"/sessions/{sid}/answer",
                        {"answer": "yes"},
                        token=token,
                    )
                    assert (status, body["error"]) == (400, "bad-answer")

                    # Finish the session, then answer again: the handle
                    # still exists, so this is the session-finished 409
                    # (not unknown-session).  Finishing first keeps the
                    # check deterministic — right after a *recorded*
                    # answer the scheduler races to pre-select the next
                    # question, so a double answer may legitimately land
                    # on the new question instead of conflicting.
                    await client.send_answer(True)
                    await client.run(SimulatedUser(collection, target_index=3))
                    status, body = await conn.request(
                        "POST",
                        f"/sessions/{sid}/answer",
                        {"answer": False},
                        token=token,
                    )
                    assert (status, body["error"]) == (
                        409,
                        "session-finished",
                    )

        run(scenario())

    def test_bad_json_body(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (_, host, port):
                reader, writer = await asyncio.open_connection(host, port)
                payload = b"{not json"
                writer.write(
                    b"POST /sessions HTTP/1.1\r\nhost: x\r\n"
                    b"content-length: "
                    + str(len(payload)).encode()
                    + b"\r\n\r\n"
                    + payload
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b" 400 " in status_line
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_websocket_attach_and_protocol_errors(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (_, host, port):
                # attach with a bogus session -> error + close 1008
                async with WsSessionClient(host, port) as ws:
                    await ws.send_json(
                        {"type": "attach", "session": "ghost", "token": "x"}
                    )
                    message = await ws.receive_json()
                    assert message["type"] == "error"
                    assert message["error"] == "unknown-session"
                    assert await ws.receive_json() is None

                # first message must be create/attach
                async with WsSessionClient(host, port) as ws:
                    await ws.send_json({"type": "subscribe"})
                    message = await ws.receive_json()
                    assert message["type"] == "error"

                # create then attach over HTTP-minted credentials works
                async with HttpSessionClient(host, port) as http:
                    created = await http.create(selector="most-even")
                async with WsSessionClient(host, port) as ws:
                    await ws.send_json(
                        {
                            "type": "attach",
                            "session": created["session"],
                            "token": created["token"],
                        }
                    )
                    message = await ws.receive_json()
                    assert message["type"] == "attached"

        run(scenario())

    def test_accept_key_is_rfc6455(self):
        # The RFC 6455 worked example.
        assert (
            websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )


# --------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------- #


class TestDrain:
    def test_drain_rejects_new_sessions_but_finishes_inflight(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (app, host, port):
                oracle = SimulatedUser(collection, target_index=5)
                async with HttpSessionClient(host, port) as client:
                    await client.create(selector="most-even")
                    entity = await client.next_question()

                    app.begin_drain()

                    # new sessions: 503 over HTTP ...
                    async with HttpConnection(host, port) as conn:
                        status, body = await conn.request(
                            "POST", "/sessions", {}
                        )
                        assert (status, body["error"]) == (503, "draining")
                    # ... and a websocket create is refused pre-accept
                    with pytest.raises(ConnectionError):
                        async with WsSessionClient(host, port):
                            pass

                    # the in-flight session runs to completion
                    await client.send_answer(oracle(entity))
                    payload = await client.run(oracle)
                    assert payload["resolved"]

                    status, health = await client.conn.request(
                        "GET", "/healthz"
                    )
                    assert health["status"] == "draining"
                    assert health["active_sessions"] == 0

        run(scenario())

    def test_aclose_rejects_stranded_waiters_with_503(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            # A huge budget and no watermark: with two sessions and only
            # one asking, the policy never fires, so the long-poll hangs
            # until drain's aclose() rejects it -> 503, not a dead socket.
            async with serve(
                collection, flush_after_ms=60_000.0, max_batch=None
            ) as (app, host, port):
                async with (
                    HttpSessionClient(host, port) as asker,
                    HttpSessionClient(host, port) as idler,
                ):
                    await asker.create(selector="most-even")
                    await idler.create(selector="most-even")
                    poll = asyncio.create_task(
                        asker.conn.request(
                            "GET",
                            f"/sessions/{asker.session}/question",
                            token=asker.token,
                        )
                    )
                    await asyncio.sleep(0.05)
                    assert not poll.done()

                    await app.drain(grace_s=0.2)

                    status, body = await poll
                    assert (status, body["error"]) == (503, "draining")

        run(scenario())


# --------------------------------------------------------------------- #
# Metrics endpoint + ServiceMetrics plumbing
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_metrics_exposition_after_traffic(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (app, host, port):
                oracle = SimulatedUser(collection, target_index=3)
                async with HttpSessionClient(host, port) as client:
                    await client.create(selector="most-even")
                    await client.run(oracle)
                    status, text = await client.conn.request(
                        "GET", "/metrics"
                    )
                assert status == 200
                return app, text

        app, text = run(scenario())
        for needle in [
            'repro_ask_latency_seconds{quantile="0.5"}',
            'repro_ask_latency_seconds{quantile="0.95"}',
            'repro_ask_latency_seconds{quantile="0.99"}',
            "repro_ask_latency_seconds_count",
            "repro_queue_depth 0",
            "repro_flush_occupancy",
            'repro_sessions{phase="finished"} 1',
            'repro_sessions{phase="needs-scan"} 0',
            "repro_websocket_sessions 0",
            "repro_flushes_total",
            "repro_flushed_requests_total",
            'repro_http_requests_total{route="/sessions",status="201"} 1',
            'repro_http_requests_total{route="/sessions/{id}/question"'
            ',status="200"}',
        ]:
            assert needle in text, needle
        # every ask was observed, occupancy is a sane mean
        assert app.metrics.ask_latency.count > 0
        assert app.metrics.flush_occupancy > 0.0
        snapshot = app.metrics.snapshot()
        assert set(snapshot["ask_latency_ms"]) == {"p50", "p95", "p99"}
        assert snapshot["sessions"]["finished"] == 1

    def test_ws_session_gauge_tracks_live_connections(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with serve(collection) as (app, host, port):
                async with WsSessionClient(host, port) as ws:
                    await ws.create(selector="most-even")
                    assert app.metrics.ws_sessions == 1
                await asyncio.sleep(0.05)
                assert app.metrics.ws_sessions == 0

        run(scenario())


class TestMetricsUnits:
    def test_quantile_sorted(self):
        assert quantile_sorted([], 0.5) == 0.0
        assert quantile_sorted([3.0], 0.99) == 3.0
        values = [float(i) for i in range(1, 101)]
        assert quantile_sorted(values, 0.0) == 1.0
        assert quantile_sorted(values, 1.0) == 100.0
        assert quantile_sorted(values, 0.5) == 51.0  # nearest rank

    def test_latency_reservoir_window_and_lifetime(self):
        reservoir = LatencyReservoir(window=4)
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]:
            reservoir.observe(value)
        assert len(reservoir) == 4  # window kept the newest four
        assert reservoir.count == 6  # lifetime count never resets
        assert reservoir.total_seconds == pytest.approx(21.0)
        quantiles = reservoir.quantiles((0.5, 1.0))
        assert quantiles[1.0] == 6.0


# --------------------------------------------------------------------- #
# FlushPolicy: the one home of the flush decision
# --------------------------------------------------------------------- #


class TestFlushPolicy:
    def test_watermark_and_deadline(self):
        policy = FlushPolicy(flush_after_ms=5.0, max_batch=3)
        assert not policy.watermark_hit(2)
        assert policy.watermark_hit(3)
        assert policy.deadline(None) is None
        assert policy.deadline(10.0) == pytest.approx(10.005)
        assert not policy.due(10.0, 10.004)
        assert policy.due(10.0, 10.005)
        assert policy.should_flush(queued=3, first_at=None, now=0.0)
        assert policy.should_flush(queued=1, first_at=0.0, now=1.0)
        assert not policy.should_flush(queued=1, first_at=1.0, now=1.001)

    def test_disabled_arms(self):
        manual = FlushPolicy(flush_after_ms=None, max_batch=None)
        # both arms off: the policy never fires on its own — flushing is
        # the front-end's job (lock-step ticks / all-waiting shortcut)
        assert manual.deadline(5.0) is None
        assert not manual.due(first_at=5.0, now=1e9)
        assert not manual.watermark_hit(10_000)
        assert not manual.should_flush(
            queued=10_000, first_at=5.0, now=1e9
        )

    def test_scheduler_delegates_to_its_policy(self):
        collection = make_collection(n_sets=30)
        now = 100.0
        scheduler = ScanScheduler(
            SessionRegistry(collection),
            flush_after_ms=4.0,
            max_batch=2,
            clock=lambda: now,
        )
        assert scheduler.policy == FlushPolicy(
            flush_after_ms=4.0, max_batch=2
        )
        assert scheduler.flush_after_ms == 4.0
        assert scheduler.max_batch == 2
        key = scheduler.registry.spawn(MostEvenSelector())
        scheduler.submit(scheduler.registry.state(key))
        # one queued request: policy and scheduler agree at every clock
        assert scheduler.should_flush() == scheduler.policy.should_flush(
            scheduler.pending_requests, now, now
        )
        assert not scheduler.should_flush()
        now = 100.0041
        assert scheduler.should_flush()  # budget elapsed

    def test_flushed_requests_counter_feeds_occupancy(self):
        collection = make_collection(n_sets=30)
        scheduler = ScanScheduler(
            SessionRegistry(collection), flush_after_ms=None, max_batch=None
        )
        for _ in range(3):
            key = scheduler.registry.spawn(MostEvenSelector())
            scheduler.submit(scheduler.registry.state(key))
        scheduler.flush()
        # flush() counts served requests; the front-end counts the round
        # (ticks) — together they give ServiceMetrics.flush_occupancy.
        assert scheduler.stats.flushed_requests == 3
        scheduler.stats.ticks = 1

        class Source:
            stats = scheduler.stats
            registry = scheduler.registry

        Source.scheduler = scheduler
        from repro.serve import ServiceMetrics

        assert ServiceMetrics(Source()).flush_occupancy == 3.0


# --------------------------------------------------------------------- #
# Backpressure (429 / busy) and WebSocket reconnect
# --------------------------------------------------------------------- #


class TestBackpressureAndReconnect:
    def test_http_429_with_retry_after_header_at_session_cap(self):
        collection = make_collection()

        async def scenario():
            async with serve(
                collection,
                service_kwargs={"max_sessions": 1, "retry_after_s": 2.5},
            ) as (app, host, port):
                async with HttpSessionClient(host, port) as first:
                    await first.create(selector="most-even")
                    # The typed client surfaces the shed as ServerBusy
                    # with the server's body hint.
                    async with HttpSessionClient(host, port) as second:
                        with pytest.raises(ServerBusy) as excinfo:
                            await second.create(selector="most-even")
                        assert excinfo.value.retry_after_s == 2.5
                    # Raw socket: the Retry-After header must be present
                    # and integral (ceil of the configured hint).
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        b"POST /sessions HTTP/1.1\r\nhost: t\r\n"
                        b"content-type: application/json\r\n"
                        b"content-length: 2\r\nconnection: close\r\n\r\n{}"
                    )
                    await writer.drain()
                    status_line = await reader.readline()
                    assert b"429" in status_line
                    headers = {}
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n", b""):
                            break
                        name, _, value = line.decode().partition(":")
                        headers[name.strip().lower()] = value.strip()
                    writer.close()
                    assert headers["retry-after"] == "3"
                    # Both sheds were counted, none admitted.
                    async with HttpConnection(host, port) as conn:
                        _, text = await conn.request("GET", "/metrics")
                    assert (
                        'repro_backpressure_rejections_total{kind="sessions"} 2'
                        in text
                    )
                    # The first session is still fully usable.
                    assert await first.next_question() is not None

        run(scenario())

    def test_ws_create_busy_close_at_session_cap(self):
        collection = make_collection()

        async def scenario():
            async with serve(
                collection, service_kwargs={"max_sessions": 1}
            ) as (app, host, port):
                async with HttpSessionClient(host, port) as occupant:
                    await occupant.create(selector="most-even")
                    ws = WsSessionClient(host, port)
                    await ws.connect()
                    with pytest.raises(ServerBusy):
                        await ws.create(selector="most-even")
                    await ws.aclose()
                    async with HttpConnection(host, port) as conn:
                        _, text = await conn.request("GET", "/metrics")
                    # Counted at the service (kind="sessions") and at the
                    # websocket edge (kind="ws-busy").
                    assert (
                        'repro_backpressure_rejections_total{kind="sessions"} 1'
                        in text
                    )
                    assert (
                        'repro_backpressure_rejections_total{kind="ws-busy"} 1'
                        in text
                    )

        run(scenario())

    def test_ws_attach_reconnect_replays_pending_question(self):
        collection = make_collection()
        target = 23

        async def scenario():
            oracle = SimulatedUser(collection, target_index=target)
            async with serve(collection) as (app, host, port):
                ws = WsSessionClient(host, port)
                await ws.connect()
                await ws.create(selector="most-even")
                session, token = ws.session, ws.token
                # Answer two questions, receive a third... and vanish
                # without answering it.
                for _ in range(2):
                    message = await ws.receive_json()
                    assert message["type"] == "question"
                    await ws.send_json(
                        {"type": "answer", "value": oracle(message["entity"])}
                    )
                pending = await ws.receive_json()
                assert pending["type"] == "question"
                await ws.aclose()

                # Reconnect on a fresh socket with the bearer token: the
                # pending question is replayed verbatim, and the session
                # runs to completion as if nothing happened.
                fresh = WsSessionClient(host, port)
                await fresh.connect()
                reply = await fresh.attach(session, token)
                assert reply["session"] == session
                replayed = await fresh.receive_json()
                assert replayed["type"] == "question"
                assert replayed["entity"] == pending["entity"]
                await fresh.send_json(
                    {"type": "answer", "value": oracle(replayed["entity"])}
                )
                payload = await fresh.run(oracle)
                await fresh.aclose()
                # Byte-identical to the sequential in-process run.
                assert serialize_payloads([payload]) == sequential_golden(
                    collection, [target]
                )
                # A wrong token can never attach.
                intruder = WsSessionClient(host, port)
                await intruder.connect()
                with pytest.raises(RuntimeError):
                    await intruder.attach(session, "wrong-token")
                await intruder.aclose()

        run(scenario())

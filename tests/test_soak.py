"""Tests for the soak/chaos harness (``repro.soak``).

Two layers of coverage:

* **units** — the determinism contract (population, fault plan, oracle
  answers and delta specs are pure functions of the seed), the delta
  spec round-trip through the real ``apply_delta``, and the invariant
  machinery itself (watchdog, RSS slope, Prometheus parsing, metrics
  cross-check);
* **end to end** — short real soak runs: in-process with every
  in-process fault, server mode with a mid-run restart (two lives), and
  an overload stampede that must bounce off ``max_sessions``.

The end-to-end runs are the same code path as ``python -m repro soak``;
they assert ``report.ok`` so any invariant violation fails the test
with the violation list in the repr.
"""

from __future__ import annotations

import random

import pytest

from repro.serve.http import delta_batch_from_spec
from repro.soak import (
    FAULTS_BY_MODE,
    GroundTruth,
    InvariantChecker,
    RssSampler,
    SoakConfig,
    StuckWatchdog,
    build_delta_spec,
    build_fault_plan,
    build_population,
    make_oracle,
    run_soak,
)
from repro.soak.driver import parse_prometheus


def make_config(**overrides) -> SoakConfig:
    defaults = dict(
        seed=7,
        duration_s=10.0,
        mode="inprocess",
        faults=("storm", "delta"),
        users=8,
        n_sets=120,
        size_lo=8,
        size_hi=14,
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


# --------------------------------------------------------------------- #
# Determinism: everything derives from the seed
# --------------------------------------------------------------------- #


class TestDeterminism:
    def test_population_is_a_pure_function_of_the_seed(self):
        cfg = make_config()
        assert build_population(cfg) == build_population(cfg)
        other = build_population(make_config(seed=8))
        assert other != build_population(cfg)

    def test_population_joins_inside_the_window(self):
        cfg = make_config(duration_s=20.0, users=30)
        scripts = build_population(cfg)
        assert len(scripts) == 30
        assert all(0.0 <= s.join_at <= cfg.duration_s * 0.8 for s in scripts)
        # join times are non-decreasing (Poisson arrivals)
        joins = [s.join_at for s in scripts]
        assert joins == sorted(joins)

    def test_drop_schedules_require_the_drop_fault(self):
        without = build_population(make_config(faults=("storm",)))
        assert all(s.drop_at is None for s in without)
        with_drop = build_population(
            make_config(faults=("drop",), users=40, drop_rate=0.5)
        )
        assert any(s.drop_at is not None for s in with_drop)

    def test_fault_plan_is_deterministic_sorted_and_in_range(self):
        cfg = make_config(
            faults=("stall", "storm", "delta", "drop", "overload"),
            max_sessions=4,
        )
        plan = build_fault_plan(cfg)
        assert plan == build_fault_plan(cfg)
        times = [e.at for e in plan]
        assert times == sorted(times)
        assert all(0.0 < t < cfg.duration_s for t in times)
        kinds = {e.kind for e in plan}
        # "drop" has no events of its own; it only flips user scripts.
        assert kinds == {"stall", "storm", "delta", "overload"}

    def test_restart_events_only_in_server_mode(self):
        cfg = make_config(
            mode="server", faults=("restart",), duration_s=30.0
        )
        plan = build_fault_plan(cfg)
        assert plan and all(e.kind == "restart" for e in plan)

    def test_oracle_answers_are_pure_per_entity(self):
        cfg = make_config()
        replica = cfg.build_collection()
        oracle = make_oracle(replica, target_index=3, dk_rate=0.3, salt=99)
        answers = [oracle(e) for e in range(40)]
        assert answers == [oracle(e) for e in range(40)]  # call-order free
        assert None in answers  # dk_rate=0.3 over 40 entities must lie
        honest = make_oracle(replica, target_index=3, dk_rate=0.0, salt=99)
        members = replica.set_labels(3)
        assert all(
            honest(e) == (replica.universe.label(e) in members)
            for e in range(40)
        )

    def test_config_rejects_mode_fault_mismatches(self):
        with pytest.raises(ValueError):
            make_config(faults=("restart",))  # needs server mode
        with pytest.raises(ValueError):
            make_config(mode="server", faults=("stall",))
        with pytest.raises(ValueError):
            make_config(faults=("lightning",))
        assert "restart" in FAULTS_BY_MODE["server"]

    def test_overload_defaults_fill_a_session_cap(self):
        cfg = make_config(faults=("overload",), users=30)
        assert cfg.max_sessions is None
        filled = cfg.with_overload_defaults()
        assert filled.max_sessions == 10
        untouched = make_config().with_overload_defaults()
        assert untouched.max_sessions is None


# --------------------------------------------------------------------- #
# Delta specs: deterministic and applicable
# --------------------------------------------------------------------- #


class TestDeltaSpec:
    def test_spec_is_deterministic_and_round_trips(self):
        cfg = make_config()
        replica = cfg.build_collection()
        spec1, counter1 = build_delta_spec(replica, random.Random(5), 0)
        spec2, counter2 = build_delta_spec(replica, random.Random(5), 0)
        assert (spec1, counter1) == (spec2, counter2)
        assert counter1 >= 1  # at least one soakN set was added

        # The spec must apply cleanly to the replica it was built from,
        # and keep applying as the chain grows (chained specs stay valid
        # against the evolved replica).
        chain = replica
        counter = 0
        rng = random.Random(5)
        for step in range(4):
            spec, counter = build_delta_spec(chain, rng, counter)
            chain = chain.apply_delta(delta_batch_from_spec(spec))
            assert chain.epoch == step + 1
        assert any(n.startswith("soak") for n in chain.names)


# --------------------------------------------------------------------- #
# Invariant machinery units
# --------------------------------------------------------------------- #


class TestInvariantUnits:
    def test_watchdog_flags_only_outside_pause_windows(self):
        dog = StuckWatchdog(stuck_after_s=0.0)
        dog.waiting(1, "ask")
        flagged = dog.scan()
        assert [v.name for v in flagged] == ["stuck_session"]
        assert dog.scan() == []  # one flag per user
        dog.waiting(2, "result")
        dog.pause(grace_s=30.0)
        assert dog.scan() == []  # restarts excuse everyone
        dog.progressed(2)
        dog.resume()
        assert dog.scan() == []  # grace window after resume

    def test_rss_slope_least_squares(self):
        sampler = RssSampler(pid=1)
        mib = 1024 * 1024
        # 2 MiB/s linear growth, sampled for 30s
        sampler.samples = [(float(t), (100 + 2 * t) * mib) for t in range(31)]
        slope = sampler.slope_mb_s(warmup_fraction=0.0)
        assert slope == pytest.approx(2.0, rel=1e-6)
        sampler.samples = sampler.samples[:5]
        assert sampler.slope_mb_s() is None  # too few points

    def test_rss_sampler_reads_own_process(self):
        import os

        sampler = RssSampler(os.getpid())
        sampler.sample()
        if sampler.available:  # no /proc => silently a no-op
            assert sampler.samples and sampler.samples[0][1] > 0

    def test_parse_prometheus_scalars_and_labels(self):
        text = (
            "# HELP repro_x Something.\n"
            "# TYPE repro_x counter\n"
            "repro_x 41\n"
            'repro_y{kind="sessions"} 2\n'
            'repro_y{kind="asks"} 3\n'
            "not a metric line\n"
        )
        parsed = parse_prometheus(text)
        assert parsed["scalar"]["repro_x"] == 41.0
        assert parsed["labeled"]["repro_y"] == {"sessions": 2.0, "asks": 3.0}

    def test_metrics_cross_check_catches_drift(self):
        truth = GroundTruth(
            completions=5,
            deltas_applied=2,
            replica_epoch=2,
            busy_http_create=1,
            busy_ws_create=1,
            busy_http_ask=0,
            busy_ws_mid=1,
        )
        honest = {
            "sessions": {"finished": 5},
            "deltas_applied": 2,
            "collection_epoch": 2,
            "backpressure_rejections": {
                "sessions": 2,
                "asks": 1,
                "ws-busy": 2,
            },
        }
        checker = InvariantChecker(epoch_cap=5, rss_limit_mb_s=6.0)
        checker.check_metrics(honest, truth)
        assert checker.ok

        lying = dict(honest, deltas_applied=1)
        checker = InvariantChecker(epoch_cap=5, rss_limit_mb_s=6.0)
        checker.check_metrics(lying, truth)
        assert [v.name for v in checker.violations] == ["metrics"]

    def test_epoch_cap_and_quiesce_rules(self):
        checker = InvariantChecker(epoch_cap=3, rss_limit_mb_s=6.0)
        checker.check_epochs(3, quiesced=False)
        assert checker.ok
        checker.check_epochs(4, quiesced=False)
        assert not checker.ok
        checker = InvariantChecker(epoch_cap=3, rss_limit_mb_s=6.0)
        checker.check_epochs(2, quiesced=True)
        assert [v.name for v in checker.violations] == ["epoch_gc"]


# --------------------------------------------------------------------- #
# End to end: real soak runs, short but hostile
# --------------------------------------------------------------------- #


class TestSoakEndToEnd:
    def test_inprocess_soak_survives_all_faults(self):
        cfg = make_config(
            duration_s=4.0,
            faults=("stall", "storm", "delta", "drop", "overload"),
            users=8,
            session_ttl_s=1.0,
            think_ms=40.0,
            max_sessions=4,
        )
        report = run_soak(cfg)
        assert report.ok, report.violations
        assert report.counters["sessions_completed"] > 0
        assert report.parity_checked == report.counters["sessions_completed"]
        assert report.counters["busy_total"] > 0  # overload actually bit
        assert report.lives == 1

    def test_server_soak_restart_spans_two_lives(self):
        cfg = make_config(
            mode="server",
            duration_s=9.0,
            faults=("restart", "storm", "delta", "drop"),
            users=8,
            session_ttl_s=2.0,
            think_ms=40.0,
        )
        report = run_soak(cfg)
        assert report.ok, report.violations
        assert report.lives == 2
        assert report.counters["restarts"] == 1
        assert report.counters["sessions_completed"] > 0
        assert report.parity_checked == report.counters["sessions_completed"]
        assert report.counters["deltas"] > 0

    def test_server_overload_is_shed_not_queued(self):
        cfg = make_config(
            mode="server",
            duration_s=5.0,
            faults=("overload",),
            users=6,
            max_sessions=3,
            max_queued=8,
            think_ms=30.0,
        )
        report = run_soak(cfg)
        assert report.ok, report.violations
        # The stampede was actually shed — and the metrics invariant
        # (checked inside the run) proved /metrics counted every shed.
        assert report.counters["busy_total"] > 0
        assert report.counters["sessions_completed"] > 0

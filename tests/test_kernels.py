"""Cross-backend parity tests for the entity-statistics kernels.

The numpy backend must reproduce the big-int reference *exactly*: same
counts, same partition masks, same informative-entity lists and — because
every selector tie-breaks deterministically — the same selected entity on
every sub-collection, including engineered ties and "don't know"
exclusions.  Randomized collections keep both backends honest beyond the
worked examples.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import AD, H
from repro.core.collection import SetCollection
from repro.core.batch import select_batch
from repro.core.gain_k import GainKSelector, UnprunedKLPSelector, lb_k
from repro.core.kernels import (
    AUTO_MIN_CELLS,
    BackendUnavailableError,
    HAS_NUMPY,
    available_backends,
    resolve_backend_name,
)
from repro.core.lookahead import KLPSelector
from repro.core.selection import (
    IndistinguishablePairsSelector,
    InfoGainSelector,
    LB1Selector,
    MostEvenSelector,
    NoInformativeEntityError,
)

from conftest import FIG1_SETS

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy backend unavailable"
)

BOTH_BACKENDS = ["bigint"] + (["numpy"] if HAS_NUMPY else [])


def random_sets(rng: random.Random, n_sets: int, universe: int) -> list[list[int]]:
    """Unique random sets over a small universe (dense, tie-prone)."""
    seen: set[frozenset[int]] = set()
    out: list[list[int]] = []
    while len(out) < n_sets:
        size = rng.randint(2, max(3, universe // 2))
        fs = frozenset(rng.sample(range(universe), size))
        if fs in seen:
            continue
        seen.add(fs)
        out.append(sorted(fs))
    return out


def backend_pair(raw: list[list[int]]) -> tuple[SetCollection, SetCollection]:
    """The same sets under the reference and the vectorized backend."""
    return (
        SetCollection(raw, backend="bigint"),
        SetCollection(raw, backend="numpy"),
    )


def random_masks(rng: random.Random, full: int, count: int) -> list[int]:
    masks = [full]
    while len(masks) < count:
        m = rng.getrandbits(full.bit_length()) & full
        if m.bit_count() >= 2:
            masks.append(m)
    return masks


# --------------------------------------------------------------------- #
# Backend selection plumbing
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_bigint_always_available(self):
        assert "bigint" in available_backends()

    def test_explicit_bigint(self):
        coll = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        assert coll.backend == "bigint"

    @needs_numpy
    def test_explicit_numpy(self):
        coll = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        assert coll.backend == "numpy"

    @needs_numpy
    def test_auto_small_collection_prefers_bigint(self, monkeypatch):
        # fig1's bit-matrix is far below AUTO_MIN_CELLS; with no explicit
        # request from anywhere, auto keeps the cheaper reference backend.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        coll = SetCollection.from_named_sets(FIG1_SETS)
        assert coll.n_sets * coll.n_entities < AUTO_MIN_CELLS
        assert coll.backend == "bigint"

    @needs_numpy
    def test_env_var_forces_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert SetCollection.from_named_sets(FIG1_SETS).backend == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bigint")
        assert SetCollection.from_named_sets(FIG1_SETS).backend == "bigint"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("fortran")

    @pytest.mark.skipif(HAS_NUMPY, reason="only meaningful without numpy")
    def test_numpy_request_without_numpy_raises(self):  # pragma: no cover
        with pytest.raises(BackendUnavailableError):
            resolve_backend_name("numpy")


# --------------------------------------------------------------------- #
# Batched API parity
# --------------------------------------------------------------------- #


@needs_numpy
class TestBatchedStatsParity:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = random.Random(101)
        return backend_pair(random_sets(rng, 60, 24))

    def test_positive_counts_match(self, pair):
        ref, vec = pair
        rng = random.Random(7)
        eids = list(range(-1, 30))  # includes unknown ids on both ends
        for mask in random_masks(rng, ref.full_mask, 25):
            assert ref.positive_counts(mask, eids) == vec.positive_counts(
                mask, eids
            )

    def test_positive_counts_match_reference_loop(self, pair):
        ref, vec = pair
        mask = ref.full_mask
        eids = list(range(ref.n_entities))
        expected = [ref.positive_count(mask, e) for e in eids]
        assert vec.positive_counts(mask, eids) == expected

    def test_partition_many_match(self, pair):
        ref, vec = pair
        rng = random.Random(8)
        eids = list(range(26))
        for mask in random_masks(rng, ref.full_mask, 25):
            ref_parts = ref.partition_many(mask, eids)
            vec_parts = vec.partition_many(mask, eids)
            assert ref_parts == vec_parts
            for pos, neg in vec_parts:
                assert pos & neg == 0
                assert pos | neg == mask

    def test_partition_many_matches_partition(self, pair):
        _, vec = pair
        eids = list(range(24))
        for eid, pair_masks in zip(
            eids, vec.partition_many(vec.full_mask, eids)
        ):
            assert pair_masks == vec.partition(vec.full_mask, eid)

    def test_informative_entities_match(self, pair):
        ref, vec = pair
        rng = random.Random(9)
        for mask in random_masks(rng, ref.full_mask, 25):
            assert ref.informative_entities(mask) == vec.informative_entities(
                mask
            )

    def test_informative_entities_sorted_by_entity_id(self, pair):
        _, vec = pair
        eids = [e for e, _ in vec.informative_entities(vec.full_mask)]
        assert eids == sorted(eids)

    def test_candidate_scan_preserves_order(self, pair):
        ref, vec = pair
        candidates = [5, 3, 9, 1, 400]  # 400 unknown
        assert ref.informative_entities(
            ref.full_mask, candidates
        ) == vec.informative_entities(vec.full_mask, candidates)

    def test_stray_high_mask_bits_are_tolerated(self, pair):
        ref, vec = pair
        mask = ref.full_mask | (1 << (ref.n_sets + 5))
        eids = list(range(10))
        assert ref.positive_counts(mask, eids) == vec.positive_counts(
            mask, eids
        )


# --------------------------------------------------------------------- #
# Selection parity
# --------------------------------------------------------------------- #


def all_selectors():
    return [
        MostEvenSelector(),
        InfoGainSelector(),
        IndistinguishablePairsSelector(),
        LB1Selector(AD),
        LB1Selector(H),
        GainKSelector(k=2),
        KLPSelector(k=2, metric=AD),
        KLPSelector(k=2, metric=H),
        KLPSelector(k=3, metric=AD, q=3),
        KLPSelector(k=3, metric=AD, q=2, variable=True),
        UnprunedKLPSelector(k=2, metric=AD),
    ]


@needs_numpy
class TestSelectionParity:
    @pytest.mark.parametrize(
        "seed,n_sets,universe", [(1, 40, 20), (2, 25, 12), (3, 80, 30)]
    )
    def test_selectors_agree_on_random_collections(
        self, seed, n_sets, universe
    ):
        rng = random.Random(seed)
        ref, vec = backend_pair(random_sets(rng, n_sets, universe))
        masks = random_masks(rng, ref.full_mask, 8)
        for selector in all_selectors():
            for mask in masks:
                selector.reset()
                chosen_ref = selector.select(ref, mask)
                selector.reset()
                chosen_vec = selector.select(vec, mask)
                assert chosen_ref == chosen_vec, (
                    f"{selector.name} diverged on mask {mask:#x}"
                )

    def test_selectors_agree_on_fig1(self):
        ref = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        vec = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        for selector in all_selectors():
            selector.reset()
            chosen = selector.select(ref, ref.full_mask)
            selector.reset()
            assert selector.select(vec, vec.full_mask) == chosen

    def test_fig1_most_even_worked_example(self):
        # Sec. 3 worked example: 'c' and 'd' both split Fig. 1 into 3/4,
        # the most even split.  Which of the two wins the entity-id
        # tie-break depends on interning order (FIG1_SETS holds literal
        # sets, so label order is hash-randomized per process), but within
        # one process every backend must pick the same one: the lower id.
        for backend in BOTH_BACKENDS:
            coll = SetCollection.from_named_sets(FIG1_SETS, backend=backend)
            chosen = MostEvenSelector().select(coll, coll.full_mask)
            assert coll.universe.label(chosen) in {"c", "d"}
            assert chosen == min(
                coll.universe.id_of("c"), coll.universe.id_of("d")
            )
            assert coll.positive_count(coll.full_mask, chosen) == 3

    def test_tie_break_parity_on_engineered_ties(self):
        # Singleton sets: every entity splits 1/(n-1) — all tied; the
        # deterministic entity-id tie-break must agree across backends.
        raw = [[i] for i in range(12)]
        ref, vec = backend_pair(raw)
        for selector in all_selectors():
            selector.reset()
            chosen_ref = selector.select(ref, ref.full_mask)
            selector.reset()
            assert selector.select(vec, vec.full_mask) == chosen_ref

    def test_exclusion_parity(self):
        # "Don't know" answers (Sec. 6) remove entities; backends must
        # agree on the runner-up too.
        rng = random.Random(11)
        ref, vec = backend_pair(random_sets(rng, 30, 15))
        for selector in all_selectors():
            selector.reset()
            first = selector.select(ref, ref.full_mask)
            exclude = frozenset({first})
            selector.reset()
            chosen_ref = selector.select(ref, ref.full_mask, exclude=exclude)
            selector.reset()
            chosen_vec = selector.select(vec, vec.full_mask, exclude=exclude)
            assert chosen_ref == chosen_vec
            assert chosen_ref != first

    def test_everything_excluded_raises_on_both(self):
        ref, vec = backend_pair([[0, 1], [1, 2], [2, 3]])
        exclude = frozenset(range(4))
        for coll in (ref, vec):
            with pytest.raises(NoInformativeEntityError):
                MostEvenSelector().select(coll, coll.full_mask, exclude=exclude)

    def test_lb_k_parity(self):
        rng = random.Random(21)
        ref, vec = backend_pair(random_sets(rng, 16, 10))
        for metric in (AD, H):
            for k in (0, 1, 2, 3):
                assert lb_k(ref, ref.full_mask, k, metric) == lb_k(
                    vec, vec.full_mask, k, metric
                )

    def test_klp_lower_bound_parity(self):
        rng = random.Random(22)
        ref, vec = backend_pair(random_sets(rng, 20, 12))
        for metric in (AD, H):
            sel_ref = KLPSelector(k=2, metric=metric)
            sel_vec = KLPSelector(k=2, metric=metric)
            assert sel_ref.lower_bound(ref) == sel_vec.lower_bound(vec)


# --------------------------------------------------------------------- #
# Batch (multiple-choice) parity
# --------------------------------------------------------------------- #


@needs_numpy
class TestBatchParity:
    def test_select_batch_agrees(self):
        rng = random.Random(31)
        ref, vec = backend_pair(random_sets(rng, 30, 16))
        for size in (1, 2, 3):
            assert select_batch(ref, ref.full_mask, size) == select_batch(
                vec, vec.full_mask, size
            )

    def test_select_batch_agrees_on_fig1(self):
        ref = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        vec = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        assert select_batch(ref, ref.full_mask, 3) == select_batch(
            vec, vec.full_mask, 3
        )

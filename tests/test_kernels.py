"""Cross-backend parity tests for the entity-statistics kernels.

The numpy backend must reproduce the big-int reference *exactly*: same
counts, same partition masks, same informative-entity lists and — because
every selector tie-breaks deterministically — the same selected entity on
every sub-collection, including engineered ties and "don't know"
exclusions.  Randomized collections keep both backends honest beyond the
worked examples.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bounds import AD, H
from repro.core.collection import SetCollection
from repro.core.batch import select_batch
from repro.core.gain_k import GainKSelector, UnprunedKLPSelector, lb_k
from repro.core.kernels import (
    AUTO_MIN_CELLS,
    BackendUnavailableError,
    HAS_NATIVE,
    HAS_NUMPY,
    available_backends,
    resolve_backend_name,
)
from repro.core.lookahead import KLPSelector
from repro.core.selection import (
    IndistinguishablePairsSelector,
    InfoGainSelector,
    LB1Selector,
    MostEvenSelector,
    NoInformativeEntityError,
)

from conftest import FIG1_SETS

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy backend unavailable"
)

BOTH_BACKENDS = (
    ["bigint"]
    + (["numpy"] if HAS_NUMPY else [])
    + (["native"] if HAS_NATIVE else [])
)


def random_sets(rng: random.Random, n_sets: int, universe: int) -> list[list[int]]:
    """Unique random sets over a small universe (dense, tie-prone)."""
    seen: set[frozenset[int]] = set()
    out: list[list[int]] = []
    while len(out) < n_sets:
        size = rng.randint(2, max(3, universe // 2))
        fs = frozenset(rng.sample(range(universe), size))
        if fs in seen:
            continue
        seen.add(fs)
        out.append(sorted(fs))
    return out


def backend_pair(raw: list[list[int]]) -> tuple[SetCollection, SetCollection]:
    """The same sets under the reference and the vectorized backend."""
    return (
        SetCollection(raw, backend="bigint"),
        SetCollection(raw, backend="numpy"),
    )


def random_masks(rng: random.Random, full: int, count: int) -> list[int]:
    masks = [full]
    while len(masks) < count:
        m = rng.getrandbits(full.bit_length()) & full
        if m.bit_count() >= 2:
            masks.append(m)
    return masks


# --------------------------------------------------------------------- #
# Backend selection plumbing
# --------------------------------------------------------------------- #


class TestBackendSelection:
    def test_bigint_always_available(self):
        assert "bigint" in available_backends()

    def test_explicit_bigint(self):
        coll = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        assert coll.backend == "bigint"

    @needs_numpy
    def test_explicit_numpy(self):
        coll = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        assert coll.backend == "numpy"

    @needs_numpy
    def test_auto_small_collection_prefers_bigint(self, monkeypatch):
        # fig1's bit-matrix is far below AUTO_MIN_CELLS; with no explicit
        # request from anywhere, auto keeps the cheaper reference backend.
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        coll = SetCollection.from_named_sets(FIG1_SETS)
        assert coll.n_sets * coll.n_entities < AUTO_MIN_CELLS
        assert coll.backend == "bigint"

    @needs_numpy
    def test_env_var_forces_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert SetCollection.from_named_sets(FIG1_SETS).backend == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bigint")
        assert SetCollection.from_named_sets(FIG1_SETS).backend == "bigint"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend_name("fortran")

    @pytest.mark.skipif(HAS_NUMPY, reason="only meaningful without numpy")
    def test_numpy_request_without_numpy_raises(self):  # pragma: no cover
        with pytest.raises(BackendUnavailableError):
            resolve_backend_name("numpy")


# --------------------------------------------------------------------- #
# Batched API parity
# --------------------------------------------------------------------- #


@needs_numpy
class TestBatchedStatsParity:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = random.Random(101)
        return backend_pair(random_sets(rng, 60, 24))

    def test_positive_counts_match(self, pair):
        ref, vec = pair
        rng = random.Random(7)
        eids = list(range(-1, 30))  # includes unknown ids on both ends
        for mask in random_masks(rng, ref.full_mask, 25):
            assert ref.positive_counts(mask, eids) == vec.positive_counts(
                mask, eids
            )

    def test_positive_counts_match_reference_loop(self, pair):
        ref, vec = pair
        mask = ref.full_mask
        eids = list(range(ref.n_entities))
        expected = [ref.positive_count(mask, e) for e in eids]
        assert vec.positive_counts(mask, eids) == expected

    def test_partition_many_match(self, pair):
        ref, vec = pair
        rng = random.Random(8)
        eids = list(range(26))
        for mask in random_masks(rng, ref.full_mask, 25):
            ref_parts = ref.partition_many(mask, eids)
            vec_parts = vec.partition_many(mask, eids)
            assert ref_parts == vec_parts
            for pos, neg in vec_parts:
                assert pos & neg == 0
                assert pos | neg == mask

    def test_partition_many_matches_partition(self, pair):
        _, vec = pair
        eids = list(range(24))
        for eid, pair_masks in zip(
            eids, vec.partition_many(vec.full_mask, eids)
        ):
            assert pair_masks == vec.partition(vec.full_mask, eid)

    def test_informative_entities_match(self, pair):
        ref, vec = pair
        rng = random.Random(9)
        for mask in random_masks(rng, ref.full_mask, 25):
            assert ref.informative_entities(mask) == vec.informative_entities(
                mask
            )

    def test_informative_entities_sorted_by_entity_id(self, pair):
        _, vec = pair
        eids = [e for e, _ in vec.informative_entities(vec.full_mask)]
        assert eids == sorted(eids)

    def test_candidate_scan_preserves_order(self, pair):
        ref, vec = pair
        candidates = [5, 3, 9, 1, 400]  # 400 unknown
        assert ref.informative_entities(
            ref.full_mask, candidates
        ) == vec.informative_entities(vec.full_mask, candidates)

    def test_stray_high_mask_bits_are_tolerated(self, pair):
        ref, vec = pair
        mask = ref.full_mask | (1 << (ref.n_sets + 5))
        eids = list(range(10))
        assert ref.positive_counts(mask, eids) == vec.positive_counts(
            mask, eids
        )


# --------------------------------------------------------------------- #
# Stacked-mask API parity (multi-session serving kernels)
# --------------------------------------------------------------------- #


@needs_numpy
class TestStackedMaskParity:
    @pytest.fixture(scope="class")
    def pair(self):
        rng = random.Random(211)
        return backend_pair(random_sets(rng, 70, 26))

    def test_scan_informative_many_matches_per_mask(self, pair):
        ref, vec = pair
        rng = random.Random(3)
        masks = random_masks(rng, ref.full_mask, 20)
        for coll in (ref, vec):
            coll.clear_caches()
            singles = [
                [list(seq) for seq in coll.informative_stats(mask)]
                for mask in masks
            ]
            coll.clear_caches()
            batched = coll.informative_stats_many(masks)
            for (eids, counts), (s_eids, s_counts) in zip(batched, singles):
                assert list(eids) == s_eids
                assert list(counts) == s_counts

    def test_scan_informative_many_cross_backend(self, pair):
        ref, vec = pair
        rng = random.Random(4)
        masks = random_masks(rng, ref.full_mask, 20)
        ref.clear_caches()
        vec.clear_caches()
        ref_stats = ref.informative_stats_many(masks)
        vec_stats = vec.informative_stats_many(masks)
        for (re, rc), (ve, vcnt) in zip(ref_stats, vec_stats):
            assert list(re) == list(ve)
            assert list(rc) == list(vcnt)

    def test_candidate_hints_do_not_change_results(self, pair):
        # The hint contract: a superset of the informative entities in
        # ascending order yields exactly the full-scan result.
        ref, vec = pair
        rng = random.Random(5)
        parent_masks = random_masks(rng, ref.full_mask, 10)
        for coll in (ref, vec):
            for parent in parent_masks:
                coll.clear_caches()
                parent_eids, _ = coll.informative_stats(parent)
                # narrow by the first informative entity -> child mask
                child, _ = coll.partition(parent, int(parent_eids[0]))
                if coll.count(child) < 2:
                    continue
                coll.clear_caches()
                expected = coll.informative_stats(child)
                coll.clear_caches()
                hinted = coll.informative_stats_many(
                    [child], [parent_eids]
                )[0]
                assert list(hinted[0]) == list(expected[0])
                assert list(hinted[1]) == list(expected[1])

    def test_scan_many_primes_the_cache(self, pair):
        _, vec = pair
        vec.clear_caches()
        masks = [vec.full_mask]
        vec.informative_stats_many(masks)
        assert vec.is_cached(vec.full_mask)

    def test_scan_many_deduplicates_repeated_masks(self, pair):
        ref, _ = pair
        ref.clear_caches()
        stats = ref.informative_stats_many([ref.full_mask, ref.full_mask])
        assert stats[0] is stats[1]

    def test_positive_counts_many_matches_per_mask(self, pair):
        ref, vec = pair
        rng = random.Random(6)
        masks = random_masks(rng, ref.full_mask, 12)
        eids = list(range(-1, 30))  # includes unknown ids
        for coll in (ref, vec):
            batched = coll.positive_counts_many(masks, eids)
            for mask, counts in zip(masks, batched):
                assert list(counts) == list(coll.positive_counts(mask, eids))

    def test_positive_counts_many_cross_backend(self, pair):
        ref, vec = pair
        rng = random.Random(7)
        masks = random_masks(rng, ref.full_mask, 12)
        eids = list(range(30))
        ref_counts = ref.positive_counts_many(masks, eids)
        vec_counts = vec.positive_counts_many(masks, eids)
        for rc, vcnt in zip(ref_counts, vec_counts):
            assert list(rc) == list(vcnt)

    def test_empty_inputs(self, pair):
        ref, vec = pair
        for coll in (ref, vec):
            assert coll.informative_stats_many([]) == []
            assert coll.positive_counts_many([], [1, 2]) == []


# --------------------------------------------------------------------- #
# Batched scoring parity (select_best_many)
# --------------------------------------------------------------------- #


@needs_numpy
class TestSelectBestManyParity:
    def test_matches_select_best_per_group(self):
        import numpy as np

        from repro.core.kernels import select_best, select_best_many
        from repro.core.selection import information_gain

        rng = random.Random(41)
        for primary in (
            None,
            lambda n, n1: -information_gain(n, n1),
        ):
            eids_list, counts_list, ns = [], [], []
            for _ in range(30):
                n = rng.randint(2, 50)
                size = rng.randint(1, 12)
                eids = np.array(
                    sorted(rng.sample(range(200), size)), dtype=np.int64
                )
                counts = np.array(
                    [rng.randint(1, n - 1) for _ in range(size)],
                    dtype=np.int64,
                )
                eids_list.append(eids)
                counts_list.append(counts)
                ns.append(n)
            batched = select_best_many(eids_list, counts_list, ns, primary)
            expected = [
                select_best(e, c, n, primary)
                for e, c, n in zip(eids_list, counts_list, ns)
            ]
            assert batched == expected

    def test_list_inputs_fall_back_to_loop(self):
        from repro.core.kernels import select_best, select_best_many

        eids_list = [[3, 5, 9], [1, 2]]
        counts_list = [[1, 2, 3], [2, 2]]
        ns = [4, 4]
        assert select_best_many(eids_list, counts_list, ns) == [
            select_best(e, c, n)
            for e, c, n in zip(eids_list, counts_list, ns)
        ]

    def test_empty_group_list(self):
        from repro.core.kernels import select_best_many

        assert select_best_many([], [], []) == []


# --------------------------------------------------------------------- #
# Selection parity
# --------------------------------------------------------------------- #


def all_selectors():
    return [
        MostEvenSelector(),
        InfoGainSelector(),
        IndistinguishablePairsSelector(),
        LB1Selector(AD),
        LB1Selector(H),
        GainKSelector(k=2),
        KLPSelector(k=2, metric=AD),
        KLPSelector(k=2, metric=H),
        KLPSelector(k=3, metric=AD, q=3),
        KLPSelector(k=3, metric=AD, q=2, variable=True),
        UnprunedKLPSelector(k=2, metric=AD),
    ]


@needs_numpy
class TestSelectionParity:
    @pytest.mark.parametrize(
        "seed,n_sets,universe", [(1, 40, 20), (2, 25, 12), (3, 80, 30)]
    )
    def test_selectors_agree_on_random_collections(
        self, seed, n_sets, universe
    ):
        rng = random.Random(seed)
        ref, vec = backend_pair(random_sets(rng, n_sets, universe))
        masks = random_masks(rng, ref.full_mask, 8)
        for selector in all_selectors():
            for mask in masks:
                selector.reset()
                chosen_ref = selector.select(ref, mask)
                selector.reset()
                chosen_vec = selector.select(vec, mask)
                assert chosen_ref == chosen_vec, (
                    f"{selector.name} diverged on mask {mask:#x}"
                )

    def test_selectors_agree_on_fig1(self):
        ref = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        vec = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        for selector in all_selectors():
            selector.reset()
            chosen = selector.select(ref, ref.full_mask)
            selector.reset()
            assert selector.select(vec, vec.full_mask) == chosen

    def test_fig1_most_even_worked_example(self):
        # Sec. 3 worked example: 'c' and 'd' both split Fig. 1 into 3/4,
        # the most even split.  Which of the two wins the entity-id
        # tie-break depends on interning order (FIG1_SETS holds literal
        # sets, so label order is hash-randomized per process), but within
        # one process every backend must pick the same one: the lower id.
        for backend in BOTH_BACKENDS:
            coll = SetCollection.from_named_sets(FIG1_SETS, backend=backend)
            chosen = MostEvenSelector().select(coll, coll.full_mask)
            assert coll.universe.label(chosen) in {"c", "d"}
            assert chosen == min(
                coll.universe.id_of("c"), coll.universe.id_of("d")
            )
            assert coll.positive_count(coll.full_mask, chosen) == 3

    def test_tie_break_parity_on_engineered_ties(self):
        # Singleton sets: every entity splits 1/(n-1) — all tied; the
        # deterministic entity-id tie-break must agree across backends.
        raw = [[i] for i in range(12)]
        ref, vec = backend_pair(raw)
        for selector in all_selectors():
            selector.reset()
            chosen_ref = selector.select(ref, ref.full_mask)
            selector.reset()
            assert selector.select(vec, vec.full_mask) == chosen_ref

    def test_exclusion_parity(self):
        # "Don't know" answers (Sec. 6) remove entities; backends must
        # agree on the runner-up too.
        rng = random.Random(11)
        ref, vec = backend_pair(random_sets(rng, 30, 15))
        for selector in all_selectors():
            selector.reset()
            first = selector.select(ref, ref.full_mask)
            exclude = frozenset({first})
            selector.reset()
            chosen_ref = selector.select(ref, ref.full_mask, exclude=exclude)
            selector.reset()
            chosen_vec = selector.select(vec, vec.full_mask, exclude=exclude)
            assert chosen_ref == chosen_vec
            assert chosen_ref != first

    def test_everything_excluded_raises_on_both(self):
        ref, vec = backend_pair([[0, 1], [1, 2], [2, 3]])
        exclude = frozenset(range(4))
        for coll in (ref, vec):
            with pytest.raises(NoInformativeEntityError):
                MostEvenSelector().select(coll, coll.full_mask, exclude=exclude)

    def test_lb_k_parity(self):
        rng = random.Random(21)
        ref, vec = backend_pair(random_sets(rng, 16, 10))
        for metric in (AD, H):
            for k in (0, 1, 2, 3):
                assert lb_k(ref, ref.full_mask, k, metric) == lb_k(
                    vec, vec.full_mask, k, metric
                )

    def test_klp_lower_bound_parity(self):
        rng = random.Random(22)
        ref, vec = backend_pair(random_sets(rng, 20, 12))
        for metric in (AD, H):
            sel_ref = KLPSelector(k=2, metric=metric)
            sel_vec = KLPSelector(k=2, metric=metric)
            assert sel_ref.lower_bound(ref) == sel_vec.lower_bound(vec)


# --------------------------------------------------------------------- #
# Batch (multiple-choice) parity
# --------------------------------------------------------------------- #


@needs_numpy
class TestBatchParity:
    def test_select_batch_agrees(self):
        rng = random.Random(31)
        ref, vec = backend_pair(random_sets(rng, 30, 16))
        for size in (1, 2, 3):
            assert select_batch(ref, ref.full_mask, size) == select_batch(
                vec, vec.full_mask, size
            )

    def test_select_batch_agrees_on_fig1(self):
        ref = SetCollection.from_named_sets(FIG1_SETS, backend="bigint")
        vec = SetCollection.from_named_sets(FIG1_SETS, backend="numpy")
        assert select_batch(ref, ref.full_mask, 3) == select_batch(
            vec, vec.full_mask, 3
        )

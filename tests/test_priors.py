"""Tests for repro.core.priors (non-uniform targets, Sec. 7 extension)."""

import math

import pytest

from repro.core.bounds import lb_ad0
from repro.core.construction import build_tree
from repro.core.priors import (
    Prior,
    WeightedEvenSelector,
    expected_questions,
    huffman_lower_bound,
    skewed_prior,
    weighted_optimal_cost,
)
from repro.core.selection import MostEvenSelector


class TestPrior:
    def test_normalisation(self, fig1):
        prior = Prior(fig1, [2.0] * 7)
        assert sum(prior.p) == pytest.approx(1.0)
        assert all(p == pytest.approx(1 / 7) for p in prior.p)

    def test_uniform_constructor(self, fig1):
        prior = Prior.uniform(fig1)
        assert prior.p == tuple([1 / 7] * 7)

    def test_from_mapping(self, fig1):
        prior = Prior.from_mapping(fig1, {"S1": 3.0, "S2": 1.0})
        assert prior.p[0] == pytest.approx(0.75)
        assert prior.p[1] == pytest.approx(0.25)
        assert prior.p[2] == 0.0

    def test_weight_validation(self, fig1):
        with pytest.raises(ValueError):
            Prior(fig1, [1.0] * 6)  # wrong length
        with pytest.raises(ValueError):
            Prior(fig1, [-1.0] + [1.0] * 6)
        with pytest.raises(ValueError):
            Prior(fig1, [0.0] * 7)

    def test_mass_of_sub_collection(self, fig1):
        prior = Prior.uniform(fig1)
        assert prior.mass(0b0000111) == pytest.approx(3 / 7)

    def test_entropy_uniform_is_log_n(self, fig1):
        prior = Prior.uniform(fig1)
        assert prior.entropy() == pytest.approx(math.log2(7))

    def test_entropy_point_mass_is_zero(self, fig1):
        prior = Prior(fig1, [1.0] + [0.0] * 6)
        assert prior.entropy() == 0.0

    def test_entropy_restricted_renormalises(self, fig1):
        prior = Prior(fig1, [1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        assert prior.entropy(0b0000011) == pytest.approx(1.0)


class TestWeightedCost:
    def test_uniform_prior_reduces_to_ad(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        prior = Prior.uniform(fig1)
        assert prior.weighted_average_depth(tree) == pytest.approx(
            tree.average_depth()
        )

    def test_expected_questions_alias(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        prior = Prior.uniform(fig1)
        assert expected_questions(prior, tree) == pytest.approx(
            prior.weighted_average_depth(tree)
        )

    def test_entropy_lower_bounds_any_tree(self, fig1, synthetic_tiny):
        for coll in (fig1, synthetic_tiny):
            for s in (0.0, 1.0, 2.0):
                prior = skewed_prior(coll, s)
                tree = build_tree(coll, MostEvenSelector())
                assert (
                    prior.weighted_average_depth(tree)
                    >= huffman_lower_bound(prior) - 1e-9
                )


class TestWeightedSelector:
    def test_prior_collection_must_match(self, fig1, synthetic_tiny):
        prior = Prior.uniform(fig1)
        with pytest.raises(ValueError):
            WeightedEvenSelector(prior).select(
                synthetic_tiny, synthetic_tiny.full_mask
            )

    def test_uniform_prior_picks_even_split(self, fig1):
        selector = WeightedEvenSelector(Prior.uniform(fig1))
        chosen = selector.select(fig1, fig1.full_mask)
        n1 = fig1.positive_count(fig1.full_mask, chosen)
        assert sorted([n1, 7 - n1]) == [3, 4]

    def test_skewed_prior_splits_mass_not_counts(self, fig1):
        # All the mass on S2 and S5: the best first question separates
        # mass ~evenly, i.e. puts one of the heavy sets on each side.
        prior = Prior.from_mapping(fig1, {"S2": 1.0, "S5": 1.0})
        selector = WeightedEvenSelector(prior)
        chosen = selector.select(fig1, fig1.full_mask)
        pos = fig1.full_mask & fig1.entity_mask(chosen)
        pos_mass = prior.mass(pos)
        assert pos_mass == pytest.approx(0.5)

    def test_weighted_tree_beats_uniform_tree_under_skew(self, synthetic_tiny):
        coll = synthetic_tiny
        prior = skewed_prior(coll, zipf_s=2.0)
        uniform_tree = build_tree(coll, MostEvenSelector())
        weighted_tree = build_tree(coll, WeightedEvenSelector(prior))
        assert prior.weighted_average_depth(
            weighted_tree
        ) <= prior.weighted_average_depth(uniform_tree) + 1e-9


class TestWeightedOptimal:
    def test_uniform_matches_unweighted_optimal(self, synthetic_tiny):
        from repro.core.bounds import AD
        from repro.core.optimal import optimal_cost

        prior = Prior.uniform(synthetic_tiny)
        weighted = weighted_optimal_cost(synthetic_tiny, prior)
        assert weighted == pytest.approx(optimal_cost(synthetic_tiny, AD))

    def test_weighted_optimum_at_least_entropy(self, synthetic_tiny):
        prior = skewed_prior(synthetic_tiny, 1.5)
        optimum = weighted_optimal_cost(synthetic_tiny, prior)
        assert optimum >= prior.entropy() - 1e-9

    def test_no_tree_beats_weighted_optimum(self, synthetic_tiny):
        prior = skewed_prior(synthetic_tiny, 1.5)
        optimum = weighted_optimal_cost(synthetic_tiny, prior)
        for selector in (
            MostEvenSelector(),
            WeightedEvenSelector(prior),
        ):
            tree = build_tree(synthetic_tiny, selector)
            assert prior.weighted_average_depth(tree) >= optimum - 1e-9

    def test_size_guard(self, synthetic_small):
        prior = Prior.uniform(synthetic_small)
        with pytest.raises(ValueError):
            weighted_optimal_cost(synthetic_small, prior, max_sets=10)

    def test_zipf_validation(self, fig1):
        with pytest.raises(ValueError):
            skewed_prior(fig1, -1.0)

    def test_uniform_entropy_vs_lb_ad0(self, fig1):
        # H(uniform over n) = log2 n <= ceil(n log2 n)/n for all n.
        prior = Prior.uniform(fig1)
        assert prior.entropy() <= lb_ad0(7) + 1e-9

"""Tests for repro.serve.async_service (asyncio serving front-end).

The service's contract mirrors the engine's: whatever the arrival order,
think-time jitter or batching cadence, every session's transcript is
bit-identical to a sequential ``DiscoverySession.run``.  On top of parity
this covers the asyncio-specific surface: out-of-order answers, sessions
joining mid-flush, latency-budget and watermark flushing, cancellation of
a pending ``ask()``, answer validation, and lifecycle/closing.

The tests drive the event loop via ``asyncio.run`` inside synchronous
test functions, so they run identically with or without pytest-asyncio
installed (CI's asyncio leg runs them under ``PYTHONASYNCIODEBUG=1``).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.collection import SetCollection
from repro.core.discovery import DiscoverySession
from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector, MostEvenSelector
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser, UnsureUser
from repro.serve import (
    AsyncDiscoveryService,
    ServiceClosed,
    ServiceOverloaded,
    SessionExpired,
)

from conftest import FIG1_SETS


def make_collection(n_sets: int = 80, seed: int = 3, backend: str = "bigint"):
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=10, size_hi=16, overlap=0.8, seed=seed
        ),
        backend=backend,
    )


def sequential(collection, targets, factory=MostEvenSelector, oracles=None):
    out = []
    for i, target in enumerate(targets):
        session = DiscoverySession(collection, factory())
        oracle = (
            oracles[i]
            if oracles is not None
            else SimulatedUser(collection, target_index=target)
        )
        out.append(session.run(oracle))
    return out


async def drive_user(service, key, oracle, jitter_rng=None):
    """One user's full session: ask/think/answer until finished."""
    while True:
        entity = await service.ask(key)
        if entity is None:
            break
        if jitter_rng is not None:
            await asyncio.sleep(jitter_rng.random() * 0.002)
        service.answer(key, oracle(entity))
    return await service.result(key)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


# --------------------------------------------------------------------- #
# Transcript parity, out-of-order answering, mid-flush joins
# --------------------------------------------------------------------- #


class TestAsyncParity:
    @pytest.mark.parametrize(
        "factory",
        [MostEvenSelector, InfoGainSelector, lambda: KLPSelector(k=2)],
    )
    def test_jittered_users_match_sequential_transcripts(self, factory):
        collection = make_collection()
        rng = random.Random(17)
        targets = [rng.randrange(collection.n_sets) for _ in range(16)]
        collection.clear_caches()
        seq = sequential(collection, targets, factory)
        collection.clear_caches()

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=8
            ) as service:
                tasks = []
                for i, target in enumerate(targets):
                    service.add(
                        DiscoverySession(collection, factory()), key=i
                    )
                    tasks.append(
                        asyncio.create_task(
                            drive_user(
                                service,
                                i,
                                SimulatedUser(collection, target_index=target),
                                random.Random(100 + i),
                            )
                        )
                    )
                return await asyncio.gather(*tasks)

        results = run(scenario())
        for i in range(len(targets)):
            assert results[i].transcript == seq[i].transcript
            assert results[i].candidates == seq[i].candidates

    def test_dont_know_answers_parity(self):
        collection = make_collection(n_sets=50, seed=5)
        rng = random.Random(23)
        targets = [rng.randrange(collection.n_sets) for _ in range(8)]
        collection.clear_caches()
        seq = sequential(
            collection,
            targets,
            oracles=[
                UnsureUser(collection, 0.3, target_index=t, seed=40 + i)
                for i, t in enumerate(targets)
            ],
        )
        collection.clear_caches()

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=4
            ) as service:
                tasks = []
                for i, target in enumerate(targets):
                    service.add(
                        DiscoverySession(collection, MostEvenSelector()),
                        key=i,
                    )
                    oracle = UnsureUser(
                        collection, 0.3, target_index=target, seed=40 + i
                    )
                    tasks.append(
                        asyncio.create_task(drive_user(service, i, oracle))
                    )
                return await asyncio.gather(*tasks)

        results = run(scenario())
        for i in range(len(targets)):
            assert results[i].transcript == seq[i].transcript

    def test_out_of_order_answers_across_sessions(self):
        # Ask every session first, then answer them in reverse order —
        # repeatedly.  No session's transcript may depend on the order the
        # *other* sessions answered.
        collection = make_collection(n_sets=60, seed=7)
        targets = [5, 21, 38, 44]
        collection.clear_caches()
        seq = sequential(collection, targets)
        collection.clear_caches()

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=None
            ) as service:
                oracles = {}
                for i, target in enumerate(targets):
                    service.add(
                        DiscoverySession(collection, MostEvenSelector()),
                        key=i,
                    )
                    oracles[i] = SimulatedUser(collection, target_index=target)
                live = set(range(len(targets)))
                rounds = 0
                while live:
                    asked = {}
                    for key in sorted(live):
                        entity = await service.ask(key)
                        if entity is None:
                            live.discard(key)
                        else:
                            asked[key] = entity
                    for key in sorted(asked, reverse=True):
                        service.answer(key, oracles[key](asked[key]))
                    rounds += 1
                    assert rounds < 200
                return [
                    await service.result(i) for i in range(len(targets))
                ]

        results = run(scenario())
        for i in range(len(targets)):
            assert results[i].transcript == seq[i].transcript

    def test_sessions_joining_mid_flush(self):
        # New users join while earlier users' flushes are in flight; every
        # transcript still matches its sequential golden.
        collection = make_collection(n_sets=70, seed=9)
        rng = random.Random(31)
        targets = [rng.randrange(collection.n_sets) for _ in range(20)]
        collection.clear_caches()
        seq = sequential(collection, targets, InfoGainSelector)
        collection.clear_caches()

        async def late_user(service, key, target, delay):
            await asyncio.sleep(delay)  # joins while others are mid-session
            service.add(
                DiscoverySession(collection, InfoGainSelector()), key=key
            )
            oracle = SimulatedUser(collection, target_index=target)
            return await drive_user(
                service, key, oracle, random.Random(500 + key)
            )

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=6
            ) as service:
                tasks = [
                    asyncio.create_task(
                        late_user(service, i, t, (i % 7) * 0.003)
                    )
                    for i, t in enumerate(targets)
                ]
                return await asyncio.gather(*tasks)

        results = run(scenario())
        for i in range(len(targets)):
            assert results[i].transcript == seq[i].transcript


# --------------------------------------------------------------------- #
# Flush policy: budget-only, watermark, prefetch
# --------------------------------------------------------------------- #


class TestAsyncFlushPolicy:
    def test_single_user_served_by_latency_budget_alone(self):
        # No watermark: only the flush_after_ms timer can trigger the
        # batched pass — a lone user must still be served.
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=None
            ) as service:
                key = service.spawn(MostEvenSelector())
                oracle = SimulatedUser(collection, target_index=3)
                result = await drive_user(service, key, oracle)
                assert service.stats.ticks > 0
                return result

        assert run(scenario()).resolved

    def test_watermark_of_one_flushes_immediately(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=10_000.0, max_batch=1
            ) as service:
                key = service.spawn(MostEvenSelector())
                oracle = SimulatedUser(collection, target_index=5)
                # a huge budget would stall forever; the watermark of one
                # must serve each ask instantly
                return await asyncio.wait_for(
                    drive_user(service, key, oracle), timeout=10
                )

        assert run(scenario()).resolved

    def test_answer_prefetches_next_question(self):
        # After answer(), the flush pre-selects the next question without
        # an ask() waiting — the following ask() returns synchronously.
        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=None
            ) as service:
                key = service.spawn(MostEvenSelector())
                oracle = SimulatedUser(collection, target_index=7)
                entity = await service.ask(key)
                service.answer(key, oracle(entity))
                # wait for the reply-flush to complete
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    session = service.registry.session(key)
                    if session.pending_entity is not None:
                        break
                assert service.registry.session(key).pending_entity is not None
                # the pending question is delivered with no new flush
                ticks_before = service.stats.ticks
                again = await service.ask(key)
                assert again == service.registry.session(key).pending_entity
                assert service.stats.ticks == ticks_before

        run(scenario())

    def test_concurrent_asks_share_one_question(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector())
                a, b = await asyncio.gather(
                    service.ask(key), service.ask(key)
                )
                assert a == b
                # idempotent while unanswered, like next_question()
                assert await service.ask(key) == a

        run(scenario())


# --------------------------------------------------------------------- #
# Cancellation
# --------------------------------------------------------------------- #


class TestCancellation:
    def test_cancelling_pending_ask_leaves_session_healthy(self):
        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=50.0, max_batch=None
            ) as service:
                key = service.spawn(MostEvenSelector())
                task = asyncio.create_task(service.ask(key))
                await asyncio.sleep(0)  # let the ask register its waiter
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # the session still advances and can be served to the end
                oracle = SimulatedUser(collection, target_index=11)
                result = await asyncio.wait_for(
                    drive_user(service, key, oracle), timeout=30
                )
                assert result.resolved

        run(scenario())

    def test_cancelled_ask_does_not_break_other_waiters(self):
        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=5.0, max_batch=None
            ) as service:
                key = service.spawn(MostEvenSelector())
                doomed = asyncio.create_task(service.ask(key))
                survivor = asyncio.create_task(service.ask(key))
                await asyncio.sleep(0)
                doomed.cancel()
                entity = await asyncio.wait_for(survivor, timeout=30)
                assert entity is not None
                with pytest.raises(asyncio.CancelledError):
                    await doomed

        run(scenario())

    def test_aclose_rejects_outstanding_waiters(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            service = AsyncDiscoveryService(
                collection, flush_after_ms=10_000.0, max_batch=None
            )
            key = service.spawn(MostEvenSelector())
            task = asyncio.create_task(service.result(key))
            await asyncio.sleep(0.01)
            await service.aclose()
            with pytest.raises(ServiceClosed, match="closed while"):
                await task
            with pytest.raises(RuntimeError, match="closed"):
                await service.ask(key)
            with pytest.raises(RuntimeError, match="closed"):
                service.answer(key, True)

        run(scenario())


# --------------------------------------------------------------------- #
# Answer validation + lifecycle
# --------------------------------------------------------------------- #


class TestAsyncAnswerValidation:
    def test_unknown_key(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(collection) as service:
                with pytest.raises(KeyError, match="unknown session key"):
                    service.answer("ghost", True)
                with pytest.raises(KeyError, match="unknown session key"):
                    await service.ask("ghost")
                with pytest.raises(KeyError, match="unknown session key"):
                    await service.result("ghost")

        run(scenario())

    def test_answer_before_any_question(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(collection) as service:
                key = service.spawn(MostEvenSelector())
                with pytest.raises(ValueError, match="no pending question"):
                    service.answer(key, True)

        run(scenario())

    def test_double_answer_raises_not_overwrites(self):
        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector())
                entity = await service.ask(key)
                service.answer(key, True)
                with pytest.raises(ValueError, match="recorded reply"):
                    service.answer(key, False)
                # the first reply is the one on the transcript
                oracle = SimulatedUser(collection, target_index=2)
                await drive_user(service, key, oracle)
                result = await service.result(key)
                assert result.transcript[0].entity == entity
                assert result.transcript[0].answer is True

        run(scenario())

    def test_answer_after_finish_raises_keyerror(self):
        collection = SetCollection.from_named_sets(FIG1_SETS)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector(), initial={"e"})
                assert await service.ask(key) is None  # pinned: S2
                result = await service.result(key)
                assert result.resolved
                with pytest.raises(KeyError, match="already finished"):
                    service.answer(key, True)

        run(scenario())


class TestFlushFailureAndRaces:
    def test_kernel_failure_fails_the_waiters_loudly(self, monkeypatch):
        # A bug inside the batched pass must reject pending ask()/result()
        # futures instead of hanging them forever.
        from repro.serve.scheduler import ScanScheduler

        collection = make_collection(n_sets=40)

        def exploding_flush(self):
            raise RuntimeError("kernel exploded")

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                monkeypatch.setattr(ScanScheduler, "flush", exploding_flush)
                key = service.spawn(MostEvenSelector())
                with pytest.raises(RuntimeError, match="kernel exploded"):
                    await service.ask(key)

        run(scenario())

    def test_requests_queued_during_failed_flush_still_get_served(
        self, monkeypatch
    ):
        # Regression: a flush failure must not strand requests that queued
        # while it ran — they get their own (healthy) flush afterwards.
        import time as time_mod

        from repro.serve.scheduler import ScanScheduler

        collection = make_collection(n_sets=40)
        original = ScanScheduler.flush
        calls = {"n": 0}

        def flaky_flush(self):
            calls["n"] += 1
            if calls["n"] == 1:
                time_mod.sleep(0.05)  # keep the flush running while B asks
                raise RuntimeError("transient kernel failure")
            return original(self)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                monkeypatch.setattr(ScanScheduler, "flush", flaky_flush)
                a = service.spawn(MostEvenSelector(), key="a")
                task_a = asyncio.create_task(service.ask(a))
                await asyncio.sleep(0.02)  # a's flush is now in flight
                b = service.spawn(MostEvenSelector(), key="b")
                task_b = asyncio.create_task(service.ask(b))
                with pytest.raises(RuntimeError, match="transient"):
                    await task_a
                # b was queued mid-flush; the recovery flush serves it
                entity = await asyncio.wait_for(task_b, timeout=10)
                assert entity is not None
                assert calls["n"] >= 2

        run(scenario())

    def test_answer_during_flush_never_yields_stale_pending_question(self):
        # Regression: session K is re-queued while QUESTION_PENDING (here
        # via a concurrent result() waiter); a flush reports K as
        # already-pending.  If the user answers that question and asks
        # again *while the flush runs*, the waiter must get the NEXT
        # question — not the just-answered entity back.
        import threading

        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=None
            ) as service:
                k1 = service.spawn(InfoGainSelector())
                service.spawn(InfoGainSelector())  # keeps the all-waiting
                # shortcut from firing so the budget timer drives flushes
                first = await service.ask(k1)
                result_task = asyncio.create_task(service.result(k1))
                await asyncio.sleep(0)

                original = service.scheduler.flush
                entered, gate = threading.Event(), threading.Event()

                def slow_flush():
                    entered.set()
                    gate.wait(10)
                    return original()

                service.scheduler.flush = slow_flush
                while not entered.is_set():
                    await asyncio.sleep(0.001)
                # mid-flush: answer the pending question, ask for the next
                service.answer(k1, True)
                ask_task = asyncio.create_task(service.ask(k1))
                await asyncio.sleep(0.005)
                service.scheduler.flush = original
                gate.set()

                second = await asyncio.wait_for(ask_task, timeout=10)
                assert second != first
                # the user's protocol continues without tripping over a
                # "reply already recorded" error
                service.answer(k1, False)
                result_task.cancel()

        run(scenario())

    def test_request_for_already_finished_key_resolves_from_results(self):
        # The race the flush must tolerate: a key is queued for advancement
        # but an earlier flush already retired it.  _advance_sync answers
        # such requests from the results store instead of raising.
        collection = SetCollection.from_named_sets(FIG1_SETS)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector(), initial={"e"})
                assert (await service.result(key)).resolved
                report, prefinished, vanished = service._advance_sync(
                    [key], {}
                )
                assert report.questions == {}
                assert prefinished[key].resolved
                assert vanished == []

        run(scenario())


class TestLifecycle:
    def test_results_accumulate_and_ask_returns_none(self):
        collection = make_collection(n_sets=50)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                keys = [service.spawn(InfoGainSelector()) for _ in range(4)]
                oracles = {
                    k: SimulatedUser(collection, target_index=10 + j)
                    for j, k in enumerate(keys)
                }
                await asyncio.gather(
                    *(drive_user(service, k, oracles[k]) for k in keys)
                )
                assert service.n_active == 0
                assert set(service.results) == set(keys)
                for k in keys:
                    assert await service.ask(k) is None
                    assert (await service.result(k)).resolved

        run(scenario())

    def test_service_binds_to_one_loop(self):
        collection = make_collection(n_sets=40)
        service = AsyncDiscoveryService(collection, flush_after_ms=1.0)

        async def first():
            key = service.spawn(MostEvenSelector(), key="u")
            return await service.ask(key)

        asyncio.run(first())

        async def second():
            return await service.ask("u")

        with pytest.raises(RuntimeError, match="different event loop"):
            asyncio.run(second())

    def test_aclose_is_idempotent(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            service = AsyncDiscoveryService(collection)
            await service.aclose()
            await service.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                service.spawn(MostEvenSelector())

        run(scenario())

    def test_stats_are_scheduler_stats(self):
        collection = make_collection(n_sets=40)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                assert service.stats is service.scheduler.stats
                key = service.spawn(MostEvenSelector())
                oracle = SimulatedUser(collection, target_index=1)
                await drive_user(service, key, oracle)
                assert service.stats.ticks > 0
                assert service.stats.selections > 0
                assert service.stats.seconds > 0.0

        run(scenario())

    def test_release_caches_after_all_sessions_finish(self):
        collection = make_collection(n_sets=60)

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_batch=4
            ) as service:
                keys = [service.spawn(MostEvenSelector()) for _ in range(6)]
                oracles = {
                    k: SimulatedUser(collection, target_index=5 + j)
                    for j, k in enumerate(keys)
                }
                await asyncio.gather(
                    *(drive_user(service, k, oracles[k]) for k in keys)
                )
            assert collection.cached_mask_count() == 0

        collection.clear_caches()
        run(scenario())


# --------------------------------------------------------------------- #
# Backpressure: session caps, bounded queues, shed vs wait
# --------------------------------------------------------------------- #


class TestBackpressure:
    def test_spawn_rejected_at_session_cap(self):
        collection = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                collection,
                flush_after_ms=1.0,
                max_sessions=2,
                retry_after_s=0.7,
            ) as service:
                service.spawn(MostEvenSelector())
                service.spawn(MostEvenSelector())
                with pytest.raises(ServiceOverloaded) as excinfo:
                    service.spawn(MostEvenSelector())
                assert excinfo.value.retry_after_s == 0.7
                snap = service.metrics.snapshot()
                assert snap["backpressure_rejections"]["sessions"] == 1

        run(scenario())

    def test_capacity_frees_as_sessions_finish(self):
        collection = make_collection()
        targets = [4, 17]

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0, max_sessions=1
            ) as service:
                payloads = []
                for target in targets:
                    key = service.spawn(MostEvenSelector())
                    oracle = SimulatedUser(collection, target_index=target)
                    payloads.append(await drive_user(service, key, oracle))
                    # A finished session no longer counts against the cap.
                    assert service.n_active == 0
                return payloads

        results = run(scenario())
        golden = sequential(collection, targets)
        assert [sorted(r.candidates) for r in results] == [
            sorted(g.candidates) for g in golden
        ]

    def test_shed_policy_bounds_the_ask_queue(self):
        collection = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                collection,
                flush_after_ms=10_000.0,  # nothing flushes by itself
                max_queued=1,
                overload_policy="shed",
            ) as service:
                k1 = service.spawn(MostEvenSelector())
                k2 = service.spawn(MostEvenSelector())
                first = asyncio.ensure_future(service.ask(k1))
                await asyncio.sleep(0.05)  # k1 is queued for the flush
                with pytest.raises(ServiceOverloaded):
                    await service.ask(k2)
                snap = service.metrics.snapshot()
                assert snap["backpressure_rejections"]["asks"] == 1
                # Re-asking for an *already queued* key never sheds.
                first.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await first

        run(scenario())

    def test_wait_policy_parks_until_a_flush_frees_the_queue(self):
        collection = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                collection,
                flush_after_ms=25.0,
                max_queued=1,
                overload_policy="wait",
            ) as service:
                k1 = service.spawn(MostEvenSelector())
                k2 = service.spawn(MostEvenSelector())
                first = asyncio.ensure_future(service.ask(k1))
                await asyncio.sleep(0.005)
                # The queue is full; "wait" parks instead of shedding,
                # and both asks resolve once flushes drain the queue.
                second = asyncio.ensure_future(service.ask(k2))
                e1, e2 = await asyncio.gather(first, second)
                assert e1 is not None and e2 is not None
                snap = service.metrics.snapshot()
                assert snap["backpressure_rejections"].get("asks", 0) == 0
                assert snap["queue_high_watermark"]["loop"] >= 1

        run(scenario())

    def test_expire_wakes_parked_result_waiter(self):
        """The dead-long-poll regression, at the service layer: a
        ``result()`` waiter parked on a QUESTION_PENDING session must be
        woken with :class:`SessionExpired` when the session is reaped —
        previously ``expire()`` refused and the waiter leaked forever."""
        collection = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                collection, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector())
                entity = await service.ask(key)
                assert entity is not None
                waiter = asyncio.ensure_future(service.result(key))
                await asyncio.sleep(0.05)
                assert not waiter.done()
                assert await service.expire(key)
                with pytest.raises(SessionExpired):
                    await asyncio.wait_for(waiter, 5)
                assert service.n_active == 0

        run(scenario())

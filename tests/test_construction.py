"""Tests for repro.core.construction (Algorithm 3 + persistence)."""

import pytest

from repro.core.bounds import AD, H
from repro.core.construction import (
    build_and_summarize,
    build_tree,
    load_tree,
    save_tree,
)
from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector, MostEvenSelector


class TestBuildTree:
    def test_leaves_biject_with_collection(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        assert sorted(idx for idx, _ in tree.leaves()) == list(range(7))

    def test_tree_is_full_binary(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        assert tree.n_internal == tree.n_leaves - 1

    def test_validates_against_collection(self, synthetic_small):
        tree = build_tree(synthetic_small, KLPSelector(k=2))
        tree.validate(synthetic_small)

    def test_sub_collection_build(self, fig1):
        sub = fig1.supersets_of({"b", "c"})
        tree = build_tree(fig1, MostEvenSelector(), sub)
        names = {fig1.name_of(i) for i, _ in tree.leaves()}
        assert names == {"S1", "S3", "S4"}
        tree.validate(fig1, sub)

    def test_single_set_mask_gives_leaf(self, fig1):
        tree = build_tree(fig1, MostEvenSelector(), 0b100)
        assert tree.is_leaf
        assert tree.set_index == 2

    def test_empty_mask_rejected(self, fig1):
        with pytest.raises(ValueError):
            build_tree(fig1, MostEvenSelector(), 0)

    def test_klp_tree_on_fig1_reaches_optimal_ad(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=3, metric=AD))
        assert tree.average_depth() == pytest.approx(20 / 7)

    def test_h_metric_tree_on_fig1(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=3, metric=H))
        assert tree.height() == 3

    def test_large_degenerate_chain_does_not_overflow(self):
        """Pairwise-disjoint-except-common sets only admit 1/(rest)
        splits, forcing a path-shaped tree; the explicit-stack
        construction must survive ~1100 levels."""
        from repro.core.collection import SetCollection

        n = 1100
        sets = [{"common", f"only{i}"} for i in range(n)]
        coll = SetCollection(sets)
        tree = build_tree(coll, MostEvenSelector())
        assert tree.n_leaves == n
        assert tree.height() == n - 1


class TestSummary:
    def test_summary_fields(self, fig1):
        tree, summary = build_and_summarize(fig1, InfoGainSelector())
        assert summary.n_sets == 7
        assert summary.n_entities == 10  # informative only
        assert summary.average_depth == pytest.approx(tree.average_depth())
        assert summary.height == tree.height()
        assert summary.lb_average_depth == pytest.approx(20 / 7)
        assert summary.lb_height == 3
        assert summary.construction_seconds >= 0.0
        assert summary.selector == "InfoGain"

    def test_gaps(self, fig1):
        _, summary = build_and_summarize(fig1, KLPSelector(k=3))
        assert summary.ad_gap == pytest.approx(0.0)
        assert summary.h_gap in (0, 1)

    def test_cost_accessor(self, fig1):
        _, summary = build_and_summarize(fig1, InfoGainSelector())
        assert summary.cost(AD) == summary.average_depth
        assert summary.cost(H) == float(summary.height)


class TestPersistence:
    def test_save_load_round_trip(self, fig1, tmp_path):
        tree = build_tree(fig1, KLPSelector(k=2))
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert loaded.leaf_depths() == tree.leaf_depths()
        loaded.validate(fig1)

    def test_loaded_tree_supports_discovery(self, fig1, tmp_path):
        from repro.core.discovery import TreeDiscoverySession
        from repro.oracle import SimulatedUser

        tree = build_tree(fig1, KLPSelector(k=2))
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        session = TreeDiscoverySession(fig1, load_tree(path))
        result = session.run(SimulatedUser(fig1, target_index=5))
        assert result.target == 5

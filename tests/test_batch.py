"""Tests for repro.core.batch (Sec. 6: multiple-choice examples)."""

import pytest

from repro.core.batch import (
    BatchDiscoverySession,
    batch_score,
    partition_cells,
    select_batch,
)
from repro.core.bitmask import popcount
from repro.core.bounds import AD
from repro.core.selection import NoInformativeEntityError
from repro.oracle import SimulatedUser


class TestPartitionCells:
    def test_empty_batch_is_one_cell(self, fig1):
        cells = partition_cells(fig1, fig1.full_mask, [])
        assert cells == {(): fig1.full_mask}

    def test_single_entity_two_cells(self, fig1):
        d = fig1.universe.id_of("d")
        cells = partition_cells(fig1, fig1.full_mask, [d])
        assert popcount(cells[(True,)]) == 3
        assert popcount(cells[(False,)]) == 4

    def test_cells_partition_the_mask(self, fig1):
        d = fig1.universe.id_of("d")
        g = fig1.universe.id_of("g")
        cells = partition_cells(fig1, fig1.full_mask, [d, g])
        union = 0
        for cell in cells.values():
            assert cell != 0
            assert union & cell == 0
            union |= cell
        assert union == fig1.full_mask

    def test_empty_cells_are_omitted(self, fig1):
        # d and f: no set has f without d, so one pattern is missing.
        d = fig1.universe.id_of("d")
        f = fig1.universe.id_of("f")
        cells = partition_cells(fig1, fig1.full_mask, [d, f])
        assert (False, True) not in cells


class TestBatchScore:
    def test_single_entity_score_matches_lb1_minus_question(self, fig1):
        d = fig1.universe.id_of("d")
        score = batch_score(fig1, fig1.full_mask, [d], AD)
        # batch_score omits the +1 of LB1 (the question being asked now).
        assert score == pytest.approx(AD.lb1(3, 4) - 1.0)

    def test_adding_entities_never_hurts(self, fig1):
        d = fig1.universe.id_of("d")
        g = fig1.universe.id_of("g")
        s1 = batch_score(fig1, fig1.full_mask, [d], AD)
        s2 = batch_score(fig1, fig1.full_mask, [d, g], AD)
        assert s2 <= s1 + 1e-12


class TestSelectBatch:
    def test_batch_size_one_is_most_even(self, fig1):
        batch = select_batch(fig1, fig1.full_mask, 1)
        assert len(batch) == 1
        n1 = fig1.positive_count(fig1.full_mask, batch[0])
        assert sorted([n1, 7 - n1]) == [3, 4]

    def test_batch_is_distinct(self, fig1):
        batch = select_batch(fig1, fig1.full_mask, 3)
        assert len(batch) == len(set(batch))

    def test_stops_early_when_fully_separated(self, fig1):
        # Fig. 1 needs only ~3 good entities to shatter all 7 sets.
        batch = select_batch(fig1, fig1.full_mask, 10)
        cells = partition_cells(fig1, fig1.full_mask, batch)
        assert all(popcount(c) == 1 for c in cells.values())
        assert len(batch) < 10

    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            select_batch(fig1, fig1.full_mask, 0)

    def test_no_informative_raises(self, fig1):
        informative = frozenset(
            e for e, _ in fig1.informative_entities(fig1.full_mask)
        )
        with pytest.raises(NoInformativeEntityError):
            select_batch(fig1, fig1.full_mask, 2, exclude=informative)


class TestBatchSession:
    @pytest.mark.parametrize("b", [1, 2, 3])
    def test_every_target_found(self, fig1, b):
        for target in range(fig1.n_sets):
            session = BatchDiscoverySession(fig1, batch_size=b)
            result = session.run(
                SimulatedUser(fig1, target_index=target)
            )
            assert result.resolved
            assert result.target == target

    def test_batches_shrink_interactions(self, synthetic_small):
        coll = synthetic_small
        singles = batches = 0
        for target in range(0, coll.n_sets, 5):
            s1 = BatchDiscoverySession(coll, batch_size=1)
            singles += s1.run(
                SimulatedUser(coll, target_index=target)
            ).n_batches
            s3 = BatchDiscoverySession(coll, batch_size=3)
            batches += s3.run(
                SimulatedUser(coll, target_index=target)
            ).n_batches
        assert batches < singles

    def test_batch_size_one_equals_question_count_of_singles(self, fig1):
        session = BatchDiscoverySession(fig1, batch_size=1)
        result = session.run(SimulatedUser(fig1, target_index=0))
        assert result.n_batches == result.n_answers

    def test_initial_seeding(self, fig1):
        session = BatchDiscoverySession(
            fig1, batch_size=2, initial={"b", "c"}
        )
        assert session.n_candidates == 3

    def test_initial_mask_seeding(self, fig1):
        mask = fig1.supersets_of({"g"})
        session = BatchDiscoverySession(
            fig1, batch_size=2, initial_mask=mask
        )
        assert session.n_candidates == 2

    def test_max_batches_halt(self, synthetic_small):
        session = BatchDiscoverySession(
            synthetic_small, batch_size=1, max_batches=2
        )
        result = session.run(
            SimulatedUser(synthetic_small, target_index=0)
        )
        assert result.n_batches <= 2

    def test_interactions_record_shrinkage(self, fig1):
        session = BatchDiscoverySession(fig1, batch_size=2)
        result = session.run(SimulatedUser(fig1, target_index=3))
        for step in result.interactions:
            assert step.candidates_after <= step.candidates_before
            assert len(step.entities) == len(step.answers)

    def test_target_accessor_requires_resolution(self, synthetic_small):
        session = BatchDiscoverySession(
            synthetic_small, batch_size=1, max_batches=1
        )
        result = session.run(
            SimulatedUser(synthetic_small, target_index=0)
        )
        if not result.resolved:
            with pytest.raises(ValueError):
                _ = result.target

    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            BatchDiscoverySession(fig1, batch_size=0)

"""Smoke tests: every example script must run green end-to-end.

Each example is executed in-process (import-free, via runpy) so failures
carry real tracebacks and coverage counts them.  The slowest examples get
reduced workloads through their CLI arguments where they accept one.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name, *(argv or [])]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 7


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "discovered S4" in out
    assert "2.857" in out


def test_medical_triage(capsys):
    run_example("medical_triage.py")
    out = capsys.readouterr().out
    assert "triage questions" in out
    assert "matched profile" in out


def test_batch_questions(capsys):
    run_example("batch_questions.py")
    out = capsys.readouterr().out
    assert "screens" in out


def test_concurrent_sessions(capsys):
    run_example("concurrent_sessions.py", ["16", "200"])
    out = capsys.readouterr().out
    assert "16 concurrent users attached" in out
    assert "lock-step rounds" in out
    assert "engine stats" in out


def test_async_service(capsys):
    run_example("async_service.py", ["24", "200"])
    out = capsys.readouterr().out
    assert "served 24 independent users" in out
    assert "ask() latency" in out
    assert "scheduler:" in out


def test_weighted_priors(capsys):
    run_example("weighted_priors.py")
    out = capsys.readouterr().out
    assert "entropy lower bound" in out


def test_costly_questions(capsys):
    run_example("costly_questions.py")
    out = capsys.readouterr().out
    assert "expected saving per patient" in out


@pytest.mark.slow
def test_robust_discovery(capsys):
    run_example("robust_discovery.py")
    out = capsys.readouterr().out
    assert "backtracking" in out


@pytest.mark.slow
def test_webtable_exploration(capsys):
    run_example("webtable_exploration.py")
    out = capsys.readouterr().out
    assert "candidate column sets" in out


@pytest.mark.slow
def test_query_discovery_baseball(capsys):
    run_example("query_discovery_baseball.py", ["1500"])
    out = capsys.readouterr().out
    assert "target found" in out

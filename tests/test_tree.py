"""Tests for repro.core.tree (decision trees, Sec. 3)."""

import pytest

from repro.core.construction import build_tree
from repro.core.selection import MostEvenSelector
from repro.core.tree import DecisionTree


def chain_tree() -> DecisionTree:
    """A degenerate path: e0 -> (S0 | e1 -> (S1 | S2))."""
    inner = DecisionTree.internal(
        1, DecisionTree.leaf(1), DecisionTree.leaf(2)
    )
    return DecisionTree.internal(0, DecisionTree.leaf(0), inner)


def balanced_tree() -> DecisionTree:
    return DecisionTree.internal(
        0,
        DecisionTree.internal(1, DecisionTree.leaf(0), DecisionTree.leaf(1)),
        DecisionTree.internal(2, DecisionTree.leaf(2), DecisionTree.leaf(3)),
    )


class TestConstruction:
    def test_leaf_properties(self):
        leaf = DecisionTree.leaf(5)
        assert leaf.is_leaf
        assert leaf.set_index == 5
        assert leaf.n_leaves == 1
        assert leaf.height() == 0

    def test_internal_requires_both_children(self):
        with pytest.raises(ValueError):
            DecisionTree(0, DecisionTree.leaf(1), None, None)

    def test_leaf_rejects_children(self):
        with pytest.raises(ValueError):
            DecisionTree(None, DecisionTree.leaf(0), DecisionTree.leaf(1), 2)

    def test_leaf_requires_set_index(self):
        with pytest.raises(ValueError):
            DecisionTree(None, None, None, None)


class TestShape:
    def test_leaves_of_balanced(self):
        tree = balanced_tree()
        assert dict(tree.leaves()) == {0: 2, 1: 2, 2: 2, 3: 2}
        assert tree.n_leaves == 4
        assert tree.n_internal == 3

    def test_chain_depths(self):
        tree = chain_tree()
        assert tree.leaf_depths() == {0: 1, 1: 2, 2: 2}

    def test_average_depth(self):
        assert balanced_tree().average_depth() == 2.0
        assert chain_tree().average_depth() == pytest.approx(5 / 3)

    def test_height(self):
        assert balanced_tree().height() == 2
        assert chain_tree().height() == 2

    def test_weighted_average_depth(self):
        tree = chain_tree()
        # All mass on the shallow leaf.
        assert tree.weighted_average_depth({0: 1.0}) == 1.0
        # Even mass on the two deep leaves.
        assert tree.weighted_average_depth({1: 1.0, 2: 1.0}) == 2.0

    def test_weighted_average_depth_needs_mass(self):
        with pytest.raises(ValueError):
            chain_tree().weighted_average_depth({})

    def test_deep_tree_does_not_recurse(self):
        # 3000-deep chain would blow the default recursion limit if
        # leaves() were recursive.
        tree = DecisionTree.leaf(0)
        for i in range(1, 3000):
            tree = DecisionTree.internal(i, DecisionTree.leaf(i), tree)
        assert tree.height() == 2999

    def test_internal_entities(self):
        assert sorted(balanced_tree().internal_entities()) == [0, 1, 2]


class TestPaths:
    def test_path_to_each_leaf(self):
        tree = balanced_tree()
        assert tree.path_to(0) == [(0, True), (1, True)]
        assert tree.path_to(3) == [(0, False), (2, False)]

    def test_path_to_missing_set_raises(self):
        with pytest.raises(KeyError):
            balanced_tree().path_to(9)


class TestValidate:
    def test_valid_tree_passes(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        tree.validate(fig1)

    def test_wrong_leaf_set_fails(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        # Swap two leaves: the membership structure breaks.
        leaves = []

        def collect(node):
            if node.is_leaf:
                leaves.append(node)
            else:
                collect(node.pos)
                collect(node.neg)

        collect(tree)
        leaves[0].set_index, leaves[1].set_index = (
            leaves[1].set_index,
            leaves[0].set_index,
        )
        with pytest.raises(AssertionError):
            tree.validate(fig1)

    def test_missing_leaf_fails(self, fig1):
        partial = DecisionTree.internal(
            fig1.universe.id_of("d"),
            DecisionTree.leaf(0),
            DecisionTree.leaf(1),
        )
        with pytest.raises(AssertionError):
            partial.validate(fig1)


class TestSerialisation:
    def test_round_trip(self):
        tree = balanced_tree()
        clone = DecisionTree.from_dict(tree.to_dict())
        assert clone.leaf_depths() == tree.leaf_depths()
        assert clone.path_to(2) == tree.path_to(2)

    def test_dict_shape(self):
        data = chain_tree().to_dict()
        assert data["entity"] == 0
        assert data["pos"] == {"set": 0}
        assert data["neg"]["entity"] == 1


class TestRender:
    def test_render_with_collection_labels(self, fig1):
        tree = build_tree(fig1, MostEvenSelector())
        text = tree.render(fig1)
        assert "S1" in text and "?" in text

    def test_render_without_collection(self):
        text = balanced_tree().render()
        assert "e0?" in text
        assert "[set#3]" in text

    def test_repr(self):
        assert "leaf" in repr(DecisionTree.leaf(1))
        assert "leaves=4" in repr(balanced_tree())

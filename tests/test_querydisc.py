"""Tests for repro.querydisc (end-to-end query discovery, Sec. 5.2.3)."""

import pytest

from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector
from repro.querydisc import (
    BaseballWorkload,
    build_query_collection,
    discover_target_query,
    run_workload,
)
from repro.querydisc.targets import baseball_generator_config


@pytest.fixture(scope="module")
def workload() -> BaseballWorkload:
    return BaseballWorkload.build(n_players=2_500)


class TestWorkload:
    def test_cases_present(self, workload):
        assert set(workload.cases) <= {f"T{i}" for i in range(1, 8)}
        assert "T1" in workload.cases

    def test_examples_come_from_target_output(self, workload):
        for case in workload.cases.values():
            assert set(case.example_rows) <= case.output_rows

    def test_examples_deterministic(self):
        a = BaseballWorkload.build(n_players=1_500)
        b = BaseballWorkload.build(n_players=1_500)
        for name in a.cases:
            assert (
                a.cases[name].example_rows == b.cases[name].example_rows
            )

    def test_unknown_case_raises(self, workload):
        with pytest.raises(KeyError):
            workload.case("T99")

    def test_generator_config_excludes_player_id(self):
        config = baseball_generator_config()
        assert "playerID" not in config.categorical
        assert set(config.numerical) == {"birthYear", "height", "weight"}


class TestQueryCollection:
    def test_collection_is_deduplicated_outputs(self, workload):
        case = workload.case("T1")
        qc = build_query_collection(case)
        assert qc.n_unique_sets <= qc.n_candidate_queries
        assert qc.collection.n_sets == qc.n_unique_sets

    def test_provenance_covers_all_queries_with_output(self, workload):
        case = workload.case("T1")
        qc = build_query_collection(case)
        covered = sum(len(v) for v in qc.provenance.values())
        assert covered == len(qc.output_sizes)

    def test_target_output_is_among_candidates(self, workload):
        """The target query itself is generated (its shape fits steps
        3-5), so its output set must be in the collection."""
        for name in ("T1", "T3", "T5"):
            case = workload.case(name)
            qc = build_query_collection(case)
            table = case.query.table
            target_labels = frozenset(
                table.value(rid, "playerID") for rid in case.output_rows
            )
            found = any(
                qc.collection.set_labels(i) == target_labels
                for i in range(qc.collection.n_sets)
            )
            assert found, name

    def test_average_output_size_positive(self, workload):
        qc = build_query_collection(workload.case("T4"))
        assert qc.average_output_size > 0

    def test_queries_for_set_returns_sql(self, workload):
        qc = build_query_collection(workload.case("T1"))
        sqls = qc.queries_for_set(0)
        assert sqls
        assert all(s.startswith("SELECT") for s in sqls)


class TestDiscovery:
    @pytest.mark.parametrize("name", ["T1", "T2", "T3", "T4"])
    def test_target_query_is_discovered(self, workload, name):
        case = workload.case(name)
        outcome = discover_target_query(case, KLPSelector(k=2))
        assert outcome.resolved
        assert outcome.target_found, name
        assert outcome.n_questions > 0
        assert outcome.discovered_queries

    def test_infogain_also_discovers(self, workload):
        case = workload.case("T3")
        outcome = discover_target_query(case, InfoGainSelector())
        assert outcome.target_found

    def test_question_counts_in_paper_regime(self, workload):
        """The paper needs 9-11 questions per target; at reduced scale
        the collection is smaller, so a loose upper band applies."""
        case = workload.case("T1")
        outcome = discover_target_query(case, KLPSelector(k=2))
        assert 3 <= outcome.n_questions <= 15

    def test_shared_collection_reuse(self, workload):
        case = workload.case("T2")
        qc = build_query_collection(case)
        a = discover_target_query(case, KLPSelector(k=2), qc)
        b = discover_target_query(case, KLPSelector(k=2), qc)
        assert a.n_questions == b.n_questions

    def test_run_workload_shape(self, workload):
        outcomes = run_workload(
            workload, InfoGainSelector(), targets=["T1", "T2"]
        )
        assert sorted(outcomes) == ["T1", "T2"]
        assert all(o.resolved for o in outcomes.values())

    def test_outcome_metadata(self, workload):
        case = workload.case("T5")
        outcome = discover_target_query(case, KLPSelector(k=2))
        assert outcome.target == "T5"
        assert outcome.selector == "2-LP[AD]"
        assert outcome.n_candidate_queries > 100
        assert outcome.discovery_seconds >= 0.0

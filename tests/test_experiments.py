"""Smoke + shape tests for the experiment runners (tiny scale)."""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.common import (
    PAPER,
    ResultTable,
    Scale,
    geometric_mean,
    mean,
    scale_by_name,
    stopwatch,
)

#: One shared tiny scale so the whole module stays fast.
TINY = Scale("tiny", 200, max_sets=120)


class TestCommon:
    def test_scale_scaling(self):
        assert TINY.scaled(10_000) == 50
        assert TINY.scaled(100) == 1  # floor at 1
        assert PAPER.scaled(12345) == 12345

    def test_scale_by_name(self):
        assert scale_by_name("paper") is PAPER
        with pytest.raises(ValueError):
            scale_by_name("giant")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            Scale("bad", 0)

    def test_result_table_add_and_column(self):
        table = ResultTable("t", ["a", "b"])
        table.add(1, 2)
        table.add(3, 4)
        assert table.column("b") == [2, 4]
        with pytest.raises(ValueError):
            table.add(1)

    def test_result_table_render(self):
        table = ResultTable("Title", ["x", "value"])
        table.add("row", 1.5)
        table.note("a note")
        text = table.render()
        assert "Title" in text
        assert "row" in text
        assert "note: a note" in text
        assert str(table) == text

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        for v in (0.0, 1.23456, 12345.6, 1e-6, True):
            table.add(v)
        text = table.render()
        assert "1.235" in text
        assert "yes" in text

    def test_stopwatch(self):
        with stopwatch() as t:
            sum(range(1000))
        assert t[0] >= 0.0

    def test_means(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([-1.0, 0.0]) == 0.0


class TestRegistry:
    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "table1", "table2_3", "table4",
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "params", "comparison", "ablation",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("table99", TINY)

    def test_scale_accepts_string(self):
        tables = run_experiment("table1", "small")
        assert tables


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_every_experiment_runs_and_produces_rows(name):
    if name in ("fig4",):
        pytest.skip("fig4 timing comparison covered separately (slow)")
    tables = run_experiment(name, TINY)
    assert tables, name
    for table in tables:
        assert isinstance(table, ResultTable)
        assert table.columns
        # Every row matches the column count (ResultTable enforces on
        # add, re-checked here for belt and braces).
        for row in table.rows:
            assert len(row) == len(table.columns)


class TestShapes:
    """Cheap shape checks mirroring the paper's qualitative claims."""

    def test_table1a_entities_grow_as_overlap_falls(self):
        # Rows sweep the overlap ratio downward (0.99 -> 0.65), so the
        # distinct-entity counts must be ascending.
        table = run_experiment("table1", TINY)[0]
        entities = table.column("distinct_entities")
        assert entities == sorted(entities)

    def test_fig7_questions_grow_with_n(self):
        [table] = run_experiment("fig7", TINY)
        ads = table.column("AD 2-LP[AD]")
        assert ads == sorted(ads)
        # Roughly +1 per doubling.
        assert 0.5 < ads[1] - ads[0] < 1.5

    def test_table4_substantial_pruning(self):
        [table] = run_experiment("table4", TINY)
        for avg in table.column("avg % pruned"):
            assert avg > 50.0

    def test_fig8_lookahead_not_worse_than_infogain_on_average(self):
        questions, _timing = run_experiment("fig8", TINY)
        infogain = questions.column("InfoGain")
        klp = questions.column("2-LP[AD]")
        assert sum(klp) <= sum(infogain) + 1

    def test_comparison_improvements_non_negative(self):
        tables = run_experiment("comparison", TINY)
        improvements = tables[0].column("mean improvement")
        assert all(v >= -1e-9 for v in improvements)

"""Tests for repro.core.collection (the paper's collection C, Sec. 3)."""

import pytest

from repro.core.bitmask import popcount
from repro.core.collection import DuplicateSetError, SetCollection
from repro.core.universe import Universe

from conftest import FIG1_SETS


class TestConstruction:
    def test_counts_of_fig1(self, fig1):
        assert fig1.n_sets == 7
        assert fig1.n_entities == 11  # a..k

    def test_default_names_follow_paper(self):
        coll = SetCollection([{"x"}, {"y"}])
        assert coll.names == ("S1", "S2")

    def test_explicit_names(self):
        coll = SetCollection([{"x"}, {"y"}], names=["left", "right"])
        assert coll.name_of(1) == "right"

    def test_duplicate_sets_raise_by_default(self):
        with pytest.raises(DuplicateSetError):
            SetCollection([{"x", "y"}, {"y", "x"}])

    def test_dedupe_merges_and_records_aliases(self):
        coll = SetCollection(
            [{"x"}, {"x"}, {"y"}], names=["a", "b", "c"], dedupe=True
        )
        assert coll.n_sets == 2
        assert coll.aliases_of(0) == ("b",)
        assert coll.aliases_of(1) == ()

    def test_shared_universe(self):
        u = Universe(["x"])
        coll = SetCollection([{"x", "y"}], universe=u)
        assert coll.universe is u
        assert u.id_of("y") == 1

    def test_from_named_sets(self, fig1):
        assert fig1.index_of("S4") == 3
        assert fig1.set_labels(1) == frozenset({"a", "d", "e"})

    def test_index_of_unknown_name_raises(self, fig1):
        with pytest.raises(KeyError):
            fig1.index_of("S99")

    def test_empty_set_is_allowed(self):
        coll = SetCollection([set(), {"x"}])
        assert coll.sets[0] == frozenset()

    def test_repr(self, fig1):
        assert "n_sets=7" in repr(fig1)


class TestMasksAndPartition:
    def test_full_mask_covers_all_sets(self, fig1):
        assert popcount(fig1.full_mask) == 7

    def test_entity_mask_matches_membership(self, fig1):
        d = fig1.universe.id_of("d")
        # d is in S1, S2, S3 (indices 0, 1, 2)
        assert fig1.entity_mask(d) == 0b0000111

    def test_entity_mask_of_absent_entity_is_zero(self, fig1):
        assert fig1.entity_mask(999) == 0

    def test_partition_by_d_gives_3_4(self, fig1):
        d = fig1.universe.id_of("d")
        pos, neg = fig1.partition(fig1.full_mask, d)
        assert popcount(pos) == 3
        assert popcount(neg) == 4
        assert pos & neg == 0
        assert pos | neg == fig1.full_mask

    def test_partition_respects_sub_collection(self, fig1):
        d = fig1.universe.id_of("d")
        sub = 0b0000011  # S1, S2 only
        pos, neg = fig1.partition(sub, d)
        assert pos == sub
        assert neg == 0

    def test_positive_count(self, fig1):
        c = fig1.universe.id_of("c")
        assert fig1.positive_count(fig1.full_mask, c) == 3

    def test_sets_in(self, fig1):
        assert list(fig1.sets_in(0b0010100)) == [2, 4]

    def test_entities_in_union(self, fig1):
        sub = 0b0000011  # S1, S2
        labels = {fig1.universe.label(e) for e in fig1.entities_in(sub)}
        assert labels == {"a", "b", "c", "d", "e"}


class TestInformativeEntities:
    def test_a_is_uninformative_in_fig1(self, fig1):
        informative = {
            fig1.universe.label(e)
            for e, _ in fig1.informative_entities(fig1.full_mask)
        }
        assert "a" not in informative
        assert informative == set("bcdefghijk")

    def test_counts_are_positive_side_sizes(self, fig1):
        counts = {
            fig1.universe.label(e): c
            for e, c in fig1.informative_entities(fig1.full_mask)
        }
        assert counts["d"] == 3
        assert counts["b"] == 6
        assert counts["e"] == 1

    def test_entity_in_all_sub_collection_sets_is_uninformative(self, fig1):
        # b is in S1 and S3 but not S2: within {S1, S3} it is uninformative.
        sub = 0b0000101
        informative = {
            fig1.universe.label(e)
            for e, _ in fig1.informative_entities(sub)
        }
        assert "b" not in informative
        assert "f" in informative  # only in S3

    def test_candidates_restrict_the_scan(self, fig1):
        d = fig1.universe.id_of("d")
        result = fig1.informative_entities(fig1.full_mask, candidates=[d])
        assert result == [(d, 3)]

    def test_cache_consistency(self, fig1):
        first = fig1.informative_entities(fig1.full_mask)
        second = fig1.informative_entities(fig1.full_mask)
        assert first == second
        fig1.clear_caches()
        assert fig1.informative_entities(fig1.full_mask) == first

    def test_singleton_sub_collection_has_no_informative(self, fig1):
        assert fig1.informative_entities(0b1) == []


class TestSupersets:
    def test_supersets_of_a_is_everything(self, fig1):
        assert fig1.supersets_of({"a"}) == fig1.full_mask

    def test_supersets_of_pair(self, fig1):
        mask = fig1.supersets_of({"b", "c"})
        names = {fig1.name_of(i) for i in fig1.sets_in(mask)}
        assert names == {"S1", "S3", "S4"}

    def test_supersets_of_unknown_label_is_empty(self, fig1):
        assert fig1.supersets_of({"zzz"}) == 0

    def test_supersets_of_empty_initial_is_full(self, fig1):
        assert fig1.supersets_of(set()) == fig1.full_mask

    def test_supersets_of_ids(self, fig1):
        g = fig1.universe.id_of("g")
        names = {
            fig1.name_of(i)
            for i in fig1.sets_in(fig1.supersets_of_ids([g]))
        }
        assert names == {"S4", "S7"}

    def test_find_existing_set(self, fig1):
        assert fig1.find(FIG1_SETS["S5"]) == 4

    def test_find_missing_set(self, fig1):
        assert fig1.find({"a", "b"}) is None
        assert fig1.find({"not", "interned"}) is None


class TestLookupMaps:
    def test_index_of_known_names(self, fig1):
        for idx, name in enumerate(fig1.names):
            assert fig1.index_of(name) == idx

    def test_index_of_unknown_name_raises_keyerror(self, fig1):
        with pytest.raises(KeyError):
            fig1.index_of("S99")

    def test_duplicate_names_resolve_to_first(self):
        coll = SetCollection([[1, 2], [2, 3]], names=["dup", "dup"])
        assert coll.index_of("dup") == 0

    def test_find_after_dedupe(self):
        coll = SetCollection(
            [[1, 2], [2, 1], [3]], names=["a", "b", "c"], dedupe=True
        )
        assert coll.find([1, 2]) == 0
        assert coll.find([3]) == 1
        assert coll.find([1, 3]) is None


class TestInformativeCacheBound:
    def make(self, cap):
        return SetCollection(
            [[i, i + 1, i + 2] for i in range(12)],
            informative_cache_size=cap,
        )

    def test_cache_is_bounded(self):
        coll = self.make(cap=4)
        masks = [coll.full_mask & ~(1 << i) for i in range(10)]
        for mask in masks:
            coll.informative_stats(mask)
        assert coll.cached_mask_count() <= 4

    def test_lru_eviction_order(self):
        coll = self.make(cap=2)
        m1, m2, m3 = 0b111, 0b1110, 0b11100
        coll.informative_stats(m1)
        coll.informative_stats(m2)
        coll.informative_stats(m1)  # touch m1: m2 becomes oldest
        coll.informative_stats(m3)  # evicts m2
        assert coll.is_cached(m1)
        assert not coll.is_cached(m2)
        assert coll.is_cached(m3)

    def test_unbounded_when_none(self):
        coll = self.make(cap=None)
        masks = [coll.full_mask & ~(1 << i) for i in range(10)]
        for mask in masks:
            coll.informative_stats(mask)
        assert coll.cached_mask_count() == len(set(masks)) + 0

    def test_release_cached(self):
        coll = self.make(cap=8)
        coll.informative_stats(coll.full_mask)
        assert coll.is_cached(coll.full_mask)
        coll.release_cached(coll.full_mask)
        assert not coll.is_cached(coll.full_mask)
        coll.release_cached(coll.full_mask)  # idempotent

    def test_eviction_does_not_change_results(self):
        bounded = self.make(cap=1)
        unbounded = self.make(cap=None)
        masks = [0b111111, 0b101010, 0b111000, 0b101010, 0b111111]
        for mask in masks:
            assert list(bounded.informative_stats(mask)[0]) == list(
                unbounded.informative_stats(mask)[0]
            )


class TestPositiveCountsMany:
    def test_rows_equal_positive_counts_on_every_backend(self, fig1):
        from repro.core.kernels import available_backends

        for backend in available_backends():
            coll = SetCollection.from_named_sets(FIG1_SETS, backend=backend)
            masks = [coll.full_mask, 0b1011, 0b0100]
            eids = list(range(-1, coll.n_entities + 2))
            rows = coll.positive_counts_many(masks, eids)
            for mask, row in zip(masks, rows):
                assert isinstance(row, list)
                assert row == coll.positive_counts(mask, eids)

"""Tests for benchmarks/render_history_chart.py (trajectory SVG chart).

The renderer is a stdlib-only script CI runs after appending the bench
history; these tests load it by path (benchmarks/ is not a package) and
check the properties the committed artifact relies on: determinism,
indexed series, graceful empty-history handling, and collision-free
direct labels.
"""

from __future__ import annotations

import importlib.util
import json
import re
from pathlib import Path

_SCRIPT = (
    Path(__file__).parent.parent / "benchmarks" / "render_history_chart.py"
)


def _load():
    spec = importlib.util.spec_from_file_location(
        "render_history_chart", _SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


chart = _load()


def history_entry(sha: str, benches: dict) -> str:
    return json.dumps({"sha": sha, "run": "1", "benches": benches})


def write_history(tmp_path: Path, lines: list[str]) -> Path:
    path = tmp_path / "trajectory.jsonl"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestSeriesExtraction:
    def test_series_names_strip_bench_wrapper(self):
        assert chart.series_name("BENCH_sessions.json", "speedup") == "sessions"
        assert (
            chart.series_name("BENCH_kernels.json", "scan_s")
            == "kernels · scan_s"
        )

    def test_collect_series_aligns_missing_entries(self):
        entries = [
            {"benches": {"BENCH_a.json": {"speedup": 2.0}}},
            {
                "benches": {
                    "BENCH_a.json": {"speedup": 3.0},
                    "BENCH_b.json": {"speedup": 5.0},
                }
            },
        ]
        series = chart.collect_series(entries)
        assert series["a"] == [2.0, 3.0]
        assert series["b"] == [None, 5.0]  # absent before it first appears

    def test_collect_series_skips_junk_values(self):
        entries = [
            {"benches": {"BENCH_a.json": {"speedup": -1, "ok": 2.0}}},
        ]
        series = chart.collect_series(entries)
        assert "a · ok" in series
        assert not any("speedup" in name for name in series)

    def test_indexed_divides_by_first_recorded_value(self):
        assert chart.indexed([None, 2.0, 3.0]) == [None, 1.0, 1.5]
        assert chart.indexed([None, None]) == [None, None]


class TestRendering:
    def test_empty_history_renders_placeholder(self):
        svg = chart.render_svg([])
        assert svg.startswith("<svg")
        assert "No history yet" in svg

    def test_deterministic_output(self, tmp_path):
        lines = [
            history_entry("a" * 9, {"BENCH_a.json": {"speedup": 2.0}}),
            history_entry("b" * 9, {"BENCH_a.json": {"speedup": 2.4}}),
        ]
        path = write_history(tmp_path, lines)
        out1, out2 = tmp_path / "one.svg", tmp_path / "two.svg"
        chart.main([str(_SCRIPT), str(path), str(out1)])
        chart.main([str(_SCRIPT), str(path), str(out2)])
        assert out1.read_bytes() == out2.read_bytes()

    def test_lines_markers_and_labels_present(self, tmp_path):
        lines = [
            history_entry(
                f"{i:09d}",
                {
                    "BENCH_a.json": {"speedup": 2.0 + 0.1 * i},
                    "BENCH_b.json": {"speedup": 5.0 - 0.1 * i},
                },
            )
            for i in range(4)
        ]
        path = write_history(tmp_path, lines)
        out = tmp_path / "chart.svg"
        chart.main([str(_SCRIPT), str(path), str(out)])
        svg = out.read_text()
        assert svg.count("<path") == 2  # one line per series
        assert svg.count("<circle") >= 8 + 2  # 4 points x 2 + legend chips
        assert ">a</text>" in svg and ">b</text>" in svg  # direct labels
        assert "000000000" in svg  # sha tick labels

    def test_direct_labels_never_collide(self, tmp_path):
        # Five series ending at nearly the same value: labels must be
        # nudged apart, not stacked on one another.
        benches = {
            f"BENCH_s{i}.json": {"speedup": 2.0 + i * 1e-3} for i in range(5)
        }
        path = write_history(
            tmp_path, [history_entry("c" * 9, benches)] * 2
        )
        out = tmp_path / "chart.svg"
        chart.main([str(_SCRIPT), str(path), str(out)])
        svg = out.read_text()
        ys = sorted(
            float(m.group(2))
            for m in re.finditer(
                r'<text x="([\d.]+)" y="([\d.]+)"[^>]*>s\d</text>', svg
            )
        )
        assert len(ys) == 5
        assert all(b - a >= 13 for a, b in zip(ys, ys[1:]))

    def test_single_entry_history_renders_points(self, tmp_path):
        path = write_history(
            tmp_path,
            [history_entry("d" * 9, {"BENCH_a.json": {"speedup": 3.0}})],
        )
        out = tmp_path / "chart.svg"
        chart.main([str(_SCRIPT), str(path), str(out)])
        svg = out.read_text()
        assert "<circle" in svg  # a lone run still shows its data point
        assert "<path" not in svg  # but no line segment

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = write_history(
            tmp_path,
            [
                "{not json",
                history_entry("e" * 9, {"BENCH_a.json": {"speedup": 2.0}}),
            ],
        )
        out = tmp_path / "chart.svg"
        assert chart.main([str(_SCRIPT), str(path), str(out)]) == 0
        assert "No history yet" not in out.read_text()

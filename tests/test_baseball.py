"""Tests for repro.relational.baseball (the Lahman substitute)."""

import pytest

from repro.relational.baseball import (
    PAPER_CANDIDATE_COUNTS,
    PAPER_TARGET_SIZES,
    QUERY_COLUMNS,
    generate_people_table,
    target_queries,
)


@pytest.fixture(scope="module")
def table():
    return generate_people_table(n_players=5_000, seed=20185)


class TestSchema:
    def test_query_columns_match_paper(self, table):
        assert set(QUERY_COLUMNS) == {
            "birthCountry", "birthState", "birthCity", "birthYear",
            "birthMonth", "birthDay", "height", "weight", "bats",
            "throws",
        }
        for column in QUERY_COLUMNS:
            assert table.has_column(column)

    def test_paper_column_grouping(self, table):
        assert set(table.numerical_columns()) == {
            "birthYear", "height", "weight",
        }
        categorical = set(table.categorical_columns())
        assert {
            "birthCountry", "birthState", "birthCity", "birthMonth",
            "birthDay", "bats", "throws",
        } <= categorical

    def test_player_ids_unique(self, table):
        ids = table.column_values("playerID")
        assert len(set(ids)) == len(ids)


class TestDistributions:
    def test_row_count(self, table):
        assert table.n_rows == 5_000

    def test_default_row_count_matches_paper(self):
        small = generate_people_table(n_players=10)
        assert small.n_rows == 10

    def test_deterministic_per_seed(self):
        a = generate_people_table(n_players=50, seed=1)
        b = generate_people_table(n_players=50, seed=1)
        assert [a.row(i) for i in range(50)] == [
            b.row(i) for i in range(50)
        ]

    def test_usa_dominates_birth_country(self, table):
        values = table.column_values("birthCountry")
        usa = sum(1 for v in values if v == "USA") / len(values)
        assert 0.8 < usa < 0.95

    def test_height_weight_ranges(self, table):
        heights = table.column_values("height")
        weights = table.column_values("weight")
        assert all(60 <= h <= 83 for h in heights)
        assert all(120 <= w <= 320 for w in weights)
        mean_height = sum(heights) / len(heights)
        assert 71 < mean_height < 74

    def test_weight_correlates_with_height(self, table):
        tall = [
            table.value(i, "weight")
            for i in range(table.n_rows)
            if table.value(i, "height") >= 76
        ]
        short = [
            table.value(i, "weight")
            for i in range(table.n_rows)
            if table.value(i, "height") <= 68
        ]
        assert sum(tall) / len(tall) > sum(short) / len(short) + 20

    def test_birth_year_range_and_skew(self, table):
        years = table.column_values("birthYear")
        assert all(1850 <= y <= 1996 for y in years)
        late = sum(1 for y in years if y > 1923)
        assert late > len(years) / 2  # increasing density

    def test_handedness_correlation(self, table):
        rows = [table.row(i) for i in range(table.n_rows)]
        right_bats = [r for r in rows if r["bats"] == "R"]
        left_bats = [r for r in rows if r["bats"] == "L"]
        r_throws_r = sum(
            1 for r in right_bats if r["throws"] == "R"
        ) / len(right_bats)
        l_throws_r = sum(
            1 for r in left_bats if r["throws"] == "R"
        ) / len(left_bats)
        assert r_throws_r > 0.9
        assert 0.3 < l_throws_r < 0.6

    def test_months_and_days_in_range(self, table):
        assert all(
            1 <= m <= 12 for m in table.column_values("birthMonth")
        )
        assert all(1 <= d <= 28 for d in table.column_values("birthDay"))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_people_table(n_players=0)


class TestTargetQueries:
    def test_all_seven_targets_defined(self, table):
        targets = target_queries(table)
        assert sorted(targets) == [f"T{i}" for i in range(1, 8)]
        assert set(PAPER_TARGET_SIZES) == set(targets)
        assert set(PAPER_CANDIDATE_COUNTS) == set(targets)

    def test_targets_nonempty_at_5k(self, table):
        for name, query in target_queries(table).items():
            assert query.cardinality() > 0, name

    def test_target_size_ordering_matches_paper_regime(self, table):
        """T3 is the biggest; T5-T7 are the small ones."""
        sizes = {
            name: q.cardinality()
            for name, q in target_queries(table).items()
        }
        assert sizes["T3"] == max(sizes.values())
        for small in ("T5", "T6", "T7"):
            assert sizes[small] < sizes["T1"]
            assert sizes[small] < sizes["T3"]

    def test_t2_selects_los_angeles_players(self, table):
        t2 = target_queries(table)["T2"]
        for rid in t2.evaluate():
            row = table.row(rid)
            assert row["birthCity"] == "Los Angeles"
            assert 70 < row["height"] < 80

    def test_t5_selects_christmas_birthdays(self, table):
        t5 = target_queries(table)["T5"]
        for rid in t5.evaluate():
            row = table.row(rid)
            assert (row["birthMonth"], row["birthDay"]) == (12, 25)

"""Tests for the serving state machine + scan scheduler layers.

``repro.serve`` is split into a session state machine
(:mod:`repro.serve.state`), a latency-budgeted scan scheduler
(:mod:`repro.serve.scheduler`) and thin front-ends.  This module covers
the two lower layers directly — phases, registry bookkeeping and answer
validation, flush policy (fake-clock latency budget, batch watermark),
out-of-order answering, sessions joining mid-stream — and proves the
golden equivalence: the lock-step engine routed through the scheduler
produces byte-identical transcripts to sequential sessions.
"""

from __future__ import annotations

import random

import pytest

from repro.core.discovery import DiscoverySession
from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector, MostEvenSelector
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser, UnsureUser
from repro.serve import (
    Phase,
    ScanScheduler,
    SchedulerSaturated,
    SessionEngine,
    SessionRegistry,
)

from conftest import FIG1_SETS
from test_engine import serialize_results


def make_collection(n_sets: int = 100, seed: int = 3, backend: str = "bigint"):
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=10, size_hi=16, overlap=0.8, seed=seed
        ),
        backend=backend,
    )


def sequential(collection, targets, factory=MostEvenSelector):
    out = []
    for target in targets:
        session = DiscoverySession(collection, factory())
        out.append(session.run(SimulatedUser(collection, target_index=target)))
    return out


# --------------------------------------------------------------------- #
# Session state machine (serve/state.py)
# --------------------------------------------------------------------- #


class TestPhases:
    def test_phase_progression(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        key = registry.spawn(MostEvenSelector())
        state = registry.state(key)
        assert state.phase is Phase.NEEDS_SCAN

        scheduler = ScanScheduler(registry)
        scheduler.submit(state)
        report = scheduler.flush()
        assert state.phase is Phase.QUESTION_PENDING
        assert report.questions[key] == state.session.pending_entity

        oracle = SimulatedUser(collection, target_index=1)
        while registry.result_of(key) is None:
            registry.answer(key, oracle(state.session.pending_entity))
            for needy in registry.needs_question():
                scheduler.submit(needy)
            scheduler.flush()
        assert registry.result_of(key).resolved

    def test_done_without_scan_for_single_candidate(self):
        from repro.core.collection import SetCollection

        collection = SetCollection.from_named_sets(FIG1_SETS)
        registry = SessionRegistry(collection)
        key = registry.spawn(MostEvenSelector(), initial={"e"})  # pins S2
        assert registry.state(key).phase is Phase.DONE

    def test_done_when_budget_exhausted(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        key = registry.spawn(MostEvenSelector(), max_questions=0)
        assert registry.state(key).session.budget_exhausted
        assert registry.state(key).phase is Phase.DONE

    def test_needs_question_retires_done_sessions(self):
        from repro.core.collection import SetCollection

        collection = SetCollection.from_named_sets(FIG1_SETS)
        registry = SessionRegistry(collection)
        done_key = registry.spawn(MostEvenSelector(), initial={"e"})
        live_key = registry.spawn(MostEvenSelector())
        need = registry.needs_question()
        assert [s.key for s in need] == [live_key]
        assert registry.result_of(done_key) is not None
        assert registry.n_active == 1


class TestRegistryAnswerValidation:
    """Satellite bugfix: answers must never silently corrupt state."""

    def setup_method(self):
        self.collection = make_collection(n_sets=40)
        self.registry = SessionRegistry(self.collection)
        self.scheduler = ScanScheduler(self.registry)

    def test_unknown_key_raises_clear_keyerror(self):
        with pytest.raises(KeyError, match="unknown session key"):
            self.registry.answer("nope", True)

    def test_finished_key_raises_clear_keyerror(self):
        from repro.core.collection import SetCollection

        collection = SetCollection.from_named_sets(FIG1_SETS)
        registry = SessionRegistry(collection)
        key = registry.spawn(MostEvenSelector(), initial={"e"})
        registry.needs_question()  # retires the immediately-done session
        with pytest.raises(KeyError, match="already finished"):
            registry.answer(key, True)

    def test_answer_before_any_question_raises(self):
        key = self.registry.spawn(MostEvenSelector())
        with pytest.raises(ValueError, match="no pending question"):
            self.registry.answer(key, True)

    def test_double_answer_before_next_flush_raises(self):
        key = self.registry.spawn(MostEvenSelector())
        self.scheduler.submit(self.registry.state(key))
        report = self.scheduler.flush()
        self.registry.answer(key, True)
        with pytest.raises(ValueError, match="no pending question"):
            self.registry.answer(key, False)
        # the recorded answer survived intact: exactly one interaction,
        # with the first reply
        transcript = self.registry.session(key).transcript
        assert len(transcript) == 1
        assert transcript[0].entity == report.questions[key]
        assert transcript[0].answer is True

    def test_engine_answer_uses_the_same_validation(self):
        engine = SessionEngine(self.collection)
        with pytest.raises(KeyError, match="unknown session key"):
            engine.answer("ghost", True)
        key = engine.spawn(MostEvenSelector())
        engine.tick()
        engine.answer(key, True)
        with pytest.raises(ValueError, match="no pending question"):
            engine.answer(key, False)

    def test_duplicate_key_rejected_even_after_finish(self):
        from repro.core.collection import SetCollection

        collection = SetCollection.from_named_sets(FIG1_SETS)
        registry = SessionRegistry(collection)
        registry.spawn(MostEvenSelector(), initial={"e"}, key="k")
        registry.needs_question()
        assert registry.result_of("k") is not None
        with pytest.raises(KeyError, match="duplicate"):
            registry.spawn(MostEvenSelector(), key="k")


# --------------------------------------------------------------------- #
# Flush policy: latency budget (fake clock) + batch watermark
# --------------------------------------------------------------------- #


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestFlushPolicy:
    def test_latency_budget_with_fake_clock(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        clock = FakeClock()
        scheduler = ScanScheduler(registry, flush_after_ms=5.0, clock=clock)
        assert not scheduler.due()  # empty queue: nothing is ever due

        key = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(key))
        assert scheduler.deadline() == pytest.approx(0.005)
        assert not scheduler.due()
        clock.advance(0.004)
        assert not scheduler.due()
        assert not scheduler.should_flush()
        clock.advance(0.001)
        assert scheduler.due()
        assert scheduler.should_flush()

        report = scheduler.flush()
        assert key in report.questions
        # the queue drained: the budget re-arms from the next submission
        assert scheduler.deadline() is None
        assert not scheduler.due()

    def test_budget_anchored_to_oldest_request(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        clock = FakeClock()
        scheduler = ScanScheduler(registry, flush_after_ms=10.0, clock=clock)
        k1 = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(k1))
        clock.advance(0.008)
        k2 = registry.spawn(InfoGainSelector())
        scheduler.submit(registry.state(k2))
        # a late joiner must not push the deadline out
        assert scheduler.deadline() == pytest.approx(0.010)
        clock.advance(0.002)
        assert scheduler.due()

    def test_watermark(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry, max_batch=2)
        k1 = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(k1))
        assert not scheduler.watermark_hit
        assert not scheduler.should_flush()
        k2 = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(k2))
        assert scheduler.watermark_hit
        assert scheduler.should_flush()

    def test_no_budget_never_due(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        key = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(key))
        assert scheduler.deadline() is None
        assert not scheduler.due()
        assert not scheduler.should_flush()

    def test_submit_is_idempotent_per_key(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        key = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(key))
        scheduler.submit(registry.state(key))
        assert scheduler.pending_requests == 1

    def test_empty_flush_is_free(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        report = scheduler.flush()
        assert report.questions == {}
        assert report.finished == {}
        assert scheduler.stats.batched_scans == 0


class TestFlushPhaseRecheck:
    """flush() re-dispatches requests whose phase changed after submit."""

    def test_already_pending_request_is_rereported(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        key = registry.spawn(MostEvenSelector())
        scheduler.submit(registry.state(key))
        first = scheduler.flush().questions[key]
        # resubmitted while its question is still unanswered (the async
        # front-end's resubmission race)
        scheduler.submit(registry.state(key))
        report = scheduler.flush()
        assert report.questions == {}
        assert report.already_pending == {key: first}

    def test_done_request_is_finished_not_scanned(self):
        from repro.core.collection import SetCollection

        collection = SetCollection.from_named_sets(FIG1_SETS)
        registry = SessionRegistry(collection)
        key = registry.spawn(MostEvenSelector(), initial={"e"})
        scheduler = ScanScheduler(registry)
        scheduler.submit(registry.state(key))
        report = scheduler.flush()
        assert report.questions == {}
        assert report.finished[key].resolved
        assert scheduler.stats.batched_scans == 0


# --------------------------------------------------------------------- #
# Scheduler-driven serving: out-of-order answers, mid-stream joins
# --------------------------------------------------------------------- #


class TestSchedulerServing:
    def drive(self, registry, scheduler, oracles, answer_order=None):
        """Serve to completion, answering each round in a chosen order."""
        rounds = 0
        while registry.n_active:
            for state in registry.needs_question():
                scheduler.submit(state)
            scheduler.flush()
            pending = registry.pending()
            keys = list(pending)
            if answer_order is not None:
                keys = answer_order(keys, rounds)
            for key in keys:
                registry.answer(key, oracles[key](pending[key]))
            rounds += 1
            assert rounds < 200, "scheduler failed to make progress"

    @pytest.mark.parametrize("order_name", ["reversed", "shuffled"])
    def test_out_of_order_answers_keep_parity(self, order_name):
        collection = make_collection(n_sets=80, seed=5)
        rng = random.Random(19)
        targets = [rng.randrange(collection.n_sets) for _ in range(14)]
        collection.clear_caches()
        seq = sequential(collection, targets)
        collection.clear_caches()
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        oracles = {}
        for i, target in enumerate(targets):
            registry.spawn(MostEvenSelector(), key=i)
            oracles[i] = SimulatedUser(collection, target_index=target)
        order_rng = random.Random(7)

        def order(keys, rounds):
            if order_name == "reversed":
                return list(reversed(keys))
            shuffled = list(keys)
            order_rng.shuffle(shuffled)
            return shuffled

        self.drive(registry, scheduler, oracles, answer_order=order)
        for i in range(len(targets)):
            assert registry.results[i].transcript == seq[i].transcript
            assert registry.results[i].candidates == seq[i].candidates

    def test_partial_answers_between_flushes(self):
        # Only half the pending sessions answer before the next flush —
        # the unanswered ones must be untouched by it.
        collection = make_collection(n_sets=60, seed=8)
        targets = [3, 11, 25, 40, 52, 9]
        collection.clear_caches()
        seq = sequential(collection, targets)
        collection.clear_caches()
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        oracles = {
            i: SimulatedUser(collection, target_index=t)
            for i, t in enumerate(targets)
        }
        for i in range(len(targets)):
            registry.spawn(MostEvenSelector(), key=i)
        rounds = 0
        while registry.n_active:
            for state in registry.needs_question():
                scheduler.submit(state)
            scheduler.flush()
            pending = registry.pending()
            # answer only every other session this round
            for j, (key, entity) in enumerate(sorted(pending.items())):
                if (j + rounds) % 2 == 0:
                    registry.answer(key, oracles[key](entity))
            rounds += 1
            assert rounds < 300
        for i in range(len(targets)):
            assert registry.results[i].transcript == seq[i].transcript

    def test_sessions_joining_mid_stream(self):
        collection = make_collection(n_sets=80, seed=4)
        rng = random.Random(23)
        targets = [rng.randrange(collection.n_sets) for _ in range(12)]
        collection.clear_caches()
        seq = sequential(collection, targets, InfoGainSelector)
        collection.clear_caches()
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        oracles = {}
        joined = 0

        def join_next():
            nonlocal joined
            i = joined
            registry.spawn(InfoGainSelector(), key=i)
            oracles[i] = SimulatedUser(collection, target_index=targets[i])
            joined += 1

        join_next()
        join_next()
        rounds = 0
        while registry.n_active or joined < len(targets):
            # two more users join every round, right between flushes
            for _ in range(2):
                if joined < len(targets):
                    join_next()
            for state in registry.needs_question():
                scheduler.submit(state)
            scheduler.flush()
            for key, entity in registry.pending().items():
                registry.answer(key, oracles[key](entity))
            rounds += 1
            assert rounds < 300
        for i in range(len(targets)):
            assert registry.results[i].transcript == seq[i].transcript

    def test_dont_know_answers_via_scheduler(self):
        collection = make_collection(n_sets=60, seed=5)
        rng = random.Random(31)
        targets = [rng.randrange(collection.n_sets) for _ in range(8)]
        oracles = {
            i: UnsureUser(collection, 0.3, target_index=t, seed=50 + i)
            for i, t in enumerate(targets)
        }
        collection.clear_caches()
        seq = []
        for i, t in enumerate(targets):
            session = DiscoverySession(collection, MostEvenSelector())
            seq.append(
                session.run(
                    UnsureUser(collection, 0.3, target_index=t, seed=50 + i)
                )
            )
        collection.clear_caches()
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        for i in range(len(targets)):
            registry.spawn(MostEvenSelector(), key=i)
        self.drive(registry, scheduler, oracles)
        for i in range(len(targets)):
            assert registry.results[i].transcript == seq[i].transcript


# --------------------------------------------------------------------- #
# Golden equivalence: lock-step tick() through the scheduler
# --------------------------------------------------------------------- #


class TestGoldenEquivalenceThroughScheduler:
    """The refactored engine is a thin scheduler client — and provably so.

    Byte-identical serialized transcripts (the PR 2-4 golden contract)
    through the new submit/flush path, plus a direct check that tick()
    really routes through ScanScheduler.flush.
    """

    @pytest.mark.parametrize(
        "factory", [MostEvenSelector, InfoGainSelector, lambda: KLPSelector(k=2)]
    )
    def test_engine_through_scheduler_matches_sequential_bytes(self, factory):
        collection = make_collection(n_sets=110, seed=13)
        rng = random.Random(29)
        targets = [rng.randrange(collection.n_sets) for _ in range(10)]
        collection.clear_caches()
        golden = serialize_results(
            [
                DiscoverySession(collection, factory()).run(
                    SimulatedUser(collection, target_index=t)
                )
                for t in targets
            ]
        )
        collection.clear_caches()
        engine = SessionEngine(collection)
        for i, t in enumerate(targets):
            engine.add(
                DiscoverySession(collection, factory()),
                oracle=SimulatedUser(collection, target_index=t),
                key=i,
            )
        results = engine.run()
        got = serialize_results([results[i] for i in range(len(targets))])
        assert got == golden

    def test_tick_routes_through_scheduler_flush(self, monkeypatch):
        collection = make_collection(n_sets=40)
        engine = SessionEngine(collection)
        assert isinstance(engine.scheduler, ScanScheduler)
        calls = {"flush": 0}
        original = ScanScheduler.flush

        def counting_flush(self):
            calls["flush"] += 1
            return original(self)

        monkeypatch.setattr(ScanScheduler, "flush", counting_flush)
        engine.spawn(
            MostEvenSelector(),
            oracle=SimulatedUser(collection, target_index=2),
        )
        engine.run()
        assert calls["flush"] == engine.stats.ticks > 0

    def test_engine_and_raw_scheduler_agree(self):
        # The same sessions served via SessionEngine.tick and via a
        # hand-driven registry+scheduler loop produce identical bytes.
        collection = make_collection(n_sets=70, seed=21)
        targets = [2, 9, 33, 41]
        collection.clear_caches()
        engine = SessionEngine(collection)
        for i, t in enumerate(targets):
            engine.add(
                DiscoverySession(collection, MostEvenSelector()),
                oracle=SimulatedUser(collection, target_index=t),
                key=i,
            )
        via_engine = engine.run()
        collection.clear_caches()
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry)
        oracles = {
            i: SimulatedUser(collection, target_index=t)
            for i, t in enumerate(targets)
        }
        for i in range(len(targets)):
            registry.spawn(MostEvenSelector(), key=i)
        rounds = 0
        while registry.n_active:
            for state in registry.needs_question():
                scheduler.submit(state)
            scheduler.flush()
            for key, entity in registry.pending().items():
                registry.answer(key, oracles[key](entity))
            rounds += 1
            assert rounds < 200
        assert serialize_results(
            [via_engine[i] for i in range(len(targets))]
        ) == serialize_results(
            [registry.results[i] for i in range(len(targets))]
        )


# --------------------------------------------------------------------- #
# Bounded scheduler queue (max_queue)
# --------------------------------------------------------------------- #


class TestBoundedQueue:
    def test_submit_sheds_at_max_queue(self):
        collection = make_collection(n_sets=40)
        registry = SessionRegistry(collection)
        scheduler = ScanScheduler(registry, max_queue=2)
        keys = [registry.spawn(MostEvenSelector()) for _ in range(3)]

        scheduler.submit(registry.state(keys[0]))
        scheduler.submit(registry.state(keys[1]))
        with pytest.raises(SchedulerSaturated):
            scheduler.submit(registry.state(keys[2]))
        assert scheduler.stats.shed_requests == 1
        assert scheduler.pending_requests == 2

        # Resubmitting an already-queued key is idempotent, never a shed.
        scheduler.submit(registry.state(keys[0]))
        assert scheduler.stats.shed_requests == 1
        assert scheduler.stats.queue_high_watermark == 2

        # A flush drains the queue; the shed key can then be admitted.
        scheduler.flush()
        assert scheduler.pending_requests == 0
        scheduler.submit(registry.state(keys[2]))
        assert scheduler.pending_requests == 1
        assert scheduler.stats.shed_requests == 1

"""Randomized cross-backend parity harness.

With five scan paths (big-int reference, numpy row pass, numpy set-major
CSR gather, the native fused C sweep, sharded merge) hand-written parity
cases no longer cover the input space.  This harness generates seeded random collections engineered
to hit the nasty corners — skewed set sizes, an empty set, singleton and
duplicate entities, masks crossing the 63/64/65-set word boundaries — and
asserts that every backend produces *bit-identical* results for every
batched statistic and for batched selection.

Every assertion message carries the generator seed; replay a failure with::

    pytest "tests/test_parity_fuzz.py::test_cross_backend_parity[SEED]"

The CSR and row-pass variants are forced by overriding the numpy kernel's
tuning (routing never changes results — that is exactly the property under
test), the sharded variants run both bases with a thread pool.
"""

from __future__ import annotations

import random

import pytest

from repro.core.collection import SetCollection
from repro.core.kernels import (
    HAS_NATIVE,
    HAS_NUMPY,
    KernelTuning,
    select_best_many,
)
from repro.core.selection import information_gain

N_SEEDS = 200

#: fuzz variants: (label, collection factory kwargs, tuning override)
#: tuning of 0.0 forces the set-major CSR gather everywhere, 1e18 forces
#: the row pass everywhere; None keeps the calibrated routing.
def _variants():
    variants = [("bigint-sharded", dict(backend="bigint", shards=3), None)]
    if HAS_NUMPY:
        variants += [
            ("numpy", dict(backend="numpy"), None),
            ("numpy-csr", dict(backend="numpy"), KernelTuning(member_cost=0.0)),
            (
                "numpy-rows",
                dict(backend="numpy"),
                KernelTuning(member_cost=1e18),
            ),
            ("numpy-sharded", dict(backend="numpy", shards=4), None),
        ]
    if HAS_NATIVE:
        # The full equality chain bigint == numpy == native == sharded-native:
        # calibrated routing, the forced C row sweep (the fused kernel must
        # agree even where routing would have picked the CSR gather), and
        # native sub-kernels under the sharded merge.
        variants += [
            ("native", dict(backend="native"), None),
            (
                "native-rows",
                dict(backend="native"),
                KernelTuning(member_cost=1e18),
            ),
            ("native-sharded", dict(backend="native", shards=4), None),
        ]
    return variants


def random_raw_sets(seed: int) -> list[list[int]]:
    """Seeded generator of adversarial collections.

    Mixes skewed set sizes (many small, few near-universe), occasionally an
    empty set, a singleton entity (present in exactly one set) and a
    duplicate entity (bit-for-bit the same membership as an existing one),
    and draws ``n_sets`` from word-boundary values 63/64/65 half the time.
    """
    rng = random.Random(seed)
    n_sets = rng.choice([rng.randint(2, 80), 63, 64, 65, rng.randint(2, 80)])
    universe = rng.randint(6, 48)
    sets: list[set[int]] = []
    seen: set[frozenset[int]] = set()
    if rng.random() < 0.25:
        sets.append(set())
        seen.add(frozenset())
    attempts = 0
    while len(sets) < n_sets and attempts < 40 * n_sets:
        attempts += 1
        if rng.random() < 0.2:  # a few near-universe sets
            size = rng.randint(max(1, universe // 2), universe)
        else:  # skew: mostly small sets
            size = rng.randint(1, max(1, universe // 6))
        fs = frozenset(rng.sample(range(universe), min(size, universe)))
        if fs in seen:
            continue
        seen.add(fs)
        sets.append(set(fs))
    # singleton entity: a fresh label appearing in exactly one set
    non_empty = [s for s in sets if s]
    if non_empty:
        rng.choice(non_empty).add(universe)
        # duplicate entity: a twin label co-occurring with an existing one
        twin_of = rng.randrange(universe)
        for s in sets:
            if twin_of in s:
                s.add(universe + 1 + twin_of)
    return [sorted(s) for s in sets]


def word_boundary_masks(rng: random.Random, n_sets: int, full: int) -> list[int]:
    """Sub-collection masks engineered around the 64-bit word boundaries."""
    masks = [full]
    for bit in (62, 63, 64, 65, n_sets - 1):
        if 0 < bit < n_sets:
            masks.append((1 << bit) | 1)  # two sets straddling a word
    masks.append(((1 << min(n_sets, 64)) - 1) & full)  # exactly word 0
    masks.append(full & ~((1 << min(n_sets, 64)) - 1))  # tail words only
    masks.append(full | (1 << (n_sets + 3)))  # stray bit above the matrix
    for _ in range(6):
        m = rng.getrandbits(n_sets) & full
        if m.bit_count() >= 2:
            masks.append(m)
    masks.append(1)  # single set: nothing can be informative
    return [m for m in masks if m]


def _as_list(seq) -> list:
    return [int(x) for x in seq]


def _build(raw, kwargs, tuning):
    coll = SetCollection(raw, **kwargs)
    if tuning is not None:
        kernel = coll._kernel
        kernel._tuning = tuning
        # pre-build the CSR mirror so the single-mask crossover guard
        # (CSR_MIN_MEMBERSHIP) cannot veto the forced set-major route
        kernel._ensure_set_rows()
    return coll


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_cross_backend_parity(seed):
    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    rng = random.Random(seed ^ 0x5EED)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    probe_eids = list(range(-2, ref.n_entities + 3))  # includes unknown ids

    ref_stats = [ref.informative_stats(m) for m in masks]
    ref_counts = [ref.positive_counts(m, probe_eids) for m in masks]
    ref_parts = [ref.partition_many(m, probe_eids) for m in masks]
    ref.clear_caches()
    ref_stacked = ref.informative_stats_many(masks)

    for label, kwargs, tuning in _variants():
        coll = _build(raw, kwargs, tuning)
        ctx = f"[parity-fuzz seed={seed} backend={label}]"
        assert (coll.n_sets, coll.n_entities) == (ref.n_sets, ref.n_entities)
        for m, stats, counts, parts in zip(
            masks, ref_stats, ref_counts, ref_parts
        ):
            got = coll.informative_stats(m)
            assert _as_list(got[0]) == _as_list(stats[0]), (
                f"{ctx} scan_informative eids diverged on mask {m:#x}"
            )
            assert _as_list(got[1]) == _as_list(stats[1]), (
                f"{ctx} scan_informative counts diverged on mask {m:#x}"
            )
            assert coll.positive_counts(m, probe_eids) == counts, (
                f"{ctx} positive_counts diverged on mask {m:#x}"
            )
            assert coll.partition_many(m, probe_eids) == parts, (
                f"{ctx} partition_many diverged on mask {m:#x}"
            )
        coll.clear_caches()
        for got, want in zip(coll.informative_stats_many(masks), ref_stacked):
            assert _as_list(got[0]) == _as_list(want[0]), (
                f"{ctx} scan_informative_many eids diverged"
            )
            assert _as_list(got[1]) == _as_list(want[1]), (
                f"{ctx} scan_informative_many counts diverged"
            )
        assert coll.positive_counts_many(
            masks, probe_eids
        ) == ref.positive_counts_many(masks, probe_eids), (
            f"{ctx} positive_counts_many diverged"
        )


@pytest.mark.parametrize("seed", range(0, N_SEEDS, 10))
def test_candidate_hints_and_selection_parity(seed):
    """Hinted stacked scans and batched selection agree across backends."""
    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    parent_eids, _ = ref.informative_stats(ref.full_mask)
    if not parent_eids:
        pytest.skip("degenerate collection: nothing informative at the root")
    children = [
        m
        for e in list(parent_eids)[:4]
        for m in ref.partition(ref.full_mask, int(e))
        if ref.count(m) >= 2
    ]
    ref.clear_caches()
    hints = [list(parent_eids)] * len(children)
    ref_hinted = ref.informative_stats_many(children, hints)
    groups = [
        (stats, ref.count(m))
        for stats, m in zip(ref_hinted, children)
        if len(stats[0])
    ]
    for primary in (None, lambda n, n1: -information_gain(n, n1)):
        ref_chosen = select_best_many(
            [g[0][0] for g in groups],
            [g[0][1] for g in groups],
            [g[1] for g in groups],
            primary,
        )
        for label, kwargs, tuning in _variants():
            coll = _build(raw, kwargs, tuning)
            ctx = f"[parity-fuzz seed={seed} backend={label}]"
            got = coll.informative_stats_many(children, hints)
            for g, want in zip(got, ref_hinted):
                assert _as_list(g[0]) == _as_list(want[0]), (
                    f"{ctx} hinted scan eids diverged"
                )
                assert _as_list(g[1]) == _as_list(want[1]), (
                    f"{ctx} hinted scan counts diverged"
                )
            vec_groups = [
                (stats, coll.count(m))
                for stats, m in zip(got, children)
                if len(stats[0])
            ]
            chosen = select_best_many(
                [g[0][0] for g in vec_groups],
                [g[0][1] for g in vec_groups],
                [g[1] for g in vec_groups],
                primary,
            )
            assert chosen == ref_chosen, (
                f"{ctx} select_best_many diverged (primary={primary})"
            )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_shard_executors_agree(executor):
    """All three worker-pool kinds produce the reference results."""
    raw = random_raw_sets(7)
    ref = SetCollection(raw, backend="bigint")
    coll = SetCollection(
        raw, backend="numpy", shards=3, shard_executor=executor
    )
    rng = random.Random(7)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    for m in masks:
        assert coll.informative_entities(m) == ref.informative_entities(m)
    coll._kernel.close()

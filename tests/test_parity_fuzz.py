"""Randomized cross-backend parity harness.

With five scan paths (big-int reference, numpy row pass, numpy set-major
CSR gather, the native fused C sweep, sharded merge) hand-written parity
cases no longer cover the input space.  This harness generates seeded random collections engineered
to hit the nasty corners — skewed set sizes, an empty set, singleton and
duplicate entities, masks crossing the 63/64/65-set word boundaries — and
asserts that every backend produces *bit-identical* results for every
batched statistic and for batched selection.

Every assertion message carries the generator seed; replay a failure with::

    pytest "tests/test_parity_fuzz.py::test_cross_backend_parity[SEED]"

The CSR and row-pass variants are forced by overriding the numpy kernel's
tuning (routing never changes results — that is exactly the property under
test), the sharded variants run both bases with a thread pool.
"""

from __future__ import annotations

import random

import pytest

from repro.core.collection import (
    DeltaBatch,
    DeltaError,
    DuplicateSetError,
    SetCollection,
)
from repro.core.kernels import (
    HAS_NATIVE,
    HAS_NUMPY,
    KernelTuning,
    select_best_many,
)
from repro.core.selection import InfoGainSelector, information_gain

N_SEEDS = 200

#: fuzz variants: (label, collection factory kwargs, tuning override)
#: tuning of 0.0 forces the set-major CSR gather everywhere, 1e18 forces
#: the row pass everywhere; None keeps the calibrated routing.
def _variants():
    variants = [("bigint-sharded", dict(backend="bigint", shards=3), None)]
    if HAS_NUMPY:
        variants += [
            ("numpy", dict(backend="numpy"), None),
            ("numpy-csr", dict(backend="numpy"), KernelTuning(member_cost=0.0)),
            (
                "numpy-rows",
                dict(backend="numpy"),
                KernelTuning(member_cost=1e18),
            ),
            ("numpy-sharded", dict(backend="numpy", shards=4), None),
        ]
    if HAS_NATIVE:
        # The full equality chain bigint == numpy == native == sharded-native:
        # calibrated routing, the forced C row sweep (the fused kernel must
        # agree even where routing would have picked the CSR gather), and
        # native sub-kernels under the sharded merge.
        variants += [
            ("native", dict(backend="native"), None),
            (
                "native-rows",
                dict(backend="native"),
                KernelTuning(member_cost=1e18),
            ),
            ("native-sharded", dict(backend="native", shards=4), None),
        ]
        from repro.core.kernels._native import ext as _ext

        if _ext.threaded_scan_available():
            # The in-C pthread fan-out, forced on by a floor-zero
            # crossover so even these tiny matrices take the banded path.
            variants += [
                (
                    "native-threaded",
                    dict(backend="native", shards=4, shard_executor="native"),
                    KernelTuning(thread_min_cells=1),
                ),
            ]
    return variants


def random_raw_sets(seed: int) -> list[list[int]]:
    """Seeded generator of adversarial collections.

    Mixes skewed set sizes (many small, few near-universe), occasionally an
    empty set, a singleton entity (present in exactly one set) and a
    duplicate entity (bit-for-bit the same membership as an existing one),
    and draws ``n_sets`` from word-boundary values 63/64/65 half the time.
    """
    rng = random.Random(seed)
    n_sets = rng.choice([rng.randint(2, 80), 63, 64, 65, rng.randint(2, 80)])
    universe = rng.randint(6, 48)
    sets: list[set[int]] = []
    seen: set[frozenset[int]] = set()
    if rng.random() < 0.25:
        sets.append(set())
        seen.add(frozenset())
    attempts = 0
    while len(sets) < n_sets and attempts < 40 * n_sets:
        attempts += 1
        if rng.random() < 0.2:  # a few near-universe sets
            size = rng.randint(max(1, universe // 2), universe)
        else:  # skew: mostly small sets
            size = rng.randint(1, max(1, universe // 6))
        fs = frozenset(rng.sample(range(universe), min(size, universe)))
        if fs in seen:
            continue
        seen.add(fs)
        sets.append(set(fs))
    # singleton entity: a fresh label appearing in exactly one set
    non_empty = [s for s in sets if s]
    if non_empty:
        rng.choice(non_empty).add(universe)
        # duplicate entity: a twin label co-occurring with an existing one
        twin_of = rng.randrange(universe)
        for s in sets:
            if twin_of in s:
                s.add(universe + 1 + twin_of)
    return [sorted(s) for s in sets]


def word_boundary_masks(rng: random.Random, n_sets: int, full: int) -> list[int]:
    """Sub-collection masks engineered around the 64-bit word boundaries."""
    masks = [full]
    for bit in (62, 63, 64, 65, n_sets - 1):
        if 0 < bit < n_sets:
            masks.append((1 << bit) | 1)  # two sets straddling a word
    masks.append(((1 << min(n_sets, 64)) - 1) & full)  # exactly word 0
    masks.append(full & ~((1 << min(n_sets, 64)) - 1))  # tail words only
    masks.append(full | (1 << (n_sets + 3)))  # stray bit above the matrix
    for _ in range(6):
        m = rng.getrandbits(n_sets) & full
        if m.bit_count() >= 2:
            masks.append(m)
    masks.append(1)  # single set: nothing can be informative
    return [m for m in masks if m]


def _as_list(seq) -> list:
    return [int(x) for x in seq]


def _build(raw, kwargs, tuning):
    coll = SetCollection(raw, **kwargs)
    if tuning is not None:
        kernel = coll._kernel
        # The "native" executor delegates to one full-width inner kernel;
        # the override must land where the routing decisions are made.
        kernel = getattr(kernel, "_inner", None) or kernel
        kernel._tuning = tuning
        # pre-build the CSR mirror so the single-mask crossover guard
        # (CSR_MIN_MEMBERSHIP) cannot veto the forced set-major route
        kernel._ensure_set_rows()
    return coll


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_cross_backend_parity(seed):
    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    rng = random.Random(seed ^ 0x5EED)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    probe_eids = list(range(-2, ref.n_entities + 3))  # includes unknown ids

    ref_stats = [ref.informative_stats(m) for m in masks]
    ref_counts = [ref.positive_counts(m, probe_eids) for m in masks]
    ref_parts = [ref.partition_many(m, probe_eids) for m in masks]
    ref.clear_caches()
    ref_stacked = ref.informative_stats_many(masks)

    for label, kwargs, tuning in _variants():
        coll = _build(raw, kwargs, tuning)
        ctx = f"[parity-fuzz seed={seed} backend={label}]"
        assert (coll.n_sets, coll.n_entities) == (ref.n_sets, ref.n_entities)
        for m, stats, counts, parts in zip(
            masks, ref_stats, ref_counts, ref_parts
        ):
            got = coll.informative_stats(m)
            assert _as_list(got[0]) == _as_list(stats[0]), (
                f"{ctx} scan_informative eids diverged on mask {m:#x}"
            )
            assert _as_list(got[1]) == _as_list(stats[1]), (
                f"{ctx} scan_informative counts diverged on mask {m:#x}"
            )
            assert coll.positive_counts(m, probe_eids) == counts, (
                f"{ctx} positive_counts diverged on mask {m:#x}"
            )
            assert coll.partition_many(m, probe_eids) == parts, (
                f"{ctx} partition_many diverged on mask {m:#x}"
            )
        coll.clear_caches()
        for got, want in zip(coll.informative_stats_many(masks), ref_stacked):
            assert _as_list(got[0]) == _as_list(want[0]), (
                f"{ctx} scan_informative_many eids diverged"
            )
            assert _as_list(got[1]) == _as_list(want[1]), (
                f"{ctx} scan_informative_many counts diverged"
            )
        assert coll.positive_counts_many(
            masks, probe_eids
        ) == ref.positive_counts_many(masks, probe_eids), (
            f"{ctx} positive_counts_many diverged"
        )


@pytest.mark.parametrize("seed", range(0, N_SEEDS, 10))
def test_candidate_hints_and_selection_parity(seed):
    """Hinted stacked scans and batched selection agree across backends."""
    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    parent_eids, _ = ref.informative_stats(ref.full_mask)
    if not parent_eids:
        pytest.skip("degenerate collection: nothing informative at the root")
    children = [
        m
        for e in list(parent_eids)[:4]
        for m in ref.partition(ref.full_mask, int(e))
        if ref.count(m) >= 2
    ]
    ref.clear_caches()
    hints = [list(parent_eids)] * len(children)
    ref_hinted = ref.informative_stats_many(children, hints)
    groups = [
        (stats, ref.count(m))
        for stats, m in zip(ref_hinted, children)
        if len(stats[0])
    ]
    for primary in (None, lambda n, n1: -information_gain(n, n1)):
        ref_chosen = select_best_many(
            [g[0][0] for g in groups],
            [g[0][1] for g in groups],
            [g[1] for g in groups],
            primary,
        )
        for label, kwargs, tuning in _variants():
            coll = _build(raw, kwargs, tuning)
            ctx = f"[parity-fuzz seed={seed} backend={label}]"
            got = coll.informative_stats_many(children, hints)
            for g, want in zip(got, ref_hinted):
                assert _as_list(g[0]) == _as_list(want[0]), (
                    f"{ctx} hinted scan eids diverged"
                )
                assert _as_list(g[1]) == _as_list(want[1]), (
                    f"{ctx} hinted scan counts diverged"
                )
            vec_groups = [
                (stats, coll.count(m))
                for stats, m in zip(got, children)
                if len(stats[0])
            ]
            chosen = select_best_many(
                [g[0][0] for g in vec_groups],
                [g[0][1] for g in vec_groups],
                [g[1] for g in vec_groups],
                primary,
            )
            assert chosen == ref_chosen, (
                f"{ctx} select_best_many diverged (primary={primary})"
            )


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
@pytest.mark.parametrize(
    "executor", ["serial", "thread", "process", "shm", "native"]
)
def test_shard_executors_agree(executor):
    """Every worker-pool kind produces the reference results."""
    if executor == "native":
        if not HAS_NATIVE:
            pytest.skip("native extension not built")
        from repro.core.kernels._native import ext as _ext

        if not _ext.threaded_scan_available():
            pytest.skip("this build lacks the pthread scan pool")
    if executor == "shm":
        from repro.core.kernels import shm as _shm
        from repro.core.kernels.sharded import _fork_available

        if not (_shm.HAS_SHM and _fork_available()):
            pytest.skip("shm executor needs numpy, shared_memory and fork")
    base = "native" if executor == "native" else "numpy"
    raw = random_raw_sets(7)
    ref = SetCollection(raw, backend="bigint")
    coll = SetCollection(
        raw, backend=base, shards=3, shard_executor=executor
    )
    rng = random.Random(7)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    for m in masks:
        assert coll.informative_entities(m) == ref.informative_entities(m)
    coll._kernel.close()


@pytest.mark.skipif(not HAS_NATIVE, reason="native extension not built")
@pytest.mark.parametrize("seed", range(0, N_SEEDS, 25))
def test_simd_tier_parity(seed):
    """Every SIMD tier the build/CPU carries is bit-identical to bigint.

    The pinned tier is process-global, so the loop pins each tier in turn
    and replays the same masks over a fresh native collection (plain and
    in-C-threaded); the auto tier is restored afterwards.  Replay a
    failure with the seed in the test id.
    """
    from repro.core.kernels._native import ext as _ext

    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    rng = random.Random(seed ^ 0x51D)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    ref_stats = [ref.informative_stats(m) for m in masks]
    ref.clear_caches()
    ref_stacked = ref.informative_stats_many(masks)
    auto = _ext.simd_level()
    variants = [("native", dict(backend="native"), None)]
    if _ext.threaded_scan_available():
        variants.append(
            (
                "native-threaded",
                dict(backend="native", shards=4, shard_executor="native"),
                KernelTuning(thread_min_cells=1),
            )
        )
    try:
        for tier in _ext.available_simd_levels():
            _ext.set_simd_level(tier)
            for label, kwargs, tuning in variants:
                coll = _build(raw, kwargs, tuning)
                ctx = f"[simd-fuzz seed={seed} tier={tier} backend={label}]"
                for m, want in zip(masks, ref_stats):
                    got = coll.informative_stats(m)
                    assert _as_list(got[0]) == _as_list(want[0]), (
                        f"{ctx} eids diverged on mask {m:#x}"
                    )
                    assert _as_list(got[1]) == _as_list(want[1]), (
                        f"{ctx} counts diverged on mask {m:#x}"
                    )
                coll.clear_caches()
                for got, want in zip(
                    coll.informative_stats_many(masks), ref_stacked
                ):
                    assert _as_list(got[0]) == _as_list(want[0]), (
                        f"{ctx} stacked eids diverged"
                    )
                    assert _as_list(got[1]) == _as_list(want[1]), (
                        f"{ctx} stacked counts diverged"
                    )
    finally:
        _ext.set_simd_level(auto)


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
@pytest.mark.parametrize("seed", range(0, N_SEEDS, 25))
def test_shm_executor_fuzz(seed):
    """Seeded adversarial collections through the shm worker processes.

    A bounded seed subset (worker spawns are milliseconds, not
    microseconds); the wide sweep runs in-process via the variants above.
    Replay a failure with the seed in the test id.
    """
    from repro.core.kernels import shm as _shm
    from repro.core.kernels.sharded import _fork_available

    if not (_shm.HAS_SHM and _fork_available()):
        pytest.skip("shm executor needs numpy, shared_memory and fork")
    raw = random_raw_sets(seed)
    ref = SetCollection(raw, backend="bigint")
    rng = random.Random(seed ^ 0x5311)
    masks = word_boundary_masks(rng, ref.n_sets, ref.full_mask)
    probe_eids = list(range(-2, ref.n_entities + 3))
    bases = ["numpy"] + (["native"] if HAS_NATIVE else [])
    for base in bases:
        coll = SetCollection(
            raw, backend=base, shards=3, shard_executor="shm"
        )
        ctx = f"[shm-fuzz seed={seed} base={base}]"
        try:
            for m in masks:
                got = coll.informative_stats(m)
                want = ref.informative_stats(m)
                assert _as_list(got[0]) == _as_list(want[0]), (
                    f"{ctx} eids diverged on mask {m:#x}"
                )
                assert _as_list(got[1]) == _as_list(want[1]), (
                    f"{ctx} counts diverged on mask {m:#x}"
                )
                assert coll.positive_counts(
                    m, probe_eids
                ) == ref.positive_counts(m, probe_eids), (
                    f"{ctx} positive_counts diverged on mask {m:#x}"
                )
            coll.clear_caches()
            ref.clear_caches()
            for got, want in zip(
                coll.informative_stats_many(masks),
                ref.informative_stats_many(masks),
            ):
                assert _as_list(got[0]) == _as_list(want[0]), (
                    f"{ctx} stacked eids diverged"
                )
                assert _as_list(got[1]) == _as_list(want[1]), (
                    f"{ctx} stacked counts diverged"
                )
        finally:
            coll._kernel.close()


# --------------------------------------------------------------------- #
# Delta fuzz: epoch chains vs from-scratch rebuilds
# --------------------------------------------------------------------- #

N_DELTA_SEEDS = 120
DELTA_STEPS = 4


def _delta_variants():
    """Backend variants every delta chain replays over (all four families)."""
    variants = [
        ("bigint", dict(backend="bigint")),
        ("bigint-sharded", dict(backend="bigint", shards=3)),
    ]
    if HAS_NUMPY:
        variants += [
            ("numpy", dict(backend="numpy")),
            ("numpy-sharded", dict(backend="numpy", shards=4)),
        ]
    if HAS_NATIVE:
        variants += [
            ("native", dict(backend="native")),
            ("native-sharded", dict(backend="native", shards=4)),
        ]
    return variants


def random_delta_batch(rng: random.Random, coll: SetCollection, tag: str) -> DeltaBatch:
    """One seeded random mutation batch against the current collection.

    Mixes removals, additions (sometimes reusing a just-removed name — the
    atomic-replacement path), membership edits, and occasionally fresh
    entity labels (universe growth).  Drawn only from deterministic
    orderings so the same seed replays the same chain.
    """
    batch = DeltaBatch()
    names = [coll.name_of(i) for i in range(coll.n_sets)]
    labels = [coll.universe.label(e) for e in range(coll.n_entities)]
    removed: list[str] = []
    if coll.n_sets > 3 and rng.random() < 0.7:
        removed = rng.sample(names, rng.randint(1, min(3, coll.n_sets - 2)))
        batch.remove_sets(removed)
    added_names: set[str] = set()
    for j in range(rng.randint(0, 3)):
        size = rng.randint(1, max(2, len(labels) // 3))
        members = set(rng.sample(labels, min(size, len(labels))))
        if rng.random() < 0.4:
            members.add(f"e{tag}.{j}")  # a fresh entity label
        if removed and rng.random() < 0.3:
            name = removed[0]  # replace the removed slot atomically
        else:
            name = f"D{tag}.{j}"
        if name in added_names:
            continue
        added_names.add(name)
        batch.add_sets({name: sorted(members, key=repr)})
    survivors = [n for n in names if n not in removed]
    n_updates = min(len(survivors), rng.randint(0, 2))
    for name in rng.sample(survivors, n_updates):
        current = [
            coll.universe.label(e) for e in sorted(coll._sets[coll.index_of(name)])
        ]
        drop = rng.sample(current, min(len(current), rng.randint(0, 2)))
        pool = [x for x in labels if x not in set(current)]
        gain = rng.sample(pool, min(len(pool), rng.randint(0, 2)))
        if rng.random() < 0.2:
            gain = list(gain) + [f"u{tag}.x"]
        if drop or gain:
            batch.update_membership(name, add=gain, remove=drop)
    return batch


def _rebuild(coll: SetCollection, backend_kwargs: dict) -> SetCollection:
    """From-scratch rebuild of ``coll``'s exact content on a shared universe.

    Interning into the *same* universe keeps entity ids identical, which
    is what makes stats (and packed matrices) directly comparable.
    """
    return SetCollection(
        [[coll.universe.label(e) for e in sorted(coll._sets[i])]
         for i in range(coll.n_sets)],
        names=list(coll.names),
        universe=coll.universe,
        **backend_kwargs,
    )


def _assert_stats_equal(coll, ref, masks, ctx):
    for m in masks:
        got, want = coll.informative_stats(m), ref.informative_stats(m)
        assert _as_list(got[0]) == _as_list(want[0]), (
            f"{ctx} informative eids diverged on mask {m:#x}"
        )
        assert _as_list(got[1]) == _as_list(want[1]), (
            f"{ctx} informative counts diverged on mask {m:#x}"
        )
    probe = list(range(-1, ref.n_entities + 2))
    for m in masks[:4]:
        assert coll.positive_counts(m, probe) == ref.positive_counts(m, probe), (
            f"{ctx} positive_counts diverged on mask {m:#x}"
        )


@pytest.mark.parametrize("seed", range(N_DELTA_SEEDS))
def test_delta_chain_matches_rebuild(seed):
    """Chained ``apply_delta`` is indistinguishable from a fresh build.

    One seeded mutation chain replays over every backend family; after
    each step the evolved collection must match a from-scratch rebuild of
    the same content — names, members, informative stats, counts — and
    the vectorized backends must match the rebuilt packed bit-matrix
    *byte for byte*.
    """
    raw = random_raw_sets(seed)
    rng = random.Random(seed ^ 0xDE17A)
    evolved = {
        label: SetCollection(raw, **kwargs)
        for label, kwargs in _delta_variants()
    }
    kwargs_of = dict(_delta_variants())
    driver = evolved["bigint"]
    for step in range(DELTA_STEPS):
        batch = random_delta_batch(rng, driver, f"{seed}.{step}")
        outcomes = {}
        for label, coll in evolved.items():
            try:
                outcomes[label] = coll.apply_delta(batch)
            except (DeltaError, DuplicateSetError) as exc:
                outcomes[label] = type(exc).__name__
        kinds = {repr(o) if isinstance(o, str) else "ok" for o in outcomes.values()}
        assert len(kinds) == 1, (
            f"[delta-fuzz seed={seed} step={step}] backends disagreed on "
            f"whether the batch applies: {outcomes}"
        )
        if isinstance(outcomes["bigint"], str):
            continue  # invalid batch: atomicity keeps every epoch unchanged
        evolved = outcomes
        driver = evolved["bigint"]
    # Epoch bookkeeping: every applied non-empty batch bumped by one.
    applied = driver.epoch
    assert 0 <= applied <= DELTA_STEPS
    mask_rng = random.Random(seed ^ 0x0FF5E7)
    masks = word_boundary_masks(mask_rng, driver.n_sets, driver.full_mask)
    for label, coll in evolved.items():
        ctx = f"[delta-fuzz seed={seed} backend={label}]"
        rebuilt = _rebuild(driver, kwargs_of[label])
        assert coll.epoch == applied, f"{ctx} epoch drifted"
        assert coll.names == rebuilt.names, f"{ctx} names diverged"
        assert [coll._sets[i] for i in range(coll.n_sets)] == [
            rebuilt._sets[i] for i in range(rebuilt.n_sets)
        ], f"{ctx} set contents diverged"
        assert coll._entity_masks == rebuilt._entity_masks, (
            f"{ctx} entity masks diverged"
        )
        _assert_stats_equal(coll, rebuilt, masks, ctx)
        if label in ("numpy", "native"):
            assert (
                coll._kernel._matrix.tobytes()
                == rebuilt._kernel._matrix.tobytes()
            ), f"{ctx} packed bit-matrix diverged from the rebuild"


@pytest.mark.parametrize("seed", range(0, N_DELTA_SEEDS, 10))
def test_delta_chain_golden_transcripts(seed):
    """Discovery transcripts on an evolved epoch equal a rebuild's.

    The end-to-end form of the rebuild equivalence: running the same
    sessions (selector, target, initial examples) over the delta-evolved
    collection and over its from-scratch rebuild must produce identical
    transcripts, question for question.
    """
    from repro.core.discovery import DiscoverySession
    from repro.oracle.user import SimulatedUser

    raw = random_raw_sets(seed)
    for label, kwargs in _delta_variants():
        if label not in ("bigint", "numpy", "native"):
            continue
        # Re-seeded per backend so every family replays the same chain.
        rng = random.Random(seed ^ 0x90A1)
        evolved = SetCollection(raw, **kwargs)
        for step in range(DELTA_STEPS):
            batch = random_delta_batch(rng, evolved, f"{seed}.{step}")
            try:
                evolved = evolved.apply_delta(batch)
            except (DeltaError, DuplicateSetError):
                continue
        rebuilt = _rebuild(evolved, kwargs)
        for target in range(0, evolved.n_sets, max(1, evolved.n_sets // 3)):
            runs = []
            for c in (evolved, rebuilt):
                session = DiscoverySession(c, InfoGainSelector())
                result = session.run(SimulatedUser(c, target_index=target))
                runs.append(result)
            a, b = runs
            assert [
                (i.entity, i.answer, i.candidates_before, i.candidates_after)
                for i in a.transcript
            ] == [
                (i.entity, i.answer, i.candidates_before, i.candidates_after)
                for i in b.transcript
            ], f"[delta-fuzz seed={seed} backend={label}] transcript diverged"
            assert a.resolved == b.resolved and a.candidates == b.candidates

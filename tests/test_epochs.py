"""Epoch-versioned serving: pinning, grouping, deltas end to end.

The core/kernel side of ``apply_delta`` is fuzzed in
``tests/test_parity_fuzz.py``; this module holds the *serving* contract
of the epoch model (``docs/collections.md``):

* the :class:`SessionRegistry` pins every session to the collection it
  started on, tracks live epochs, and validates ``advance_collection``;
* sessions started before a delta finish with transcripts byte-identical
  to a delta-free run on their pinned epoch — over the lock-step engine,
  the asyncio service and the real HTTP edge;
* old epochs are garbage-collectable the moment their last session
  finishes (``live_epochs`` drops them, per-epoch cache refs drain);
* ``POST /admin/delta`` is admin-token-gated and bumps the served epoch;
* the TTL sweep expires abandoned HTTP sessions with a distinct 404
  ``session_expired`` and a ``sessions_expired_total`` metric.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.collection import DeltaBatch, SetCollection
from repro.core.discovery import DiscoverySession
from repro.core.selection import MostEvenSelector
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser
from repro.serve import (
    AsyncDiscoveryService,
    DiscoveryApp,
    EmbeddedServer,
    SessionEngine,
    SessionRegistry,
)
from repro.serve.client import (
    AdminClient,
    HttpConnection,
    HttpSessionClient,
)


def make_collection(n_sets: int = 40, seed: int = 11) -> SetCollection:
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets, size_lo=8, size_hi=14, overlap=0.8, seed=seed
        ),
        backend="bigint",
    )


def sample_delta(coll: SetCollection) -> DeltaBatch:
    """A batch that visibly changes the collection: add, remove, update."""
    labels = [coll.universe.label(e) for e in range(min(coll.n_entities, 9))]
    return (
        DeltaBatch()
        .add_sets({"delta-a": labels[:5], "delta-b": labels[3:9]})
        .remove_sets([coll.name_of(coll.n_sets - 1)])
        .update_membership(coll.name_of(0), add=[labels[-1]])
    )


def transcript_of(result) -> list:
    return [
        (i.entity, i.answer, i.candidates_before, i.candidates_after)
        for i in result.transcript
    ]


def sequential_golden(collection, target) -> list:
    session = DiscoverySession(collection, MostEvenSelector())
    result = session.run(SimulatedUser(collection, target_index=target))
    return transcript_of(result)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


# --------------------------------------------------------------------- #
# Registry: pinning, advance validation, live epochs
# --------------------------------------------------------------------- #


class TestRegistryEpochs:
    def test_advance_requires_same_universe_and_later_epoch(self):
        coll = make_collection()
        registry = SessionRegistry(coll)
        stranger = make_collection(seed=99)
        with pytest.raises(ValueError, match="universe"):
            registry.advance_collection(stranger)
        # Same universe but same (zero) epoch: a rebuild is not an advance.
        rebuilt = SetCollection(
            [
                [coll.universe.label(e) for e in sorted(coll._sets[i])]
                for i in range(coll.n_sets)
            ],
            universe=coll.universe,
        )
        with pytest.raises(ValueError, match="epoch"):
            registry.advance_collection(rebuilt)
        newer = coll.apply_delta(sample_delta(coll))
        registry.advance_collection(newer)
        assert registry.collection is newer
        # Idempotent on the same object, still rejecting stale epochs.
        registry.advance_collection(newer)
        with pytest.raises(ValueError, match="epoch"):
            registry.advance_collection(coll)

    def test_sessions_pin_their_spawn_epoch(self):
        coll = make_collection()
        registry = SessionRegistry(coll)
        old_key = registry.spawn(MostEvenSelector())
        newer = coll.apply_delta(sample_delta(coll))
        registry.advance_collection(newer)
        new_key = registry.spawn(MostEvenSelector())
        assert registry.session(old_key).collection is coll
        assert registry.session(new_key).collection is newer
        assert registry.live_epochs() == {coll.epoch: 1, newer.epoch: 1}

    def test_live_epochs_drop_when_last_session_leaves(self):
        coll = make_collection()
        registry = SessionRegistry(coll)
        key = registry.spawn(MostEvenSelector())
        newer = coll.apply_delta(sample_delta(coll))
        registry.advance_collection(newer)
        assert coll.epoch in registry.live_epochs()
        assert registry.discard(key)
        # The old epoch is gone; the current one always reports.
        assert registry.live_epochs() == {newer.epoch: 0}
        assert not any(
            epoch == coll.epoch for epoch, _ in registry._mask_refs
        )


# --------------------------------------------------------------------- #
# Engine: lock-step sessions across a mid-run delta
# --------------------------------------------------------------------- #


class TestEngineEpochs:
    def test_pinned_sessions_finish_with_golden_transcripts(self):
        coll = make_collection()
        engine = SessionEngine(coll)
        old_targets = {f"old-{t}": t for t in (3, 11, 24)}
        oracles = {}
        for key, target in old_targets.items():
            engine.spawn(MostEvenSelector(), key=key)
            oracles[key] = SimulatedUser(coll, target_index=target)

        # A couple of lock-step rounds on epoch 0, then mutate mid-run.
        for _ in range(2):
            for key, entity in engine.tick().items():
                engine.answer(key, oracles[key](entity))
        newer = engine.apply_delta(sample_delta(coll))
        assert newer.epoch == 1 and engine.collection is newer

        new_targets = {f"new-{t}": t for t in (0, engine.collection.n_sets - 1)}
        for key, target in new_targets.items():
            engine.spawn(MostEvenSelector(), key=key)
            oracles[key] = SimulatedUser(newer, target_index=target)

        while engine.n_active:
            pending = engine.tick()
            if not pending:
                pending = engine.pending()
            for key, entity in pending.items():
                engine.answer(key, oracles[key](entity))

        for key, target in old_targets.items():
            assert transcript_of(engine.results[key]) == sequential_golden(
                coll, target
            ), f"pinned session {key} diverged from its epoch-0 golden"
        for key, target in new_targets.items():
            assert transcript_of(engine.results[key]) == sequential_golden(
                newer, target
            ), f"post-delta session {key} diverged from its epoch-1 golden"

    def test_empty_delta_keeps_epoch(self):
        engine = SessionEngine(make_collection())
        before = engine.collection
        assert engine.apply_delta(DeltaBatch()) is before
        assert engine.collection is before


# --------------------------------------------------------------------- #
# Async service: apply_delta under concurrent sessions + epoch GC
# --------------------------------------------------------------------- #


class TestAsyncServiceEpochs:
    def test_concurrent_sessions_span_a_delta(self):
        coll = make_collection()
        old_targets = [2, 9, 31]
        transcripts: dict[str, list] = {}

        async def drive(service, key, oracle):
            while (entity := await service.ask(key)) is not None:
                service.answer(key, oracle(entity))
            result = await service.result(key)
            transcripts[key] = transcript_of(result)

        async def scenario():
            async with AsyncDiscoveryService(
                coll, flush_after_ms=1.0
            ) as service:
                first = []
                for t in old_targets:
                    key = f"old-{t}"
                    service.spawn(MostEvenSelector(), key=key)
                    first.append(
                        asyncio.create_task(
                            drive(
                                service,
                                key,
                                SimulatedUser(coll, target_index=t),
                            )
                        )
                    )
                # Let the first flush hand out questions, then mutate.
                await asyncio.sleep(0.02)
                newer = await service.apply_delta(sample_delta(coll))
                assert newer.epoch == 1
                assert service.collection is newer
                assert service.deltas_applied == 1
                # Empty batches are a no-op, not an epoch bump.
                assert (await service.apply_delta(DeltaBatch())) is newer
                assert service.deltas_applied == 1
                second = []
                for t in (0, 5):
                    service.spawn(MostEvenSelector(), key=f"new-{t}")
                    second.append(
                        asyncio.create_task(
                            drive(
                                service,
                                f"new-{t}",
                                SimulatedUser(newer, target_index=t),
                            )
                        )
                    )
                await asyncio.gather(*first, *second)
                # Every pinned session gone: only epoch 1 stays live.
                assert service.registry.live_epochs() == {1: 0}
                return newer

        newer = run(scenario())
        for t in old_targets:
            assert transcripts[f"old-{t}"] == sequential_golden(coll, t), (
                f"pinned session old-{t} diverged across the delta"
            )
        for t in (0, 5):
            assert transcripts[f"new-{t}"] == sequential_golden(newer, t)

    def test_expire_refuses_live_sessions(self):
        coll = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                coll, flush_after_ms=1.0
            ) as service:
                key = service.spawn(MostEvenSelector())
                entity = await service.ask(key)
                assert entity is not None
                # An un-flushed reply is a sign of life: refuse expiry.
                service.answer(key, True)
                assert not await service.expire(key)
                entity = await service.ask(key)
                assert entity is not None
                # Delivered question, no waiters, no queued work: reap it.
                assert await service.expire(key)
                assert not await service.expire(key)  # already gone
                with pytest.raises(KeyError):
                    service.answer(key, True)

        run(scenario())


# --------------------------------------------------------------------- #
# HTTP edge: /admin/delta, epoch metrics, TTL expiry
# --------------------------------------------------------------------- #


async def _serve(collection, **app_kwargs):
    service = AsyncDiscoveryService(collection, flush_after_ms=1.0)
    await service.__aenter__()
    app = DiscoveryApp(service, **app_kwargs)
    server = EmbeddedServer(app, port=0)
    await server.start()
    return service, app, server


class TestHttpEpochs:
    def test_admin_delta_auth_and_epoch_bump(self):
        coll = make_collection()

        async def scenario():
            service, app, server = await _serve(coll, admin_token="s3cret")
            try:
                async with AdminClient(
                    server.host, server.port, "s3cret"
                ) as admin:
                    # Wrong/missing tokens never pass, session tokens
                    # neither (there are none yet anyway).
                    status, body = await admin.conn.request(
                        "POST", "/admin/delta", {}
                    )
                    assert (status, body["error"]) == (401, "missing-token")
                    status, body = await admin.conn.request(
                        "POST", "/admin/delta", {}, token="wrong"
                    )
                    assert (status, body["error"]) == (403, "wrong-token")
                    # Malformed and inapplicable deltas are clean 400s.
                    status, body = await admin.conn.request(
                        "POST", "/admin/delta", {"add": 3}, token="s3cret"
                    )
                    assert (status, body["error"]) == (400, "bad-delta")
                    status, body = await admin.conn.request(
                        "POST",
                        "/admin/delta",
                        {"remove": ["no-such-set"]},
                        token="s3cret",
                    )
                    assert (status, body["error"]) == (400, "bad-delta")

                    info = await admin.apply_delta(
                        add={"delta-a": [coll.universe.label(0)]},
                        remove=[coll.name_of(coll.n_sets - 1)],
                    )
                    assert info["epoch"] == 1 and info["applied"]
                    # One add, one remove: the set count is unchanged.
                    assert info["n_sets"] == coll.n_sets

                    status, body = await admin.conn.request(
                        "GET", "/healthz"
                    )
                    assert body["epoch"] == 1
                    status, metrics = await admin.conn.request(
                        "GET", "/metrics"
                    )
                    assert "repro_collection_epoch 1" in metrics
                    assert "repro_deltas_applied_total 1" in metrics
            finally:
                await server.aclose()
                await service.aclose()

        run(scenario())

    def test_admin_disabled_without_token(self):
        async def scenario():
            service, app, server = await _serve(make_collection())
            try:
                async with AdminClient(
                    server.host, server.port, "anything"
                ) as admin:
                    status, body = await admin.conn.request(
                        "POST", "/admin/delta", {}, token="anything"
                    )
                    assert (status, body["error"]) == (403, "admin-disabled")
            finally:
                await server.aclose()
                await service.aclose()

        run(scenario())

    def test_inflight_http_session_survives_delta_with_golden(self):
        coll = make_collection()
        target = 13
        oracle = SimulatedUser(coll, target_index=target)

        async def scenario():
            service, app, server = await _serve(coll, admin_token="t0k")
            try:
                async with HttpSessionClient(
                    server.host, server.port
                ) as client:
                    await client.create(selector="most-even")
                    first = await client.next_question()
                    assert first is not None
                    async with AdminClient(
                        server.host, server.port, "t0k"
                    ) as admin:
                        info = await admin.apply_delta(
                            add={"delta-a": [coll.universe.label(1)]}
                        )
                        assert info["epoch"] == 1
                    await client.send_answer(oracle(first))
                    while (e := await client.next_question()) is not None:
                        await client.send_answer(oracle(e))
                    payload = await client.result()
                return payload
            finally:
                await server.aclose()
                await service.aclose()

        payload = run(scenario())
        golden = sequential_golden(coll, target)
        got = [
            (
                i["entity"],
                i["answer"],
                i["candidates_before"],
                i["candidates_after"],
            )
            for i in payload["transcript"]
        ]
        assert got == golden, "HTTP session did not stay pinned to epoch 0"

    def test_ttl_sweep_expires_abandoned_sessions(self):
        coll = make_collection()

        async def scenario():
            service, app, server = await _serve(coll, session_ttl_s=0.3)
            try:
                async with HttpSessionClient(
                    server.host, server.port
                ) as abandoned, HttpSessionClient(
                    server.host, server.port
                ) as live:
                    await abandoned.create(selector="most-even")
                    await live.create(selector="most-even")
                    # The abandoned session takes one question and walks
                    # away mid-interaction-free: expirable once idle.
                    assert await abandoned.next_question() is not None
                    # Keep the live session touched inside its TTL while
                    # the abandoned one ages past it.
                    await asyncio.sleep(0.2)
                    assert await live.next_question() is not None
                    await asyncio.sleep(0.2)
                    # Any request triggers the lazy sweep.
                    assert await live.next_question() is not None
                    status, body = await live.conn.request(
                        "GET",
                        f"/sessions/{abandoned.session}/question",
                        token=abandoned.token,
                    )
                    assert status == 404
                    assert body["error"] == "session_expired"
                    # Unknown ids still answer unknown-session.
                    status, body = await live.conn.request(
                        "GET",
                        "/sessions/nope/question",
                        token=abandoned.token,
                    )
                    assert body["error"] == "unknown-session"
                    # The live session (pending waiter-free but touched
                    # recently) is untouched.
                    assert live.session in app._sessions
                    assert abandoned.session not in app._sessions
                    status, metrics = await live.conn.request(
                        "GET", "/metrics"
                    )
                    assert "repro_sessions_expired_total 1" in metrics
            finally:
                await server.aclose()
                await service.aclose()

        run(scenario())

    def test_snapshot_carries_epoch_figures(self):
        coll = make_collection()

        async def scenario():
            async with AsyncDiscoveryService(
                coll, flush_after_ms=1.0
            ) as service:
                await service.apply_delta(
                    DeltaBatch().add_sets(
                        {"delta-a": [coll.universe.label(0)]}
                    )
                )
                snap = service.metrics.snapshot()
                assert snap["collection_epoch"] == 1
                assert snap["deltas_applied"] == 1
                assert snap["live_epochs"] == {"1": 0}
                assert snap["sessions_expired"] == 0

        run(scenario())


# --------------------------------------------------------------------- #
# TTL sweep x epoch GC, and waking waiters parked on reaped sessions
# --------------------------------------------------------------------- #


class TestTtlEpochInteraction:
    def test_ttl_reap_wakes_parked_longpoll_with_404(self):
        """A long-poll parked on a session nothing will resolve must be
        woken by the TTL reaper with 404 session_expired — not leak as a
        server-side waiter forever (regression: expire() used to veto on
        the parked waiter, keeping the session alive indefinitely)."""
        coll = make_collection()

        async def scenario():
            service, app, server = await _serve(coll, session_ttl_s=0.3)
            try:
                async with HttpSessionClient(
                    server.host, server.port
                ) as client, HttpConnection(
                    server.host, server.port
                ) as probe:
                    await client.create(selector="most-even")
                    # Put the session into QUESTION_PENDING, then park a
                    # result() long-poll nothing will ever resolve.
                    assert await client.next_question() is not None
                    async with HttpConnection(
                        server.host, server.port
                    ) as side:
                        poll = asyncio.ensure_future(
                            side.request(
                                "GET",
                                f"/sessions/{client.session}/result",
                                token=client.token,
                            )
                        )
                        await asyncio.sleep(0.45)
                        assert not poll.done(), (
                            "long-poll resolved before the TTL sweep ran"
                        )
                        # Any request piggybacks the lazy sweep.
                        await probe.request("GET", "/healthz")
                        status, body = await asyncio.wait_for(poll, 5)
                    assert status == 404
                    assert body["error"] == "session_expired"
                    assert client.session not in app._sessions
                    _, metrics = await probe.request("GET", "/metrics")
                    assert "repro_sessions_expired_total 1" in metrics
            finally:
                await server.aclose()
                await service.aclose()

        run(scenario())

    def test_ttl_sweep_releases_epoch_pin(self):
        """An abandoned session pinning a pre-delta epoch must release
        it when the TTL sweep reaps the session: ``live_epochs`` shrinks
        back to the current epoch and ``/metrics`` drops the old line."""
        coll = make_collection()

        async def scenario():
            service, app, server = await _serve(
                coll, admin_token="t0k", session_ttl_s=0.3
            )
            try:
                async with HttpSessionClient(
                    server.host, server.port
                ) as abandoned, AdminClient(
                    server.host, server.port, "t0k"
                ) as admin:
                    await abandoned.create(selector="most-even")
                    assert await abandoned.next_question() is not None
                    # Delta bumps the served epoch to 1; the abandoned
                    # session stays pinned to epoch 0, keeping the old
                    # replica alive.
                    info = await admin.apply_delta(
                        add={"delta-a": [coll.universe.label(0)]}
                    )
                    assert info["epoch"] == 1
                    assert service.registry.live_epochs() == {1: 0, 0: 1}
                    # Age the session past its TTL; any request sweeps.
                    await asyncio.sleep(0.45)
                    await admin.conn.request("GET", "/healthz")
                    assert service.registry.live_epochs() == {1: 0}
                    _, metrics = await admin.conn.request("GET", "/metrics")
                    assert 'repro_epoch_sessions{epoch="1"} 0' in metrics
                    assert 'epoch="0"' not in metrics
            finally:
                await server.aclose()
                await service.aclose()

        run(scenario())

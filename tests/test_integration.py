"""Cross-module integration scenarios."""

import pytest

from repro.core.bounds import AD, H
from repro.core.construction import (
    build_and_summarize,
    build_tree,
    load_tree,
    save_tree,
)
from repro.core.discovery import DiscoverySession, TreeDiscoverySession
from repro.core.lookahead import KLPSelector
from repro.core.optimal import optimal_cost
from repro.core.selection import InfoGainSelector
from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.data.webtables import WebTableConfig, WebTableWorkload
from repro.oracle import SimulatedUser


class TestOfflineOnlineConsistency:
    """Offline tree construction and online discovery are two views of
    the same deterministic selection process (Sec. 4.5)."""

    def test_online_path_equals_offline_path(self, synthetic_small):
        coll = synthetic_small
        tree = build_tree(coll, KLPSelector(k=2))
        for target in range(0, coll.n_sets, 7):
            offline = TreeDiscoverySession(coll, tree).run(
                SimulatedUser(coll, target_index=target)
            )
            online = DiscoverySession(coll, KLPSelector(k=2)).run(
                SimulatedUser(coll, target_index=target)
            )
            assert offline.target == online.target == target
            assert offline.n_questions == online.n_questions
            offline_entities = [i.entity for i in offline.transcript]
            online_entities = [i.entity for i in online.transcript]
            assert offline_entities == online_entities

    def test_average_questions_over_all_targets_equals_tree_ad(
        self, synthetic_small
    ):
        """The evaluation identity behind Figs. 5-7: mean #questions over
        all targets == AD of the constructed tree."""
        coll = synthetic_small
        tree, summary = build_and_summarize(coll, KLPSelector(k=2))
        totals = 0
        for target in range(coll.n_sets):
            result = DiscoverySession(coll, KLPSelector(k=2)).run(
                SimulatedUser(coll, target_index=target)
            )
            totals += result.n_questions
        assert totals / coll.n_sets == pytest.approx(
            summary.average_depth
        )

    def test_worst_case_equals_tree_height(self, synthetic_small):
        coll = synthetic_small
        tree = build_tree(coll, KLPSelector(k=2, metric=H))
        worst = 0
        for target in range(coll.n_sets):
            result = DiscoverySession(
                coll, KLPSelector(k=2, metric=H)
            ).run(SimulatedUser(coll, target_index=target))
            worst = max(worst, result.n_questions)
        assert worst == tree.height()


class TestPersistedTreePipeline:
    def test_generate_save_load_discover(self, tmp_path):
        coll = generate_collection(
            SyntheticConfig(
                n_sets=30, size_lo=6, size_hi=9, overlap=0.8, seed=12
            )
        )
        tree = build_tree(coll, KLPSelector(k=2))
        path = tmp_path / "tree.json"
        save_tree(tree, path)
        loaded = load_tree(path)
        for target in (0, 7, 29):
            result = TreeDiscoverySession(coll, loaded).run(
                SimulatedUser(coll, target_index=target)
            )
            assert result.target == target


class TestWebTableEndToEnd:
    def test_pair_to_discovery(self):
        workload = WebTableWorkload.build(
            config=WebTableConfig(n_sets=400, seed=21),
            min_candidates=8,
            max_pairs=3,
        )
        assert workload.pairs, "generator must produce qualifying pairs"
        pair = workload.pairs[0]
        coll = workload.collection
        targets = list(coll.sets_in(pair.mask))[:4]
        for target in targets:
            session = DiscoverySession(
                coll,
                KLPSelector(k=2),
                initial_ids=[pair.entity_a, pair.entity_b],
            )
            result = session.run(
                SimulatedUser(coll, target_index=target)
            )
            assert result.resolved
            assert result.target == target


class TestQualityOrdering:
    """InfoGain <= cost of random-ish choices; optimal <= k-LP <= InfoGain
    does not hold pointwise, but the aggregate ordering optimal <= 2-LP
    and optimal <= InfoGain must."""

    def test_cost_sandwich_on_small_collections(self):
        for seed in range(4):
            coll = generate_collection(
                SyntheticConfig(
                    n_sets=11, size_lo=4, size_hi=7, overlap=0.7,
                    seed=seed,
                )
            )
            exact = optimal_cost(coll, AD)
            klp_tree = build_tree(coll, KLPSelector(k=3))
            ig_tree = build_tree(coll, InfoGainSelector())
            assert exact <= klp_tree.average_depth() + 1e-9
            assert exact <= ig_tree.average_depth() + 1e-9

    def test_deeper_lookahead_not_worse_in_aggregate(self):
        total_k1 = total_k3 = 0.0
        for seed in range(5):
            coll = generate_collection(
                SyntheticConfig(
                    n_sets=16, size_lo=4, size_hi=7, overlap=0.75,
                    seed=seed + 50,
                )
            )
            total_k1 += build_tree(
                coll, KLPSelector(k=1)
            ).average_depth()
            total_k3 += build_tree(
                coll, KLPSelector(k=3)
            ).average_depth()
        assert total_k3 <= total_k1 + 1e-9

"""Shared fixtures: the paper's worked examples and small workloads."""

from __future__ import annotations

import pytest

from repro.core.collection import SetCollection
from repro.data.synthetic import SyntheticConfig, generate_collection

#: The collection of Fig. 1 (paper Sec. 3).  'a' is uninformative.
FIG1_SETS = {
    "S1": {"a", "b", "c", "d"},
    "S2": {"a", "d", "e"},
    "S3": {"a", "b", "c", "d", "f"},
    "S4": {"a", "b", "c", "g", "h"},
    "S5": {"a", "b", "h", "i"},
    "S6": {"a", "b", "j", "k"},
    "S7": {"a", "b", "g"},
}

#: The C2 variant of the Sec. 4.3 pruning walk-through: S1 and S4 change.
FIG1_C2_SETS = {
    **FIG1_SETS,
    "S1": {"a", "b", "c"},
    "S4": {"a", "b", "c", "d", "g", "h"},
}


@pytest.fixture
def fig1() -> SetCollection:
    return SetCollection.from_named_sets(FIG1_SETS)


@pytest.fixture
def fig1_c2() -> SetCollection:
    return SetCollection.from_named_sets(FIG1_C2_SETS)


@pytest.fixture(scope="session")
def synthetic_small() -> SetCollection:
    """A 40-set copy-add collection, deterministic."""
    return generate_collection(
        SyntheticConfig(n_sets=40, size_lo=8, size_hi=12, overlap=0.8, seed=1)
    )


@pytest.fixture(scope="session")
def synthetic_tiny() -> SetCollection:
    """A 12-set collection small enough for exact optimal search."""
    return generate_collection(
        SyntheticConfig(n_sets=12, size_lo=5, size_hi=8, overlap=0.7, seed=2)
    )


def eid(collection: SetCollection, label) -> int:
    """Shorthand: entity id of a label."""
    return collection.universe.id_of(label)

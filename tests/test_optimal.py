"""Tests for repro.core.optimal (exact search, small collections)."""

import itertools

import pytest

from repro.core.bounds import AD, H, lb_ad0, lb_h0
from repro.core.collection import SetCollection
from repro.core.construction import build_tree
from repro.core.optimal import (
    CollectionTooLargeError,
    optimal_cost,
    optimal_tree,
)
from repro.core.selection import MostEvenSelector


def brute_force_ad_sum(coll: SetCollection, mask: int) -> int:
    """Plain exponential reference without dedup or pruning."""
    if coll.count(mask) == 1:
        return 0
    best = None
    for eid, _ in coll.informative_entities(mask):
        pos, neg = coll.partition(mask, eid)
        value = (
            coll.count(mask)
            + brute_force_ad_sum(coll, pos)
            + brute_force_ad_sum(coll, neg)
        )
        if best is None or value < best:
            best = value
    assert best is not None
    return best


def brute_force_height(coll: SetCollection, mask: int) -> int:
    if coll.count(mask) == 1:
        return 0
    best = None
    for eid, _ in coll.informative_entities(mask):
        pos, neg = coll.partition(mask, eid)
        value = 1 + max(
            brute_force_height(coll, pos), brute_force_height(coll, neg)
        )
        if best is None or value < best:
            best = value
    assert best is not None
    return best


class TestPaperExample:
    def test_fig1_optimal_ad_is_2_857(self, fig1):
        result = optimal_tree(fig1, AD)
        assert result.cost == pytest.approx(20 / 7)

    def test_fig1_optimal_h_is_3(self, fig1):
        assert optimal_cost(fig1, H) == 3.0

    def test_fig1_tree_is_valid_and_matches_cost(self, fig1):
        result = optimal_tree(fig1, AD)
        result.tree.validate(fig1)
        assert result.tree.average_depth() == pytest.approx(result.cost)

    def test_fig1_h_tree_height_matches(self, fig1):
        result = optimal_tree(fig1, H)
        result.tree.validate(fig1)
        assert result.tree.height() == result.cost


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_collections_ad(self, seed):
        import random

        rng = random.Random(seed)
        sets = set()
        while len(sets) < 7:
            sets.add(
                frozenset(
                    rng.sample(range(10), rng.randint(2, 5))
                )
            )
        coll = SetCollection(list(sets))
        expected = brute_force_ad_sum(coll, coll.full_mask) / coll.n_sets
        assert optimal_cost(coll, AD) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_collections_h(self, seed):
        import random

        rng = random.Random(seed + 100)
        sets = set()
        while len(sets) < 7:
            sets.add(
                frozenset(rng.sample(range(10), rng.randint(2, 5)))
            )
        coll = SetCollection(list(sets))
        expected = brute_force_height(coll, coll.full_mask)
        assert optimal_cost(coll, H) == expected


class TestBounds:
    def test_optimal_respects_lower_bounds(self, synthetic_tiny):
        n = synthetic_tiny.n_sets
        assert optimal_cost(synthetic_tiny, AD) >= lb_ad0(n)
        assert optimal_cost(synthetic_tiny, H) >= lb_h0(n)

    def test_optimal_never_beaten_by_greedy(self, synthetic_tiny):
        greedy = build_tree(synthetic_tiny, MostEvenSelector())
        assert optimal_cost(synthetic_tiny, AD) <= greedy.average_depth()
        assert optimal_cost(synthetic_tiny, H) <= greedy.height()

    def test_power_of_two_distinguishable_collection(self):
        # Sets = all subsets of 3 entities: a perfect tree of height 3
        # exists (ask each entity once).
        universe = ["x", "y", "z"]
        sets = []
        for r in range(4):
            for combo in itertools.combinations(universe, r):
                sets.append(set(combo) | {"common"})
        coll = SetCollection(sets)
        assert coll.n_sets == 8
        assert optimal_cost(coll, H) == 3.0
        assert optimal_cost(coll, AD) == 3.0


class TestEdgesAndGuards:
    def test_singleton_collection(self):
        coll = SetCollection([{"x"}])
        result = optimal_tree(coll, AD)
        assert result.cost == 0.0
        assert result.tree.is_leaf

    def test_two_sets(self):
        coll = SetCollection([{"x", "y"}, {"x", "z"}])
        assert optimal_cost(coll, AD) == 1.0
        assert optimal_cost(coll, H) == 1.0

    def test_sub_collection_mask(self, fig1):
        sub = fig1.supersets_of({"b", "c"})  # S1, S3, S4
        result = optimal_tree(fig1, AD, mask=sub)
        assert result.tree.n_leaves == 3
        assert result.cost == pytest.approx(5 / 3)

    def test_size_guard(self, fig1):
        with pytest.raises(CollectionTooLargeError):
            optimal_tree(fig1, AD, max_sets=3)

    def test_empty_mask_rejected(self, fig1):
        with pytest.raises(ValueError):
            optimal_tree(fig1, AD, mask=0)

    def test_explored_counter_positive(self, fig1):
        assert optimal_tree(fig1, AD).explored > 0

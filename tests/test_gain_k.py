"""Tests for repro.core.gain_k (reference bounds, gain-k, unpruned k-LP)."""

import pytest

from repro.core.bounds import AD, H
from repro.core.construction import build_tree
from repro.core.gain_k import (
    GainKSelector,
    UnprunedKLPSelector,
    lb_k,
    lb_k_entity,
)
from repro.core.selection import (
    InfoGainSelector,
    NoInformativeEntityError,
    unevenness,
)


class TestReferenceBounds:
    def test_lb_k_entity_k1_matches_metric(self, fig1):
        d = fig1.universe.id_of("d")
        assert lb_k_entity(fig1, fig1.full_mask, d, 1, AD) == AD.lb1(3, 4)
        assert lb_k_entity(fig1, fig1.full_mask, d, 1, H) == H.lb1(3, 4)

    def test_lb_k_entity_rejects_uninformative(self, fig1):
        a = fig1.universe.id_of("a")
        with pytest.raises(ValueError):
            lb_k_entity(fig1, fig1.full_mask, a, 1, AD)

    def test_lb_k_entity_rejects_k0(self, fig1):
        d = fig1.universe.id_of("d")
        with pytest.raises(ValueError):
            lb_k_entity(fig1, fig1.full_mask, d, 0, AD)

    def test_lb_k_entity_monotone_lemma_4_2(self, fig1):
        full = fig1.full_mask
        for label in "bcdefghijk":
            e = fig1.universe.id_of(label)
            for metric in (AD, H):
                bounds = [
                    lb_k_entity(fig1, full, e, k, metric)
                    for k in range(1, 7)
                ]
                assert bounds == sorted(bounds), (label, metric.name)

    def test_lb_k_collection_k0(self, fig1):
        assert lb_k(fig1, fig1.full_mask, 0, AD) == AD.lb0(7)
        assert lb_k(fig1, fig1.full_mask, 0, H) == 3.0

    def test_lb_k_of_singleton_is_zero(self, fig1):
        assert lb_k(fig1, 0b1, 3, AD) == 0.0

    def test_lb_k_is_min_over_entities(self, fig1):
        full = fig1.full_mask
        expected = min(
            lb_k_entity(fig1, full, e, 2, H)
            for e, _ in fig1.informative_entities(full)
        )
        assert lb_k(fig1, full, 2, H) == expected


class TestGainK:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            GainKSelector(k=0)

    def test_gain_1_equals_infogain(self, fig1, synthetic_small):
        for coll in (fig1, synthetic_small):
            assert GainKSelector(k=1).select(
                coll, coll.full_mask
            ) == InfoGainSelector().select(coll, coll.full_mask)

    def test_gain_2_picks_an_even_splitter_on_fig1(self, fig1):
        chosen = GainKSelector(k=2).select(fig1, fig1.full_mask)
        n1 = fig1.positive_count(fig1.full_mask, chosen)
        assert unevenness(7, n1) == 1

    def test_memoized_matches_unmemoized(self, fig1):
        plain = GainKSelector(k=2)
        memo = GainKSelector(k=2, memoize=True)
        assert plain.select(fig1, fig1.full_mask) == memo.select(
            fig1, fig1.full_mask
        )
        # Second call goes through the cache.
        assert memo.select(fig1, fig1.full_mask) == plain.select(
            fig1, fig1.full_mask
        )

    def test_gain_k_tree_is_valid(self, fig1):
        tree = build_tree(fig1, GainKSelector(k=2))
        tree.validate(fig1)

    def test_reset_clears_memo(self, fig1):
        memo = GainKSelector(k=2, memoize=True)
        memo.select(fig1, fig1.full_mask)
        memo.reset()
        assert not memo._cache

    def test_exclusion_supported(self, fig1):
        best = GainKSelector(k=2).select(fig1, fig1.full_mask)
        other = GainKSelector(k=2).select(
            fig1, fig1.full_mask, exclude={best}
        )
        assert other != best

    def test_no_informative_raises(self, fig1):
        informative = {
            e for e, _ in fig1.informative_entities(fig1.full_mask)
        }
        with pytest.raises(NoInformativeEntityError):
            GainKSelector(k=2).select(
                fig1, fig1.full_mask, exclude=informative
            )


class TestUnprunedKLP:
    def test_device_flags_do_not_change_selection(self, fig1, synthetic_small):
        """Every pruning-device combination is semantics-preserving."""
        combos = [
            {},
            {"sorted_break": True},
            {"upper_limits": True},
            {"memoize": True},
            {"sorted_break": True, "upper_limits": True},
            {"sorted_break": True, "upper_limits": True, "memoize": True},
        ]
        for coll in (fig1, synthetic_small):
            baseline = UnprunedKLPSelector(k=2).select(coll, coll.full_mask)
            for flags in combos:
                got = UnprunedKLPSelector(k=2, **flags).select(
                    coll, coll.full_mask
                )
                assert got == baseline, flags

    def test_name_encodes_devices(self):
        assert UnprunedKLPSelector(k=2).name == "2-LP-unpruned[AD]"
        assert (
            UnprunedKLPSelector(k=2, sorted_break=True, memoize=True).name
            == "2-LP-unpruned+sm[AD]"
        )

    def test_singleton_raises(self, fig1):
        with pytest.raises(ValueError):
            UnprunedKLPSelector(k=2).select(fig1, 0b1)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            UnprunedKLPSelector(k=0)

    def test_h_metric_supported(self, fig1):
        chosen = UnprunedKLPSelector(k=2, metric=H).select(
            fig1, fig1.full_mask
        )
        n1 = fig1.positive_count(fig1.full_mask, chosen)
        assert sorted([n1, 7 - n1]) == [3, 4]

    def test_reset_clears_cache(self, fig1):
        sel = UnprunedKLPSelector(k=2, memoize=True)
        sel.select(fig1, fig1.full_mask)
        assert sel._cache
        sel.reset()
        assert not sel._cache

"""Tests for repro.core.robust (Sec. 6: errors in answers)."""

import pytest

from repro.core.lookahead import KLPSelector
from repro.core.robust import (
    AnsweredQuestion,
    BacktrackingDiscoverySession,
    consistent_mask,
    rank_by_violations,
    violation_scores,
    with_confidence,
)
from repro.core.selection import MostEvenSelector
from repro.oracle import NoisyUser, SimulatedUser


def qa(coll, label, answer, confidence=1.0):
    return AnsweredQuestion(coll.universe.id_of(label), answer, confidence)


class TestConsistency:
    def test_consistent_mask_filters(self, fig1):
        answers = [qa(fig1, "d", True), qa(fig1, "e", False)]
        mask = consistent_mask(fig1, fig1.full_mask, answers)
        names = {fig1.name_of(i) for i in fig1.sets_in(mask)}
        assert names == {"S1", "S3"}

    def test_contradictory_answers_empty_the_mask(self, fig1):
        answers = [qa(fig1, "d", True), qa(fig1, "b", False),
                   qa(fig1, "e", False)]
        assert consistent_mask(fig1, fig1.full_mask, answers) == 0

    def test_violation_scores_count_mismatches(self, fig1):
        answers = [qa(fig1, "d", True, 0.5), qa(fig1, "e", True, 1.0)]
        scores = violation_scores(fig1, fig1.full_mask, answers)
        # S2 = {a,d,e} violates nothing; S1 = {a,b,c,d} violates 'e': 1.0;
        # S4 violates both: 1.5.
        assert scores[1] == 0.0
        assert scores[0] == 1.0
        assert scores[3] == 1.5

    def test_ranking_is_best_first(self, fig1):
        answers = [qa(fig1, "d", True), qa(fig1, "e", True)]
        ranking = rank_by_violations(fig1, fig1.full_mask, answers)
        assert ranking[0][0] == 1  # S2
        scores = [s for _, s in ranking]
        assert scores == sorted(scores)


class TestBacktrackingSession:
    def test_perfect_oracle_passes_through(self, fig1):
        session = BacktrackingDiscoverySession(
            fig1, KLPSelector(k=2), max_flips=2
        )
        oracle = SimulatedUser(fig1, target_index=4)
        result = session.run(with_confidence(oracle))
        assert result.resolved
        assert result.target == 4
        assert result.backtracks == 0
        assert result.flipped == []

    def test_single_injected_error_is_flipped(self, fig1):
        """Answer the first question wrongly with low confidence, then
        truthfully; the contradiction must be repaired by flipping."""
        target_members = fig1.sets[2]  # S3

        state = {"first": True}

        def flaky(entity):
            truth = entity in target_members
            if state["first"]:
                state["first"] = False
                return (not truth, 0.2)
            return (truth, 1.0)

        session = BacktrackingDiscoverySession(
            fig1,
            KLPSelector(k=2),
            max_flips=2,
            verify_questions=4,
        )
        result = session.run(flaky)
        assert result.resolved
        assert result.target == 2
        assert result.backtracks >= 1
        assert len(result.flipped) >= 1

    def test_verification_detects_silent_wrong_turn(self, synthetic_small):
        """Without verification a wrong answer can land on a wrong leaf
        with no contradiction; verification must catch some of these."""
        coll = synthetic_small
        recovered_plain = 0
        recovered_verified = 0
        trials = 12
        for trial in range(trials):
            target = trial % coll.n_sets
            noisy = NoisyUser(coll, 0.15, target_index=target, seed=trial)
            plain = BacktrackingDiscoverySession(
                coll, KLPSelector(k=2), max_flips=2, verify_questions=0
            )
            r = plain.run(lambda e: (bool(noisy(e)), 0.6))
            recovered_plain += int(r.resolved and r.target == target)

            noisy.reset()
            verified = BacktrackingDiscoverySession(
                coll, KLPSelector(k=2), max_flips=2, verify_questions=3
            )
            r = verified.run(lambda e: (bool(noisy(e)), 0.6))
            recovered_verified += int(r.resolved and r.target == target)
        assert recovered_verified >= recovered_plain

    def test_best_effort_when_flips_exhausted(self, fig1):
        """With max_flips=0 and contradictory answers, the session falls
        back to the violation ranking instead of failing."""

        answers = iter([(True, 1.0), (False, 1.0), (False, 1.0),
                        (True, 1.0), (False, 1.0), (True, 1.0),
                        (False, 1.0), (True, 1.0)])

        def adversarial(entity):
            try:
                return next(answers)
            except StopIteration:
                return (False, 1.0)

        session = BacktrackingDiscoverySession(
            fig1, MostEvenSelector(), max_flips=0, max_questions=8
        )
        result = session.run(adversarial)
        assert result.candidates  # never empty: best-effort ranking

    def test_max_questions_halts(self, synthetic_small):
        session = BacktrackingDiscoverySession(
            synthetic_small,
            KLPSelector(k=2),
            max_questions=2,
        )
        oracle = SimulatedUser(synthetic_small, target_index=1)
        result = session.run(with_confidence(oracle))
        assert result.n_questions <= 2

    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            BacktrackingDiscoverySession(
                fig1, MostEvenSelector(), max_flips=-1
            )
        with pytest.raises(ValueError):
            BacktrackingDiscoverySession(
                fig1, MostEvenSelector(), verify_questions=-1
            )


class TestWithConfidence:
    def test_wraps_bool_oracle(self, fig1):
        oracle = with_confidence(
            SimulatedUser(fig1, target_index=0), 0.9
        )
        d = fig1.universe.id_of("d")
        assert oracle(d) == (True, 0.9)

    def test_confidence_range_checked(self, fig1):
        with pytest.raises(ValueError):
            with_confidence(lambda e: True, 1.5)

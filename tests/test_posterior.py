"""Tests for repro.core.posterior (prior-aware online discovery)."""

import pytest

from repro.core.lookahead import KLPSelector
from repro.core.posterior import PosteriorDiscoverySession
from repro.core.priors import Prior, skewed_prior
from repro.oracle import SimulatedUser, UnsureUser


class TestValidation:
    def test_prior_collection_must_match(self, fig1, synthetic_tiny):
        prior = Prior.uniform(synthetic_tiny)
        with pytest.raises(ValueError):
            PosteriorDiscoverySession(fig1, prior)

    def test_threshold_range(self, fig1):
        prior = Prior.uniform(fig1)
        with pytest.raises(ValueError):
            PosteriorDiscoverySession(
                fig1, prior, confidence_threshold=0.0
            )
        with pytest.raises(ValueError):
            PosteriorDiscoverySession(
                fig1, prior, confidence_threshold=1.5
            )


class TestUniformPriorBaseline:
    def test_matches_plain_discovery(self, fig1):
        """Uniform prior + threshold 1.0 == Algorithm 2 with the same
        selector (same questions, same target)."""
        from repro.core.discovery import DiscoverySession

        for target in range(fig1.n_sets):
            prior = Prior.uniform(fig1)
            post = PosteriorDiscoverySession(
                fig1, prior, selector=KLPSelector(k=2)
            )
            plain = DiscoverySession(fig1, KLPSelector(k=2))
            r_post = post.run(SimulatedUser(fig1, target_index=target))
            r_plain = plain.run(SimulatedUser(fig1, target_index=target))
            assert r_post.top == r_plain.target
            assert r_post.n_questions == r_plain.n_questions
            assert not r_post.stopped_early

    def test_posterior_is_normalised(self, fig1):
        session = PosteriorDiscoverySession(fig1, Prior.uniform(fig1))
        ranked = session.posterior()
        assert sum(p for _, p in ranked) == pytest.approx(1.0)
        assert len(ranked) == 7


class TestEarlyStopping:
    def test_confident_prior_stops_before_certainty(self, synthetic_tiny):
        coll = synthetic_tiny
        # Nearly all mass on set 0.
        weights = [100.0] + [0.1] * (coll.n_sets - 1)
        prior = Prior(coll, weights)
        session = PosteriorDiscoverySession(
            coll, prior, confidence_threshold=0.9
        )
        result = session.run(SimulatedUser(coll, target_index=0))
        assert result.top == 0
        assert result.top_probability >= 0.9
        # With a point-mass-ish prior no questions are needed at all.
        assert result.n_questions == 0
        assert result.stopped_early or result.resolved

    def test_early_stop_saves_questions_for_likely_targets(
        self, synthetic_small
    ):
        coll = synthetic_small
        prior = skewed_prior(coll, zipf_s=2.0)
        certain = PosteriorDiscoverySession(coll, prior)
        fuzzy = PosteriorDiscoverySession(
            coll, prior, confidence_threshold=0.8
        )
        r_certain = certain.run(SimulatedUser(coll, target_index=0))
        r_fuzzy = fuzzy.run(SimulatedUser(coll, target_index=0))
        assert r_fuzzy.n_questions <= r_certain.n_questions
        assert r_fuzzy.top == 0

    def test_early_stop_can_be_wrong_for_unlikely_targets(
        self, synthetic_tiny
    ):
        """Stopping at 90% confidence means the 10% tail target may be
        mis-ranked — the inherent trade-off, surfaced explicitly."""
        coll = synthetic_tiny
        weights = [50.0] + [1.0] * (coll.n_sets - 1)
        prior = Prior(coll, weights)
        session = PosteriorDiscoverySession(
            coll, prior, confidence_threshold=0.8
        )
        unlikely = coll.n_sets - 1
        result = session.run(SimulatedUser(coll, target_index=unlikely))
        # Either it asked enough to find the truth or it stopped early
        # on the heavy prior; both are legal outcomes.
        assert result.ranked
        if result.stopped_early and result.top != unlikely:
            assert result.top_probability >= 0.8


class TestEdgeBehaviour:
    def test_max_questions_halts(self, synthetic_small):
        prior = Prior.uniform(synthetic_small)
        session = PosteriorDiscoverySession(
            synthetic_small, prior, max_questions=2
        )
        result = session.run(
            SimulatedUser(synthetic_small, target_index=3)
        )
        assert result.n_questions <= 2

    def test_dont_know_answers_excluded_not_counted_as_filtering(
        self, fig1
    ):
        prior = Prior.uniform(fig1)
        session = PosteriorDiscoverySession(fig1, prior)
        oracle = UnsureUser(fig1, 1.0, target_index=0)
        result = session.run(oracle)
        # Everything unsure: candidates never shrink.
        assert len(result.ranked) == 7

    def test_zero_mass_survivors_fall_back_to_uniform(self, fig1):
        # Mass only on S2; user is actually looking for S4.
        prior = Prior.from_mapping(fig1, {"S2": 1.0})
        session = PosteriorDiscoverySession(
            fig1, prior, selector=KLPSelector(k=2)
        )
        result = session.run(SimulatedUser(fig1, target_index=3))
        assert result.top == 3
        assert result.top_probability == pytest.approx(1.0)

    def test_initial_seeding(self, fig1):
        prior = Prior.uniform(fig1)
        session = PosteriorDiscoverySession(
            fig1, prior, initial={"b", "c"}
        )
        assert session.n_candidates == 3

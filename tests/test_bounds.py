"""Tests for repro.core.bounds (Eqs. 1-8, 11-14 and Lemma 3.3)."""

import math

import pytest

from repro.core.bounds import (
    AD,
    H,
    ceil_log2,
    ceil_n_log2_n,
    lb_ad0,
    lb_ad1,
    lb_h0,
    lb_h1,
    metric_by_name,
    min_external_path_length,
)


class TestCeilHelpers:
    def test_ceil_log2_small_values(self):
        assert [ceil_log2(n) for n in (1, 2, 3, 4, 7, 8, 9)] == [
            0, 1, 2, 2, 3, 3, 4,
        ]

    def test_ceil_log2_rejects_zero(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    def test_ceil_n_log2_n_powers_of_two_exact(self):
        assert ceil_n_log2_n(8) == 24
        assert ceil_n_log2_n(1024) == 10240

    def test_ceil_n_log2_n_matches_math(self):
        for n in range(2, 2000):
            expected = math.ceil(n * math.log2(n) - 1e-12)
            assert ceil_n_log2_n(n) == expected, n

    def test_ceil_n_log2_n_one(self):
        assert ceil_n_log2_n(1) == 0

    def test_min_external_path_length_small(self):
        # n leaves on at most two adjacent levels.
        assert min_external_path_length(1) == 0
        assert min_external_path_length(2) == 2
        assert min_external_path_length(3) == 5
        assert min_external_path_length(4) == 8
        assert min_external_path_length(7) == 20

    def test_epl_never_below_paper_bound(self):
        for n in range(1, 500):
            assert min_external_path_length(n) >= ceil_n_log2_n(n)


class TestZeroStepBounds:
    def test_lb_ad0_of_7_matches_paper(self):
        # Lemma 3.3 example: 7 sets -> 2.857...
        assert lb_ad0(7) == pytest.approx(20 / 7)

    def test_lb_ad0_trivial_sizes(self):
        assert lb_ad0(1) == 0.0
        assert lb_ad0(2) == 1.0

    def test_lb_h0_trivial_sizes(self):
        assert lb_h0(1) == 0
        assert lb_h0(2) == 1
        assert lb_h0(7) == 3

    def test_ad_bound_below_h_bound_scaled(self):
        for n in range(2, 100):
            assert lb_ad0(n) <= lb_h0(n)


class TestOneStepBounds:
    def test_lb_h1_of_3_4_split_is_3(self):
        # Sec. 4.3: entities c and d split 7 sets into 3/4 -> bound 3.
        assert lb_h1(3, 4) == 3

    def test_lb_h1_of_1_6_split_is_4(self):
        # The other informative entities split 1/6 -> bound 4.
        assert lb_h1(1, 6) == 4

    def test_lb_ad1_even_split(self):
        assert lb_ad1(2, 2) == pytest.approx(2.0)

    def test_lb_ad1_uneven_worse_than_even(self):
        assert lb_ad1(1, 3) > lb_ad1(2, 2)

    def test_lb1_via_metric_equals_module_functions(self):
        for n1, n2 in [(1, 1), (3, 4), (5, 11), (2, 9)]:
            assert AD.lb1(n1, n2) == pytest.approx(lb_ad1(n1, n2))
            assert H.lb1(n1, n2) == pytest.approx(lb_h1(n1, n2))


class TestCombine:
    def test_ad_combine_is_weighted_average_plus_one(self):
        assert AD.combine(2, 1.0, 2, 3.0) == pytest.approx(3.0)

    def test_h_combine_is_max_plus_one(self):
        assert H.combine(2, 1.0, 5, 3.0) == 4.0

    def test_combine_with_zero_child_bounds(self):
        assert AD.combine(1, 0.0, 1, 0.0) == 1.0
        assert H.combine(1, 0.0, 1, 0.0) == 1.0


class TestUpperLimits:
    def test_ad_limits_infinite_when_unbounded(self):
        assert AD.upper_limit_first(math.inf, 3, 1.0, 4) == math.inf
        assert AD.upper_limit_second(math.inf, 4, 1.0, 3) == math.inf

    def test_h_limits_subtract_one(self):
        assert H.upper_limit_first(4.0, 3, 1.0, 4) == 3.0
        assert H.upper_limit_second(4.0, 4, 2.0, 3) == 3.0

    def test_ad_limit_first_matches_eq11(self):
        # UL(C1) = ((AFLV - 1) * |C| - |C2| * LB0(C2)) / |C1|
        ul, n1, n2 = 3.0, 3, 4
        lb2 = lb_ad0(n2)
        expected = ((ul - 1) * (n1 + n2) - n2 * lb2) / n1
        assert AD.upper_limit_first(ul, n1, lb2, n2) == pytest.approx(
            expected
        )

    def test_ad_limit_second_matches_eq13(self):
        ul, n1, n2, l1 = 3.0, 3, 4, 1.2
        expected = ((ul - 1) * (n1 + n2) - n1 * l1) / n2
        assert AD.upper_limit_second(ul, n2, l1, n1) == pytest.approx(
            expected
        )

    def test_limit_consistency_with_combine(self):
        # If l1 == UL_first exactly, combine with optimistic l2 hits AFLV.
        ul, n1, n2 = 3.4, 3, 5
        lb2 = lb_ad0(n2)
        l1 = AD.upper_limit_first(ul, n1, lb2, n2)
        assert AD.combine(n1, l1, n2, lb2) == pytest.approx(ul)


class TestTreeCost:
    def test_ad_cost_is_mean(self):
        assert AD.tree_cost([1, 2, 3]) == pytest.approx(2.0)

    def test_h_cost_is_max(self):
        assert H.tree_cost([1, 2, 3]) == 3.0

    def test_empty_depths_raise(self):
        with pytest.raises(ValueError):
            AD.tree_cost([])
        with pytest.raises(ValueError):
            H.tree_cost([])


class TestMetricLookup:
    def test_by_name(self):
        assert metric_by_name("ad") is AD
        assert metric_by_name("H") is H

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            metric_by_name("WAD")

    def test_names(self):
        assert AD.name == "AD"
        assert H.name == "H"
        assert "AD" in repr(AD)

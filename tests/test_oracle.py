"""Tests for repro.oracle.user (simulated users)."""

import pytest

from repro.oracle import (
    NoisyUser,
    ScriptedUser,
    SimulatedUser,
    StdinUser,
    UnsureUser,
)


class TestSimulatedUser:
    def test_target_by_index(self, fig1):
        user = SimulatedUser(fig1, target_index=1)  # S2 = {a, d, e}
        assert user(fig1.universe.id_of("d")) is True
        assert user(fig1.universe.id_of("b")) is False

    def test_target_by_labels(self, fig1):
        user = SimulatedUser(fig1, target_labels={"a", "d", "e"})
        assert user(fig1.universe.id_of("e")) is True

    def test_target_by_ids(self, fig1):
        d = fig1.universe.id_of("d")
        user = SimulatedUser(fig1, target_ids=[d])
        assert user(d) is True

    def test_exactly_one_target_spec_required(self, fig1):
        with pytest.raises(ValueError):
            SimulatedUser(fig1)
        with pytest.raises(ValueError):
            SimulatedUser(fig1, target_index=0, target_labels={"a"})

    def test_question_counter(self, fig1):
        user = SimulatedUser(fig1, target_index=0)
        for label in "abc":
            user(fig1.universe.id_of(label))
        assert user.questions_asked == 3
        user.reset()
        assert user.questions_asked == 0


class TestNoisyUser:
    def test_zero_error_rate_is_truthful(self, fig1):
        user = NoisyUser(fig1, 0.0, target_index=1)
        for label in "abcdefghijk":
            eid = fig1.universe.id_of(label)
            assert user(eid) == (eid in fig1.sets[1])
        assert user.errors_made == 0

    def test_full_error_rate_always_lies(self, fig1):
        user = NoisyUser(fig1, 1.0, target_index=1)
        for label in "abcde":
            eid = fig1.universe.id_of(label)
            assert user(eid) != (eid in fig1.sets[1])

    def test_seeded_reproducibility(self, fig1):
        a = NoisyUser(fig1, 0.5, target_index=0, seed=7)
        b = NoisyUser(fig1, 0.5, target_index=0, seed=7)
        eids = [fig1.universe.id_of(c) for c in "abcdefg"]
        assert [a(e) for e in eids] == [b(e) for e in eids]

    def test_reset_restores_error_stream(self, fig1):
        user = NoisyUser(fig1, 0.5, target_index=0, seed=7)
        eids = [fig1.universe.id_of(c) for c in "abcdefg"]
        first = [user(e) for e in eids]
        user.reset()
        assert [user(e) for e in eids] == first
        assert user.questions_asked == len(eids)

    def test_rate_validation(self, fig1):
        with pytest.raises(ValueError):
            NoisyUser(fig1, 1.5, target_index=0)


class TestUnsureUser:
    def test_zero_rate_never_unsure(self, fig1):
        user = UnsureUser(fig1, 0.0, target_index=0)
        for label in "abcde":
            assert user(fig1.universe.id_of(label)) is not None

    def test_full_rate_always_unsure(self, fig1):
        user = UnsureUser(fig1, 1.0, target_index=0)
        assert user(fig1.universe.id_of("a")) is None
        assert user.unsure_count == 1

    def test_rate_validation(self, fig1):
        with pytest.raises(ValueError):
            UnsureUser(fig1, -0.1, target_index=0)

    def test_reset(self, fig1):
        user = UnsureUser(fig1, 1.0, target_index=0)
        user(fig1.universe.id_of("a"))
        user.reset()
        assert user.unsure_count == 0


class TestScriptedUser:
    def test_mapping_script(self, fig1):
        user = ScriptedUser({"d": True, "e": False}, collection=fig1)
        assert user(fig1.universe.id_of("d")) is True
        assert user(fig1.universe.id_of("e")) is False

    def test_off_script_raises(self, fig1):
        user = ScriptedUser({"d": True}, collection=fig1)
        with pytest.raises(KeyError):
            user(fig1.universe.id_of("b"))

    def test_sequence_script(self, fig1):
        user = ScriptedUser([True, None, False])
        assert user(0) is True
        assert user(1) is None
        assert user(2) is False
        with pytest.raises(IndexError):
            user(3)

    def test_sequence_reset(self, fig1):
        user = ScriptedUser([True, False])
        user(0)
        user.reset()
        assert user(0) is True


class TestStdinUser:
    def _make(self, fig1, replies):
        replies = iter(replies)
        outputs = []
        return (
            StdinUser(
                fig1,
                prompt_writer=outputs.append,
                line_reader=lambda: next(replies),
            ),
            outputs,
        )

    def test_yes_no_unknown(self, fig1):
        user, _ = self._make(fig1, ["y", "NO", "?"])
        assert user(0) is True
        assert user(1) is False
        assert user(2) is None

    def test_reprompts_on_garbage(self, fig1):
        user, outputs = self._make(fig1, ["banana", "yes"])
        assert user(0) is True
        assert any("please answer" in text for text in outputs)

    def test_prompt_mentions_entity_label(self, fig1):
        user, outputs = self._make(fig1, ["y"])
        user(fig1.universe.id_of("d"))
        assert any("'d'" in text for text in outputs)


class TestStdinPromptFlushing:
    def test_default_writer_flushes_stdout(self, fig1, monkeypatch):
        # Regression: the prompt has no trailing newline, so without an
        # explicit flush it stays invisible whenever stdout is piped or
        # block-buffered (print only flushes line-buffered streams).
        import io
        import sys

        class FlushTrackingStream(io.StringIO):
            def __init__(self):
                super().__init__()
                self.flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        stream = FlushTrackingStream()
        monkeypatch.setattr(sys, "stdout", stream)
        user = StdinUser(fig1, line_reader=lambda: "y")
        assert user(0) is True
        assert "[y/n/?]" in stream.getvalue()
        assert stream.flushes > 0

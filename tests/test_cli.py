"""Tests for the CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.data.loaders import load_collection


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(
            ["generate", "synthetic", "out.json"]
        )
        assert args.kind == "synthetic"
        assert args.n_sets == 1000

    def test_baseball_target_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseball", "T9"])


class TestGenerate:
    def test_generate_synthetic_json(self, tmp_path, capsys):
        out = tmp_path / "c.json"
        code = main(
            [
                "generate", "synthetic", str(out),
                "--n-sets", "30", "--size-lo", "5", "--size-hi", "8",
                "--overlap", "0.8",
            ]
        )
        assert code == 0
        coll = load_collection(out)
        assert coll.n_sets == 30
        assert "wrote 30 sets" in capsys.readouterr().out

    def test_generate_webtables_text(self, tmp_path):
        out = tmp_path / "c.tsv"
        code = main(
            ["generate", "webtables", str(out), "--n-sets", "120"]
        )
        assert code == 0
        assert load_collection(out).n_sets > 0


class TestDiscover:
    @pytest.fixture
    def collection_file(self, tmp_path):
        out = tmp_path / "c.json"
        main(
            [
                "generate", "synthetic", str(out),
                "--n-sets", "25", "--size-lo", "5", "--size-hi", "8",
                "--overlap", "0.8",
            ]
        )
        return out

    def test_simulated_target_discovery(self, collection_file, capsys):
        code = main(
            [
                "discover", str(collection_file),
                "--target", "S5", "--k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "found S5" in out

    def test_infogain_selector(self, collection_file, capsys):
        code = main(
            [
                "discover", str(collection_file),
                "--target", "S3", "--selector", "infogain",
            ]
        )
        assert code == 0
        assert "found S3" in capsys.readouterr().out

    def test_max_questions_stops_early(self, collection_file, capsys):
        code = main(
            [
                "discover", str(collection_file),
                "--target", "S1", "--max-questions", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stopped with" in out or "found" in out

    def test_impossible_initial_reports_error(self, collection_file, capsys):
        code = main(
            [
                "discover", str(collection_file),
                "--initial", "no-such-entity", "--target", "S1",
            ]
        )
        assert code == 1
        assert "no set contains" in capsys.readouterr().err

    def test_interactive_stdin(self, collection_file, capsys, monkeypatch):
        """Drive the StdinUser through real prompts: always answer 'n'
        until the session resolves (the all-no path exists in any tree)."""
        monkeypatch.setattr("builtins.input", lambda: "n")
        code = main(["discover", str(collection_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "found" in out or "stopped" in out


class TestExperimentCommand:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig8" in out

    def test_no_name_lists(self, capsys):
        assert main(["experiment"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1a" in out


class TestBaseballCommand:
    def test_t6_small(self, capsys):
        code = main(
            ["baseball", "T6", "--players", "2500", "--k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "target T6" in out
        assert "questions:" in out


class TestServeDemoCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["serve-demo"])
        assert args.users == 200
        assert args.flush_after_ms == 2.0
        assert args.max_batch == 64
        assert args.selector == "infogain"

    def test_demo_runs_and_reports(self, capsys):
        code = main(
            [
                "serve-demo", "--users", "24", "--n-sets", "200",
                "--jitter-ms", "1", "--flush-after-ms", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 24 concurrent users" in out
        assert "24 resolved" in out
        assert "ask() latency" in out
        assert "scheduler:" in out

    def test_demo_with_zero_jitter_and_klp(self, capsys):
        # klp exercises the scheduler's fallback-selector path end to end
        code = main(
            [
                "serve-demo", "--users", "6", "--n-sets", "80",
                "--jitter-ms", "0", "--selector", "klp",
            ]
        )
        assert code == 0
        assert "served 6 concurrent users" in capsys.readouterr().out

"""Tests for repro.core.bitmask."""

import pytest

from repro.core.bitmask import (
    bit,
    full_mask,
    iter_bits,
    lowest_bit,
    mask_of,
    popcount,
    single_bit,
    subtract,
)


class TestFullMask:
    def test_zero_sets(self):
        assert full_mask(0) == 0

    def test_small_sizes(self):
        assert full_mask(1) == 0b1
        assert full_mask(3) == 0b111

    def test_large_size_has_right_popcount(self):
        assert popcount(full_mask(100_000)) == 100_000

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            full_mask(-1)


class TestBit:
    def test_bit_positions(self):
        assert bit(0) == 1
        assert bit(5) == 32

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bit(-2)


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_ascending_order(self):
        assert list(iter_bits(0b10110)) == [1, 2, 4]

    def test_round_trip_with_mask_of(self):
        indices = [0, 3, 17, 64, 1000]
        assert list(iter_bits(mask_of(indices))) == indices


class TestMaskOf:
    def test_accepts_any_iterable(self):
        # The old annotation named concrete types; the contract is any
        # Iterable[int] — sets and generators included.
        assert mask_of([1, 2, 4]) == 0b10110
        assert mask_of((1, 2, 4)) == 0b10110
        assert mask_of({1, 2, 4}) == 0b10110
        assert mask_of(i for i in (1, 2, 4)) == 0b10110

    def test_empty_iterable_is_empty_mask(self):
        assert mask_of([]) == 0

    def test_doctests(self):
        import doctest

        from repro.core import bitmask

        failures, tested = doctest.testmod(bitmask)
        assert failures == 0
        assert tested > 0


class TestLowestBit:
    def test_lowest(self):
        assert lowest_bit(0b1000) == 3
        assert lowest_bit(0b1010) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lowest_bit(0)


class TestSingleBit:
    def test_true_for_powers_of_two(self):
        assert single_bit(1)
        assert single_bit(1 << 63)

    def test_false_for_zero_and_composites(self):
        assert not single_bit(0)
        assert not single_bit(0b11)


class TestSubtract:
    def test_removes_overlap_only(self):
        assert subtract(0b1110, 0b0110) == 0b1000

    def test_disjoint_is_identity(self):
        assert subtract(0b1100, 0b0011) == 0b1100

    def test_matches_partition_complement(self):
        c = 0b101101
        p = 0b100100
        assert subtract(c, p) | (c & p) == c

"""Explicit word-boundary tests for the packed bit-matrix kernels.

The numpy and sharded backends pack set masks into 64-bit words; the
boundary cases — collections of *exactly* 64 and 128 sets (no partial tail
word), masks whose tail words are all zero, and masks with stray bits
above ``n_sets`` — were previously only reachable by chance through the
randomized suites.  These tests pin them down directly; the stray-bit case
memorialises a real divergence they flushed out (``member_union`` on the
big-int backend crashed on bits above ``n_sets`` while the numpy packing
silently dropped them).
"""

from __future__ import annotations

import random

import pytest

from repro.core.collection import SetCollection
from repro.core.kernels import HAS_NATIVE, HAS_NUMPY

#: (backend, shards, shard_executor) triples covering every kernel family
#: and execution strategy available in this environment.
BACKENDS = [("bigint", None, None), ("bigint", 3, None)]
if HAS_NUMPY:
    BACKENDS += [("numpy", None, None), ("numpy", 4, None)]
if HAS_NATIVE:
    BACKENDS += [("native", None, None), ("native", 4, None)]
    from repro.core.kernels._native import ext as _ext

    if _ext.threaded_scan_available():
        BACKENDS.append(("native", 4, "native"))
if HAS_NUMPY:
    from repro.core.kernels import shm as _shm
    from repro.core.kernels.sharded import _fork_available

    if _shm.HAS_SHM and _fork_available():
        BACKENDS.append(("numpy", 3, "shm"))


def build(raw, backend, shards, executor) -> SetCollection:
    return SetCollection(
        raw, backend=backend, shards=shards, shard_executor=executor
    )


def exact_word_collection(n_sets: int, seed: int = 0) -> list[list[int]]:
    """``n_sets`` unique random sets over a small, tie-prone universe."""
    rng = random.Random(seed)
    universe = 30
    seen: set[frozenset[int]] = set()
    out: list[list[int]] = []
    while len(out) < n_sets:
        fs = frozenset(rng.sample(range(universe), rng.randint(2, 12)))
        if fs in seen:
            continue
        seen.add(fs)
        out.append(sorted(fs))
    return out


def reference(raw) -> SetCollection:
    return SetCollection(raw, backend="bigint")


@pytest.mark.parametrize(
    "n_sets", [63, 64, 65, 127, 128, 129, 255, 256, 257]
)
@pytest.mark.parametrize("backend,shards,executor", BACKENDS)
def test_exact_word_multiples(n_sets, backend, shards, executor):
    raw = exact_word_collection(n_sets, seed=n_sets)
    ref = reference(raw)
    coll = build(raw, backend, shards, executor)
    eids = list(range(-1, ref.n_entities + 2))
    # the highest set's bit lives at the very edge of the last word
    masks = [
        ref.full_mask,
        (1 << (n_sets - 1)) | 1,
        ref.full_mask & ~1,
        (1 << (n_sets - 1)) | (1 << (n_sets - 2)),
    ]
    for mask in masks:
        assert coll.informative_entities(mask) == ref.informative_entities(
            mask
        )
        assert coll.positive_counts(mask, eids) == ref.positive_counts(
            mask, eids
        )
        assert coll.partition_many(mask, eids) == ref.partition_many(
            mask, eids
        )


@pytest.mark.parametrize("backend,shards,executor", BACKENDS)
def test_all_zero_tail_words(backend, shards, executor):
    # 130 sets (3 words) but the probed masks select only word-0 sets, so
    # words 1-2 of the packed mask are entirely zero.
    raw = exact_word_collection(130, seed=9)
    ref = reference(raw)
    coll = build(raw, backend, shards, executor)
    word0 = (1 << 40) - 1
    masks = [word0, (1 << 63) | 1, 0b1010101]
    for mask in masks:
        assert coll.informative_entities(mask) == ref.informative_entities(
            mask
        )
        stats = coll.informative_stats(mask)
        assert all(0 < int(c) < mask.bit_count() for c in stats[1])


@pytest.mark.parametrize("backend,shards,executor", BACKENDS)
def test_tail_only_masks(backend, shards, executor):
    # The complementary case: word 0 of the packed mask entirely zero.
    raw = exact_word_collection(130, seed=11)
    ref = reference(raw)
    coll = build(raw, backend, shards, executor)
    tail_only = ref.full_mask & ~((1 << 64) - 1)
    assert coll.informative_entities(tail_only) == ref.informative_entities(
        tail_only
    )


@pytest.mark.parametrize("backend,shards,executor", BACKENDS)
def test_stray_bits_above_n_sets_scan(backend, shards, executor):
    # Regression: member_union (the small-mask scan path) used to index
    # out of range on mask bits >= n_sets on the big-int backend, while
    # the numpy packing dropped them — backends must agree instead.
    raw = exact_word_collection(65, seed=5)
    ref = reference(raw)
    coll = build(raw, backend, shards, executor)
    stray = ref.full_mask | (1 << 80) | (1 << 130)
    small_stray = 0b11 | (1 << 90)
    for mask in (stray, small_stray):
        assert coll.informative_entities(mask) == ref.informative_entities(
            mask
        )
        assert coll.entities_in(mask) == ref.entities_in(mask)


@pytest.mark.parametrize("backend,shards,executor", BACKENDS)
def test_single_set_and_empty_masks(backend, shards, executor):
    raw = exact_word_collection(64, seed=3)
    coll = build(raw, backend, shards, executor)
    assert coll.informative_entities(1 << 63) == []
    assert coll.informative_entities(0) == []
    assert coll.positive_counts(0, [0, 1, 2]) == [0, 0, 0]

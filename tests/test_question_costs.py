"""Tests for repro.core.question_costs (cost-aware questions)."""

import pytest

from repro.core.collection import SetCollection
from repro.core.construction import build_tree
from repro.core.lookahead import KLPSelector
from repro.core.question_costs import (
    CheapestEvenSelector,
    QuestionCosts,
    cost_optimal,
    expected_path_cost,
    worst_path_cost,
)
from repro.core.selection import InfoGainSelector


class TestQuestionCosts:
    def test_default_is_unit(self, fig1):
        costs = QuestionCosts.uniform(fig1)
        assert costs.cost(fig1.universe.id_of("d")) == 1.0

    def test_overrides_by_label(self, fig1):
        costs = QuestionCosts(fig1, {"d": 5.0, "e": 0.5})
        assert costs.cost(fig1.universe.id_of("d")) == 5.0
        assert costs.cost(fig1.universe.id_of("e")) == 0.5
        assert costs.cost(fig1.universe.id_of("b")) == 1.0

    def test_validation(self, fig1):
        with pytest.raises(ValueError):
            QuestionCosts(fig1, {"d": 0.0})
        with pytest.raises(ValueError):
            QuestionCosts(fig1, default=-1.0)


class TestPathCosts:
    def test_unit_costs_reduce_to_ad_and_h(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        costs = QuestionCosts.uniform(fig1)
        assert expected_path_cost(tree, costs) == pytest.approx(
            tree.average_depth()
        )
        assert worst_path_cost(tree, costs) == pytest.approx(
            float(tree.height())
        )

    def test_scaling_costs_scales_path_cost(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        doubled = QuestionCosts(fig1, default=2.0)
        assert expected_path_cost(tree, doubled) == pytest.approx(
            2.0 * tree.average_depth()
        )

    def test_expensive_root_hurts_every_leaf(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        root_label = fig1.universe.label(tree.entity)
        costs = QuestionCosts(fig1, {root_label: 10.0})
        # Root cost contributes fully to the expected cost.
        assert expected_path_cost(tree, costs) == pytest.approx(
            tree.average_depth() - 1.0 + 10.0
        )


class TestCheapestEvenSelector:
    def test_uniform_costs_match_infogain(self, fig1, synthetic_small):
        for coll in (fig1, synthetic_small):
            costs = QuestionCosts.uniform(coll)
            assert CheapestEvenSelector(costs).select(
                coll, coll.full_mask
            ) == InfoGainSelector().select(coll, coll.full_mask)

    def test_avoids_expensive_entities(self, fig1):
        # Make the 3/4 splitters (c, d) prohibitively expensive; the
        # selector must fall back to a cheaper informative entity.
        costs = QuestionCosts(fig1, {"c": 100.0, "d": 100.0})
        chosen = CheapestEvenSelector(costs).select(fig1, fig1.full_mask)
        assert fig1.universe.label(chosen) not in {"c", "d"}

    def test_collection_mismatch_rejected(self, fig1, synthetic_tiny):
        costs = QuestionCosts.uniform(fig1)
        with pytest.raises(ValueError):
            CheapestEvenSelector(costs).select(
                synthetic_tiny, synthetic_tiny.full_mask
            )

    def test_cost_aware_tree_beats_blind_tree_under_skewed_costs(self):
        """When the 'good' splitters are expensive, a cost-aware tree has
        lower expected cost than the cost-blind InfoGain tree."""
        coll = SetCollection(
            [
                {"mri", "blood", f"s{i}"} | ({"x"} if i % 2 else set())
                for i in range(8)
            ]
        )
        costs = QuestionCosts(
            coll, {"x": 50.0}, default=1.0
        )  # 'x' splits 4/4 but is expensive
        blind = build_tree(coll, InfoGainSelector())
        aware = build_tree(coll, CheapestEvenSelector(costs))
        assert expected_path_cost(aware, costs) <= expected_path_cost(
            blind, costs
        )


class TestCostOptimal:
    def test_unit_costs_match_optimal_ad(self, synthetic_tiny):
        from repro.core.bounds import AD
        from repro.core.optimal import optimal_cost

        costs = QuestionCosts.uniform(synthetic_tiny)
        assert cost_optimal(synthetic_tiny, costs) == pytest.approx(
            optimal_cost(synthetic_tiny, AD)
        )

    def test_no_tree_beats_the_optimum(self, synthetic_tiny):
        costs = QuestionCosts(
            synthetic_tiny, default=1.0
        )
        # Make a few entities expensive, deterministically.
        for eid in list(synthetic_tiny.entity_ids())[:5]:
            label = synthetic_tiny.universe.label(eid)
            costs = QuestionCosts(
                synthetic_tiny,
                {label: 3.0},
            )
        optimum = cost_optimal(synthetic_tiny, costs)
        for selector in (
            InfoGainSelector(),
            CheapestEvenSelector(costs),
            KLPSelector(k=2),
        ):
            tree = build_tree(synthetic_tiny, selector)
            assert expected_path_cost(tree, costs) >= optimum - 1e-9

    def test_size_guard(self, synthetic_small):
        costs = QuestionCosts.uniform(synthetic_small)
        with pytest.raises(ValueError):
            cost_optimal(synthetic_small, costs, max_sets=10)

    def test_cheap_entity_preferred_by_optimum(self):
        """Two interchangeable splits at different prices: the optimal
        cost must use the cheap one."""
        coll = SetCollection(
            [{"cheap", "exp", "a"}, {"b"}]
        )
        costs = QuestionCosts(coll, {"exp": 9.0, "cheap": 1.0})
        assert cost_optimal(coll, costs) == pytest.approx(1.0)

"""Tests for repro.core.analysis (tree diagnostics)."""

import pytest

from repro.core.analysis import (
    compare_trees,
    describe_tree,
    entity_usage,
    question_distribution,
    tree_stats,
)
from repro.core.construction import build_tree
from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector, RandomSelector
from repro.core.tree import DecisionTree


class TestTreeStats:
    def test_fig1_optimal_tree(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=3))
        stats = tree_stats(tree)
        assert stats.n_leaves == 7
        assert stats.n_internal == 6
        assert stats.average_depth == pytest.approx(20 / 7)
        assert stats.height == 3
        assert stats.min_depth == 2
        assert stats.depth_histogram == {2: 1, 3: 6}
        assert stats.ad_slack == pytest.approx(0.0)
        assert stats.h_slack == 0
        assert stats.is_perfectly_balanced

    def test_unbalanced_tree_detected(self):
        chain = DecisionTree.internal(
            0,
            DecisionTree.leaf(0),
            DecisionTree.internal(
                1,
                DecisionTree.leaf(1),
                DecisionTree.internal(
                    2, DecisionTree.leaf(2), DecisionTree.leaf(3)
                ),
            ),
        )
        stats = tree_stats(chain)
        assert not stats.is_perfectly_balanced
        assert stats.height == 3
        assert stats.min_depth == 1

    def test_entity_diversity(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        stats = tree_stats(tree)
        assert 0.0 < stats.entity_diversity <= 1.0


class TestQuestionDistribution:
    def test_counts_sum_to_candidates(self, synthetic_small):
        tree = build_tree(synthetic_small, KLPSelector(k=2))
        dist = question_distribution(tree)
        assert sum(dist.counts.values()) == synthetic_small.n_sets
        assert dist.mean == pytest.approx(tree.average_depth())
        assert dist.worst == tree.height()

    def test_intro_claim_log_k_questions(self, synthetic_small):
        """Intro: 'the number of interactions is ... closer to log k in
        most cases' — with a good tree, nearly all targets finish within
        log2(k) + 1 questions."""
        tree = build_tree(synthetic_small, KLPSelector(k=2))
        dist = question_distribution(tree)
        assert dist.within_log_bound(slack=1.0) > 0.9

    def test_worst_case_never_exceeds_k_minus_1(self, synthetic_small):
        """Intro: 'k - 1 in the worst cases'."""
        tree = build_tree(synthetic_small, RandomSelector(seed=1))
        dist = question_distribution(tree)
        assert dist.worst <= synthetic_small.n_sets - 1


class TestCompareTrees:
    def test_self_comparison_is_all_ties(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        cmp = compare_trees(tree, tree)
        assert cmp.ties == 7
        assert cmp.a_wins == cmp.b_wins == 0
        assert cmp.ad_improvement == 0.0
        assert not cmp.differing

    def test_better_tree_wins(self, synthetic_small):
        good = build_tree(synthetic_small, KLPSelector(k=2))
        bad = build_tree(synthetic_small, RandomSelector(seed=0))
        cmp = compare_trees(bad, good)
        assert cmp.ad_improvement >= 0.0
        assert cmp.ad_a == pytest.approx(bad.average_depth())
        assert cmp.ad_b == pytest.approx(good.average_depth())
        for idx, (da, db) in cmp.differing.items():
            assert da != db

    def test_mismatched_leaf_sets_rejected(self, fig1):
        whole = build_tree(fig1, KLPSelector(k=2))
        partial = build_tree(
            fig1, KLPSelector(k=2), fig1.supersets_of({"b", "c"})
        )
        with pytest.raises(ValueError):
            compare_trees(whole, partial)

    def test_win_counts_partition_targets(self, synthetic_small):
        a = build_tree(synthetic_small, InfoGainSelector())
        b = build_tree(synthetic_small, KLPSelector(k=3))
        cmp = compare_trees(a, b)
        assert cmp.a_wins + cmp.b_wins + cmp.ties == synthetic_small.n_sets


class TestEntityUsage:
    def test_usage_covers_internal_nodes(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        usage = entity_usage(tree, fig1)
        assert sum(u.times_asked for u in usage) == 6
        for u in usage:
            assert u.support == fig1.positive_count(
                fig1.full_mask, u.entity
            )

    def test_sorted_most_used_first(self, synthetic_small):
        tree = build_tree(synthetic_small, KLPSelector(k=2))
        usage = entity_usage(tree, synthetic_small)
        times = [u.times_asked for u in usage]
        assert times == sorted(times, reverse=True)


class TestDescribe:
    def test_report_contains_key_numbers(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=3))
        text = describe_tree(tree, fig1)
        assert "leaves: 7" in text
        assert "AD: 2.857" in text
        assert "most-asked entities" in text

    def test_report_without_collection(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        text = describe_tree(tree)
        assert "leaves: 7" in text
        assert "most-asked" not in text

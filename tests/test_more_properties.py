"""Second round of property-based tests: relational layer, robustness,
batches, and the discovery/tree duality.

These complement ``test_properties.py`` (which covers the paper's lemmas)
with invariants of the substrates the evaluation is built on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchDiscoverySession
from repro.core.collection import SetCollection
from repro.core.lookahead import KLPSelector
from repro.core.robust import (
    AnsweredQuestion,
    consistent_mask,
    rank_by_violations,
    violation_scores,
)
from repro.oracle import SimulatedUser
from repro.relational.generator import (
    GeneratorConfig,
    generate_candidate_queries,
)
from repro.relational.predicates import CNF, Clause, Eq, Gt, Lt
from repro.relational.table import Column, ColumnKind, Table

relaxed = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

collections = st.sets(
    st.frozensets(st.integers(0, 9), min_size=1, max_size=6),
    min_size=2,
    max_size=9,
).map(lambda sets: SetCollection(sorted(sets, key=sorted)))


# --------------------------------------------------------------------- #
# Relational predicates
# --------------------------------------------------------------------- #

rows = st.fixed_dictionaries(
    {
        "cat": st.sampled_from(["a", "b", "c", "d"]),
        "num": st.integers(0, 100),
    }
)


@given(row=rows, values=st.lists(st.sampled_from(["a", "b", "c", "d"]),
                                 min_size=1, max_size=3))
@relaxed
def test_clause_is_disjunction_of_literals(row, values):
    clause = Clause(tuple(Eq("cat", v) for v in values))
    assert clause.matches(row) == (row["cat"] in values)


@given(row=rows, lo=st.integers(-10, 110), hi=st.integers(-10, 110))
@relaxed
def test_interval_cnf_semantics(row, lo, hi):
    cnf = CNF([Gt("num", lo), Lt("num", hi)])
    assert cnf.matches(row) == (lo < row["num"] < hi)


@given(
    clauses=st.lists(
        st.sampled_from(
            [Eq("cat", "a"), Eq("cat", "b"), Gt("num", 10), Lt("num", 90)]
        ),
        min_size=1,
        max_size=4,
    )
)
@relaxed
def test_cnf_equality_is_order_insensitive(clauses):
    forward = CNF(clauses)
    backward = CNF(list(reversed(clauses)))
    assert forward == backward
    assert hash(forward) == hash(backward)
    assert forward.describe() == backward.describe()


@given(data=st.data())
@relaxed
def test_generated_candidates_always_contain_examples(data):
    """The Sec. 5.2.3 generator invariant under random tables."""
    n_rows = data.draw(st.integers(3, 12))
    table_rows = [
        {
            "cat": data.draw(st.sampled_from(["x", "y", "z"])),
            "num": data.draw(st.integers(0, 50)),
        }
        for _ in range(n_rows)
    ]
    table = Table(
        "t",
        [
            Column("cat", ColumnKind.CATEGORICAL),
            Column("num", ColumnKind.NUMERICAL),
        ],
        table_rows,
    )
    examples = data.draw(
        st.lists(
            st.integers(0, n_rows - 1), min_size=1, max_size=2, unique=True
        )
    )
    config = GeneratorConfig(
        reference_values={"num": (0, 10, 20, 30, 40, 50)},
        categorical=("cat",),
        numerical=("num",),
    )
    result = generate_candidate_queries(table, examples, config)
    outputs = result.evaluate_all()
    assert len(outputs) == result.n_queries
    for query, output in zip(result.queries, outputs):
        assert set(examples) <= output, query.sql()
        assert output == query.evaluate()


# --------------------------------------------------------------------- #
# Robustness layer
# --------------------------------------------------------------------- #


@given(coll=collections, data=st.data())
@relaxed
def test_truthful_answers_always_keep_target_consistent(coll, data):
    target = data.draw(st.integers(0, coll.n_sets - 1))
    members = coll.sets[target]
    entities = [e for e, _ in coll.informative_entities(coll.full_mask)]
    asked = data.draw(
        st.lists(st.sampled_from(entities), min_size=1, max_size=6)
    )
    answers = [
        AnsweredQuestion(e, e in members, 1.0) for e in asked
    ]
    mask = consistent_mask(coll, coll.full_mask, answers)
    assert mask & (1 << target)
    assert violation_scores(coll, coll.full_mask, answers)[target] == 0.0


@given(coll=collections, data=st.data())
@relaxed
def test_single_lie_costs_exactly_its_confidence(coll, data):
    target = data.draw(st.integers(0, coll.n_sets - 1))
    members = coll.sets[target]
    entities = [e for e, _ in coll.informative_entities(coll.full_mask)]
    lie_about = data.draw(st.sampled_from(entities))
    confidence = data.draw(
        st.floats(0.1, 1.0, allow_nan=False, allow_infinity=False)
    )
    answers = [
        AnsweredQuestion(lie_about, lie_about not in members, confidence)
    ]
    scores = violation_scores(coll, coll.full_mask, answers)
    assert scores[target] == pytest.approx(confidence)
    ranking = rank_by_violations(coll, coll.full_mask, answers)
    scores_sorted = [s for _, s in ranking]
    assert scores_sorted == sorted(scores_sorted)


# --------------------------------------------------------------------- #
# Batch discovery duality
# --------------------------------------------------------------------- #


@given(coll=collections, b=st.integers(1, 4), data=st.data())
@relaxed
def test_batch_discovery_always_finds_the_target(coll, b, data):
    target = data.draw(st.integers(0, coll.n_sets - 1))
    session = BatchDiscoverySession(coll, batch_size=b)
    result = session.run(SimulatedUser(coll, target_index=target))
    assert result.resolved
    assert result.target == target
    # Interactions never exceed what single questions would need.
    assert result.n_batches <= coll.n_sets


@given(coll=collections, data=st.data())
@relaxed
def test_posterior_session_agrees_with_plain_on_uniform(coll, data):
    from repro.core.posterior import PosteriorDiscoverySession
    from repro.core.priors import Prior

    target = data.draw(st.integers(0, coll.n_sets - 1))
    session = PosteriorDiscoverySession(
        coll, Prior.uniform(coll), selector=KLPSelector(k=2)
    )
    result = session.run(SimulatedUser(coll, target_index=target))
    assert result.top == target
    assert result.top_probability == pytest.approx(1.0)

"""Tests for repro.core.selection (Sec. 4.2 strategies and Lemma 4.3)."""

import pytest

from repro.core.selection import (
    IndistinguishablePairsSelector,
    InfoGainSelector,
    LB1Selector,
    MostEvenSelector,
    NoInformativeEntityError,
    RandomSelector,
    indistinguishable_pairs,
    information_gain,
    unevenness,
)
from repro.core.bounds import AD, H


class TestScoreFunctions:
    def test_information_gain_even_split_is_one_bit(self):
        assert information_gain(8, 4) == pytest.approx(1.0)

    def test_information_gain_degenerate_split_is_zero(self):
        assert information_gain(8, 0) == 0.0
        assert information_gain(8, 8) == 0.0

    def test_information_gain_monotone_toward_even(self):
        gains = [information_gain(10, k) for k in range(1, 6)]
        assert gains == sorted(gains)

    def test_indistinguishable_pairs_matches_eq10(self):
        # Eq. 10 for |C1|=3, |C2|=4: (3*2 + 4*3)/2 = 9.
        assert indistinguishable_pairs(3, 4) == 9

    def test_indistinguishable_pairs_even_is_minimal(self):
        values = [indistinguishable_pairs(k, 10 - k) for k in range(1, 10)]
        assert min(values) == indistinguishable_pairs(5, 5)

    def test_unevenness(self):
        assert unevenness(7, 3) == 1
        assert unevenness(7, 4) == 1
        assert unevenness(8, 4) == 0
        assert unevenness(8, 1) == 6


class TestFig1Selection:
    """On Fig. 1, the most even split is 3/4, achieved by c and d; the
    deterministic tie-break (entity id) picks whichever was interned
    first — 'c' appears before 'd' in S1's iteration-independent sorted
    interning?  No: interning follows input order, so we assert on the
    *split*, not the identity."""

    def _split_sizes(self, coll, eid):
        n1 = coll.positive_count(coll.full_mask, eid)
        return sorted([n1, coll.n_sets - n1])

    @pytest.mark.parametrize(
        "selector",
        [
            MostEvenSelector(),
            InfoGainSelector(),
            IndistinguishablePairsSelector(),
            LB1Selector(AD),
            LB1Selector(H),
        ],
        ids=lambda s: s.name,
    )
    def test_all_strategies_pick_a_most_even_split(self, fig1, selector):
        chosen = selector.select(fig1, fig1.full_mask)
        assert self._split_sizes(fig1, chosen) == [3, 4]
        assert fig1.universe.label(chosen) in {"c", "d"}

    def test_lemma_4_3_all_strategies_agree(self, fig1, synthetic_small):
        """Lemma 4.3: InfoGain, Indg and LB1 select the same entity."""
        selectors = [
            MostEvenSelector(),
            InfoGainSelector(),
            IndistinguishablePairsSelector(),
            LB1Selector(AD),
        ]
        for coll in (fig1, synthetic_small):
            masks = [coll.full_mask]
            # Also check a few sub-collections.
            first = selectors[0].select(coll, coll.full_mask)
            masks.extend(coll.partition(coll.full_mask, first))
            for mask in masks:
                if coll.count(mask) < 2:
                    continue
                choices = {s.select(coll, mask) for s in selectors}
                assert len(choices) == 1, (
                    f"strategies disagree on mask {mask:b}: {choices}"
                )


class TestExcludeAndErrors:
    def test_exclude_forces_second_best(self, fig1):
        best = MostEvenSelector().select(fig1, fig1.full_mask)
        second = MostEvenSelector().select(
            fig1, fig1.full_mask, exclude={best}
        )
        assert second != best
        # The other 3/4 splitter (c or d) is next.
        n1 = fig1.positive_count(fig1.full_mask, second)
        assert sorted([n1, 7 - n1]) == [3, 4]

    def test_all_excluded_raises(self, fig1):
        informative = {
            e for e, _ in fig1.informative_entities(fig1.full_mask)
        }
        with pytest.raises(NoInformativeEntityError):
            MostEvenSelector().select(
                fig1, fig1.full_mask, exclude=informative
            )

    def test_singleton_subcollection_raises(self, fig1):
        with pytest.raises(NoInformativeEntityError):
            MostEvenSelector().select(fig1, 0b1)

    def test_candidates_parameter_narrows_choice(self, fig1):
        e = fig1.universe.id_of("e")  # 1/6 split: poor but only option
        assert (
            MostEvenSelector().select(fig1, fig1.full_mask, candidates=[e])
            == e
        )


class TestRandomSelector:
    def test_seeded_reproducibility(self, fig1):
        a = RandomSelector(seed=3)
        b = RandomSelector(seed=3)
        seq_a = [a.select(fig1, fig1.full_mask) for _ in range(5)]
        seq_b = [b.select(fig1, fig1.full_mask) for _ in range(5)]
        assert seq_a == seq_b

    def test_reset_restarts_stream(self, fig1):
        s = RandomSelector(seed=3)
        first = [s.select(fig1, fig1.full_mask) for _ in range(3)]
        s.reset()
        again = [s.select(fig1, fig1.full_mask) for _ in range(3)]
        assert first == again

    def test_only_informative_entities_selected(self, fig1):
        s = RandomSelector(seed=0)
        a = fig1.universe.id_of("a")
        for _ in range(20):
            assert s.select(fig1, fig1.full_mask) != a


class TestNames:
    def test_selector_names(self):
        assert MostEvenSelector().name == "MostEven"
        assert InfoGainSelector().name == "InfoGain"
        assert IndistinguishablePairsSelector().name == "Indg"
        assert LB1Selector(H).name == "LB1[H]"
        assert "MostEven" in repr(MostEvenSelector())

"""Tests for repro.core.discovery (Algorithm 2, sessions, results)."""

import pytest

from repro.core.construction import build_tree
from repro.core.discovery import (
    DiscoverySession,
    TreeDiscoverySession,
    discover,
)
from repro.core.lookahead import KLPSelector
from repro.core.selection import MostEvenSelector
from repro.oracle import ScriptedUser, SimulatedUser, UnsureUser


class TestCandidateSeeding:
    def test_initial_set_filters_candidates(self, fig1):
        session = DiscoverySession(
            fig1, MostEvenSelector(), initial={"b", "c"}
        )
        names = {fig1.name_of(i) for i in session.candidates}
        assert names == {"S1", "S3", "S4"}

    def test_empty_initial_keeps_all(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        assert session.n_candidates == 7

    def test_initial_ids(self, fig1):
        g = fig1.universe.id_of("g")
        session = DiscoverySession(
            fig1, MostEvenSelector(), initial_ids=[g]
        )
        assert {fig1.name_of(i) for i in session.candidates} == {"S4", "S7"}

    def test_unknown_initial_gives_no_candidates(self, fig1):
        session = DiscoverySession(
            fig1, MostEvenSelector(), initial={"nope"}
        )
        assert session.n_candidates == 0
        assert session.finished


class TestPullStyle:
    def test_question_answer_loop(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        target = fig1.sets[3]  # S4
        while not session.finished:
            entity = session.next_question()
            session.answer(entity in target)
        assert session.candidates == [3]

    def test_next_question_is_idempotent(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        assert session.next_question() == session.next_question()

    def test_answer_without_question_raises(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        with pytest.raises(RuntimeError):
            session.answer(True)

    def test_question_after_finish_raises(self, fig1):
        session = DiscoverySession(
            fig1, MostEvenSelector(), initial={"e"}
        )  # only S2
        assert session.finished
        with pytest.raises(RuntimeError):
            session.next_question()

    def test_question_label_helper(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        label = session.next_question_label()
        assert label in set("bcdefghijk")


class TestRunWithOracle:
    @pytest.mark.parametrize("target", range(7))
    def test_every_target_is_discoverable(self, fig1, target):
        result = discover(
            fig1,
            KLPSelector(k=2),
            SimulatedUser(fig1, target_index=target),
        )
        assert result.resolved
        assert result.target == target

    def test_questions_match_tree_depth(self, fig1):
        """Online discovery with selector S asks exactly as many questions
        as the depth of the target's leaf in the offline tree built with
        S (same deterministic selections)."""
        selector = KLPSelector(k=2)
        tree = build_tree(fig1, KLPSelector(k=2))
        depths = tree.leaf_depths()
        for target in range(7):
            result = discover(
                fig1,
                KLPSelector(k=2),
                SimulatedUser(fig1, target_index=target),
            )
            assert result.n_questions == depths[target]

    def test_transcript_records_shrinkage(self, fig1):
        result = discover(
            fig1, KLPSelector(k=2), SimulatedUser(fig1, target_index=0)
        )
        for step in result.transcript:
            assert step.candidates_after <= step.candidates_before
        assert result.transcript[-1].candidates_after == 1

    def test_max_questions_halt(self, synthetic_small):
        result = discover(
            synthetic_small,
            MostEvenSelector(),
            SimulatedUser(synthetic_small, target_index=0),
            max_questions=2,
        )
        assert result.n_questions == 2
        assert not result.resolved
        assert 0 in [c for c in result.candidates]

    def test_seconds_recorded(self, fig1):
        result = discover(
            fig1, KLPSelector(k=2), SimulatedUser(fig1, target_index=2)
        )
        assert result.seconds >= 0.0

    def test_target_accessor_requires_resolution(self, synthetic_small):
        result = discover(
            synthetic_small,
            MostEvenSelector(),
            SimulatedUser(synthetic_small, target_index=0),
            max_questions=1,
        )
        with pytest.raises(ValueError):
            _ = result.target


class TestDontKnow:
    def test_dont_know_keeps_candidates(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        before = session.n_candidates
        session.next_question()
        session.answer(None)
        assert session.n_candidates == before
        assert session.transcript[0].answer is None

    def test_dont_know_excludes_entity(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        first = session.next_question()
        session.answer(None)
        assert session.next_question() != first

    def test_all_unsure_terminates_unresolved(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        result = session.run(lambda entity: None)
        assert not result.resolved
        assert result.n_questions == 0
        assert result.n_unanswered == len(result.transcript)

    def test_unsure_user_still_converges_with_enough_entities(
        self, synthetic_small
    ):
        oracle = UnsureUser(
            synthetic_small, 0.2, target_index=4, seed=11
        )
        result = discover(synthetic_small, MostEvenSelector(), oracle)
        # With 20% don't-knows there are enough alternative entities to
        # finish on this collection.
        assert result.resolved
        assert result.target == 4


class TestTreeDiscovery:
    def test_follows_tree_path(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        session = TreeDiscoverySession(fig1, tree)
        result = session.run(SimulatedUser(fig1, target_index=6))
        assert result.target == 6
        assert result.n_questions == tree.leaf_depths()[6]

    def test_rejects_dont_know(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        session = TreeDiscoverySession(fig1, tree)
        with pytest.raises(ValueError):
            session.run(lambda e: None)

    def test_manual_stepping(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2))
        session = TreeDiscoverySession(fig1, tree)
        target = fig1.sets[1]
        while not session.finished:
            session.answer(session.next_question() in target)
        assert session.n_questions == tree.leaf_depths()[1]

    def test_next_question_at_leaf_raises(self, fig1):
        tree = build_tree(fig1, KLPSelector(k=2), 0b1)
        session = TreeDiscoverySession(fig1, tree)
        with pytest.raises(RuntimeError):
            session.next_question()


class TestScriptedOracle:
    def test_scripted_by_label(self, fig1):
        # Fig. 2a: d? yes, e? no-ish path... script by labels directly.
        session = DiscoverySession(fig1, MostEvenSelector())
        user = ScriptedUser(
            {lbl: lbl in fig1.set_labels(0) for lbl in "abcdefghijk"},
            collection=fig1,
        )
        result = session.run(user)
        assert result.target == 0

    def test_scripted_sequence_exhaustion(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        with pytest.raises(IndexError):
            session.run(ScriptedUser([True]))


class TestDiscoveryTimeAccounting:
    def test_seconds_include_informative_scan_on_fresh_mask(self, fig1):
        # Regression: the first informative scan of each sub-collection
        # happens inside `finished` (via _has_askable_entity), and the
        # selector afterwards hits the per-mask cache — so that scan must
        # be timed or DiscoveryResult.seconds undercounts discovery time.
        fig1.clear_caches()
        session = DiscoverySession(fig1, MostEvenSelector())
        assert not session.finished  # triggers the scan on the fresh mask
        assert session.result().seconds > 0.0

    def test_finished_does_not_rescan_while_question_pending(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        session.next_question()
        fig1.clear_caches()
        # With a pending question, `finished` must not trigger a re-scan.
        assert not session.finished
        assert fig1.cached_mask_count() == 0

    def test_full_run_accumulates_scan_time(self, fig1):
        fig1.clear_caches()
        result = discover(
            fig1, MostEvenSelector(), SimulatedUser(fig1, target_index=2)
        )
        assert result.seconds > 0.0


class TestEngineHooks:
    def test_push_question_behaves_like_next_question(self, fig1):
        reference = DiscoverySession(fig1, MostEvenSelector())
        entity = reference.next_question()
        session = DiscoverySession(fig1, MostEvenSelector())
        session.push_question(entity)
        assert session.pending_entity == entity
        assert session.next_question() == entity  # idempotent passthrough
        session.answer(True)
        assert session.transcript[0].entity == entity

    def test_push_question_rejects_second_pending(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        session.push_question(3)
        with pytest.raises(RuntimeError):
            session.push_question(4)

    def test_excluded_property_reflects_dont_know(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        assert session.excluded == frozenset()
        entity = session.next_question()
        session.answer(None)
        assert session.excluded == frozenset({entity})

    def test_add_seconds_accumulates(self, fig1):
        session = DiscoverySession(fig1, MostEvenSelector())
        before = session.result().seconds
        session.add_seconds(0.5)
        assert session.result().seconds >= before + 0.5

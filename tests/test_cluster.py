"""Tests for multi-worker session sharding (repro.serve.cluster).

Five contracts hold the cluster to the single-process engine:

* **routing** — sessions land on ``crc32(sid) % N`` and stay there
  across reconnects, so a re-attach always finds its state;
* **parity** — transcripts served by worker replicas are byte-identical
  to sequential ``DiscoverySession.run`` goldens (the same serialization
  ``tests/test_http.py`` pins for the one-process edge);
* **delta agreement** — ``apply_delta_spec`` returns only after every
  worker acked the new epoch, so replicas never diverge by more than the
  one in-flight delta;
* **failure isolation** — killing one worker turns only *its* sessions
  into ``worker_lost`` errors, leaves siblings untouched, and the
  supervisor restarts the dead worker (with delta catch-up) in place;
* **drain** — ``aclose`` reaps every child with exit code 0.

The cluster boots real ``multiprocessing`` spawn children, so these
tests exercise the actual pipe protocol, reader threads and supervisor
— not mocks.  Everything runs through ``asyncio.run`` inside sync
tests, mirroring ``tests/test_http.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from contextlib import asynccontextmanager
from pathlib import Path

import pytest

from repro.data.synthetic import SyntheticConfig, generate_collection
from repro.oracle import SimulatedUser
from repro.serve import DiscoveryApp, EmbeddedServer
from repro.serve.client import (
    HttpSessionClient,
    WorkerLostError,
)
from repro.serve.cluster import ClusterService, worker_index_for
from repro.soak.config import SoakConfig
from repro.soak.faults import build_fault_plan
from repro.soak.invariants import InvariantChecker

from test_http import (
    sequential_golden,
    serialize_payloads,
)

SYNTH = {"n_sets": 60, "size_lo": 10, "size_hi": 16, "overlap": 0.8, "seed": 7}


def make_collection():
    return generate_collection(SyntheticConfig(**SYNTH), backend="bigint")


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=180))


@asynccontextmanager
async def cluster(n_workers: int = 2, **kwargs):
    service = ClusterService(
        make_collection(),
        workers=n_workers,
        collection_spec={"synthetic": SYNTH},
        backend="bigint",
        flush_after_ms=1.0,
        **kwargs,
    )
    async with service:
        yield service


async def drive_session(service: ClusterService, target: int) -> tuple[str, dict]:
    """One full session against the cluster; returns (sid, result payload)."""
    collection = service.collection
    oracle = SimulatedUser(collection, target_index=target)
    created = await service.spawn_from_spec({"selector": "most-even"})
    sid = created["session"]
    while (entity := await service.ask(sid)) is not None:
        await service.answer(sid, oracle(entity))
    return sid, await service.result(sid)


# --------------------------------------------------------------------- #
# Routing
# --------------------------------------------------------------------- #


class TestRouting:
    def test_worker_index_is_stable_and_covers_all_workers(self):
        sids = [f"session-{i:04x}" for i in range(256)]
        for n in (1, 2, 3, 4, 7):
            first = [worker_index_for(s, n) for s in sids]
            again = [worker_index_for(s, n) for s in sids]
            assert first == again, "routing must be deterministic"
            assert all(0 <= w < n for w in first)
            if n > 1:
                assert len(set(first)) == n, (
                    f"256 ids should spread across all {n} workers"
                )

    def test_reconnect_routes_to_the_same_worker(self):
        """Half the session on one TCP connection, half on a fresh one."""
        collection = make_collection()
        target = 19
        golden = sequential_golden(collection, [target])

        async def scenario():
            async with cluster() as service:
                app = DiscoveryApp(service, require_auth=True)
                async with EmbeddedServer(app, port=0) as server:
                    oracle = SimulatedUser(collection, target_index=target)
                    first = HttpSessionClient(server.host, server.port)
                    async with first:
                        await first.create(selector="most-even")
                        entity = await first.next_question()
                        await first.send_answer(oracle(entity))
                    # a brand-new connection, same session id + token:
                    # the consistent hash must land on the owning worker
                    second = HttpSessionClient(server.host, server.port)
                    async with second:
                        second.session = first.session
                        second.token = first.token
                        while (
                            entity := await second.next_question()
                        ) is not None:
                            await second.send_answer(oracle(entity))
                        return await second.result()

        payload = run(scenario())
        assert serialize_payloads([payload]) == golden


# --------------------------------------------------------------------- #
# Parity
# --------------------------------------------------------------------- #


class TestClusterParity:
    TARGETS = [0, 7, 19, 33, 41, 52]

    def test_sharded_sessions_match_sequential_golden(self):
        collection = make_collection()
        golden = sequential_golden(collection, self.TARGETS)

        async def scenario():
            async with cluster() as service:
                sids, payloads = [], []
                for target in self.TARGETS:
                    sid, payload = await drive_session(service, target)
                    sids.append(sid)
                    payloads.append(payload)
                owners = {worker_index_for(s, service.n_workers) for s in sids}
                return payloads, owners

        payloads, owners = run(scenario())
        assert serialize_payloads(payloads) == golden
        assert owners == {0, 1}, (
            "six sessions should have exercised both workers "
            f"(got only {owners})"
        )


# --------------------------------------------------------------------- #
# Delta fan-out
# --------------------------------------------------------------------- #


class TestDeltaFanout:
    def test_delta_acked_by_every_worker_before_returning(self):
        async def scenario():
            async with cluster() as service:
                outcome = await service.apply_delta_spec(
                    {"add": {"delta-new": ["e-1", "e-2", "e-3"]}}
                )
                health = await service.health_info()
                return outcome, health

        outcome, health = run(scenario())
        assert outcome["epoch"] == 1
        assert outcome["applied"] is True
        assert outcome["workers_acked"] == 2
        assert health["epoch"] == 1
        assert [w["epoch"] for w in health["workers"]] == [1, 1]

    def test_sessions_spawned_after_delta_see_the_new_epoch(self):
        async def scenario():
            async with cluster() as service:
                await service.apply_delta_spec(
                    {"add": {"delta-new": ["e-1", "e-2"]}}
                )
                created = await service.spawn_from_spec(
                    {"selector": "most-even"}
                )
                return created

        created = run(scenario())
        assert created["epoch"] == 1


# --------------------------------------------------------------------- #
# Worker death: 503, sibling isolation, restart
# --------------------------------------------------------------------- #


class TestWorkerDeath:
    def test_kill_maps_to_worker_lost_and_spares_siblings(self):
        collection = make_collection()

        async def scenario():
            async with cluster() as service:
                app = DiscoveryApp(service, require_auth=True)
                async with EmbeddedServer(app, port=0) as server:
                    # open sessions until both workers own at least one
                    clients: dict[int, HttpSessionClient] = {}
                    while len(clients) < 2:
                        client = HttpSessionClient(server.host, server.port)
                        await client.conn.connect()
                        await client.create(selector="most-even")
                        owner = worker_index_for(client.session, 2)
                        if owner in clients:
                            await client.conn.aclose()
                        else:
                            clients[owner] = client
                    victim, sibling = clients[0], clients[1]

                    os.kill(service.workers[0].proc.pid, signal.SIGKILL)
                    # the victim's next poll must be a 503 worker_lost
                    # (never a hang, never a 500)
                    lost = None
                    try:
                        for _ in range(50):
                            await victim.next_question()
                            await asyncio.sleep(0.05)
                    except WorkerLostError as exc:
                        lost = exc
                    assert lost is not None, "expected a worker_lost error"

                    # the sibling's session is undisturbed end to end
                    oracle = SimulatedUser(
                        collection,
                        target_index=int(sibling.session[:4], 16)
                        % collection.n_sets,
                    )
                    while (
                        entity := await sibling.next_question()
                    ) is not None:
                        await sibling.send_answer(oracle(entity))
                    await sibling.result()

                    # the supervisor restarts worker 0 in place
                    deadline = time.monotonic() + 60
                    while time.monotonic() < deadline:
                        health = await service.health_info()
                        mine = health["workers"][0]
                        if mine["up"] and mine["restarts"] == 1:
                            break
                        await asyncio.sleep(0.1)
                    else:
                        raise AssertionError(
                            f"worker 0 never came back: {health}"
                        )
                    assert health["workers"][1]["restarts"] == 0

                    # and fresh sessions on the restarted worker work
                    _, payload = await drive_session(service, target=7)
                    assert payload["n_questions"] > 0

                    await victim.conn.aclose()
                    await sibling.conn.aclose()

        run(scenario())

    def test_restarted_worker_catches_up_missed_deltas(self):
        async def scenario():
            async with cluster() as service:
                await service.apply_delta_spec(
                    {"add": {"delta-one": ["x-1", "x-2"]}}
                )
                os.kill(service.workers[1].proc.pid, signal.SIGKILL)
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    health = await service.health_info()
                    mine = health["workers"][1]
                    if mine["up"] and mine["restarts"] == 1:
                        return health
                    await asyncio.sleep(0.1)
                raise AssertionError(f"worker 1 never came back: {health}")

        health = run(scenario())
        # the replayed delta chain brings the fresh replica to epoch 1
        assert [w["epoch"] for w in health["workers"]] == [1, 1]


# --------------------------------------------------------------------- #
# Drain
# --------------------------------------------------------------------- #


class TestDrain:
    def test_aclose_reaps_every_child(self):
        async def scenario():
            service = ClusterService(
                make_collection(),
                workers=2,
                collection_spec={"synthetic": SYNTH},
                backend="bigint",
            )
            async with service:
                _, payload = await drive_session(service, target=3)
                assert payload["resolved"] is True
                procs = [h.proc for h in service.workers]
            return [p.exitcode for p in procs]

        exitcodes = run(scenario())
        assert exitcodes == [0, 0], (
            f"drained workers must exit cleanly, got {exitcodes}"
        )

    def test_draining_cluster_refuses_new_sessions(self):
        async def scenario():
            async with cluster() as service:
                service.begin_drain()
                assert service.accepting is False
                try:
                    await service.spawn_from_spec({"selector": "most-even"})
                except Exception as exc:
                    return type(exc).__name__
                return None

        assert run(scenario()) is not None


# --------------------------------------------------------------------- #
# Metrics aggregation
# --------------------------------------------------------------------- #


class TestClusterMetrics:
    def test_prometheus_gains_per_worker_families(self):
        async def scenario():
            async with cluster() as service:
                await drive_session(service, target=11)
                return await service.metrics.arender_prometheus()

        text = run(scenario())
        assert "repro_cluster_workers 2" in text
        assert 'repro_worker_up{worker="0"} 1' in text
        assert 'repro_worker_up{worker="1"} 1' in text
        assert 'repro_worker_epoch{worker="0"} 0' in text
        assert 'repro_worker_restarts_total{worker="0"} 0' in text
        # the single-process families survive aggregation unchanged
        assert "repro_selections_total" in text
        assert "repro_collection_epoch 0" in text
        assert 'repro_sessions{phase="finished"} 1' in text


# --------------------------------------------------------------------- #
# --workers 0 stays byte-identical to the PR 6 wire goldens
# --------------------------------------------------------------------- #


_READY = re.compile(r"^serving on http://([\d.]+):(\d+)$")


class TestWorkersZeroGolden:
    TARGETS = [0, 7, 19, 33, 41, 52]

    def test_cli_workers_zero_wire_transcripts_unchanged(self):
        """``--workers 0`` must serve the exact PR 6 in-process edge."""
        collection = make_collection()
        golden = sequential_golden(collection, self.TARGETS)
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--workers",
                "0",
                "--backend",
                "bigint",
                "--n-sets",
                str(SYNTH["n_sets"]),
                "--size-lo",
                str(SYNTH["size_lo"]),
                "--size-hi",
                str(SYNTH["size_hi"]),
                "--overlap",
                str(SYNTH["overlap"]),
                "--seed",
                str(SYNTH["seed"]),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            assert proc.stdout is not None
            deadline = time.monotonic() + 60
            while True:
                assert time.monotonic() < deadline, "no readiness line"
                line = proc.stdout.readline()
                assert line or proc.poll() is None, "server exited early"
                if match := _READY.match(line.strip()):
                    host, port = match.group(1), int(match.group(2))
                    break

            async def over_wire():
                async def one(target):
                    oracle = SimulatedUser(collection, target_index=target)
                    async with HttpSessionClient(host, port) as client:
                        await client.create(selector="most-even")
                        return await client.run(oracle)

                return await asyncio.gather(
                    *(one(t) for t in self.TARGETS)
                )

            payloads = run(over_wire())
            assert serialize_payloads(payloads) == golden
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0


# --------------------------------------------------------------------- #
# Soak plumbing for the cluster (pure, no processes)
# --------------------------------------------------------------------- #


class TestSoakClusterPlumbing:
    def test_worker_kill_fault_needs_enough_workers(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            SoakConfig(faults=("worker-kill",), workers=1)
        with pytest.raises(ValueError, match="server"):
            SoakConfig(mode="inprocess", workers=2)
        cfg = SoakConfig(faults=("worker-kill",), workers=2)
        assert cfg.workers == 2

    def test_fault_plan_round_robins_victims(self):
        cfg = SoakConfig(
            seed=42,
            duration_s=120,
            faults=("worker-kill",),
            workers=3,
        )
        kills = [
            e for e in build_fault_plan(cfg) if e.kind == "worker-kill"
        ]
        assert len(kills) == 6
        assert [e.size for e in kills] == [0, 1, 2, 0, 1, 2]
        assert all(0 < e.at < cfg.duration_s for e in kills)

    def test_replica_divergence_invariant(self):
        checker = InvariantChecker(epoch_cap=4, rss_limit_mb_s=1.0)
        # mid-run: one in-flight delta apart is fine
        checker.check_worker_epochs(
            {"0": 3, "1": 4}, 4, quiesced=False
        )
        assert checker.ok
        # mid-run: a two-epoch spread is divergence
        checker.check_worker_epochs(
            {"0": 2, "1": 4}, 4, quiesced=False
        )
        assert not checker.ok
        assert checker.violations[0].name == "replica_divergence"

        quiet = InvariantChecker(epoch_cap=4, rss_limit_mb_s=1.0)
        # quiesced: everyone must sit exactly at the edge epoch
        quiet.check_worker_epochs({"0": 4, "1": 4}, 4, quiesced=True)
        assert quiet.ok
        quiet.check_worker_epochs({"0": 3, "1": 4}, 4, quiesced=True)
        assert not quiet.ok
        # no workers scraped (e.g. --workers 0) is never a violation
        empty = InvariantChecker(epoch_cap=4, rss_limit_mb_s=1.0)
        empty.check_worker_epochs({}, 9, quiesced=True)
        assert empty.ok

"""Boundary conditions and failure injection across the stack.

Each test here exercises a corner the happy-path suites never reach:
degenerate collections, adversarial set structures, oracle misbehaviour,
and resource guards.
"""

import pytest

from repro.core.bounds import AD, H
from repro.core.collection import SetCollection
from repro.core.construction import build_tree
from repro.core.discovery import DiscoverySession, discover
from repro.core.lookahead import KLPSelector
from repro.core.selection import InfoGainSelector, MostEvenSelector
from repro.oracle import SimulatedUser


class TestDegenerateCollections:
    def test_two_identical_but_for_one_entity(self):
        coll = SetCollection([{"x", "y"}, {"x", "y", "z"}])
        tree = build_tree(coll, KLPSelector(k=2))
        assert tree.height() == 1
        result = discover(
            coll, KLPSelector(k=2), SimulatedUser(coll, target_index=0)
        )
        assert result.target == 0
        assert result.n_questions == 1

    def test_disjoint_sets_need_linear_questions(self):
        """Fully disjoint sets: every question eliminates one set (the
        paper's worst-case discussion in Sec. 5.3.4)."""
        n = 9
        coll = SetCollection([{f"only{i}"} for i in range(n)])
        tree = build_tree(coll, MostEvenSelector())
        assert tree.height() == n - 1
        # Average is about n/2 as the paper says ("roughly n/2 questions
        # on average").
        assert n / 2 - 1.5 <= tree.average_depth() <= n / 2 + 1.5

    def test_power_set_needs_log_questions(self):
        import itertools

        base = ["p", "q", "r", "s"]
        sets = []
        for r in range(len(base) + 1):
            for combo in itertools.combinations(base, r):
                sets.append(set(combo) | {"shared"})
        coll = SetCollection(sets)  # 16 unique sets
        tree = build_tree(coll, KLPSelector(k=2, metric=H))
        assert tree.height() == 4  # ask each base entity once

    def test_empty_set_member_is_discoverable(self):
        coll = SetCollection([set(), {"x"}, {"x", "y"}])
        result = discover(
            coll, KLPSelector(k=2), SimulatedUser(coll, target_index=0)
        )
        assert result.target == 0

    def test_collection_with_hashable_tuple_entities(self):
        coll = SetCollection(
            [{("r", 1), ("r", 2)}, {("r", 1), ("r", 3)}]
        )
        result = discover(
            coll,
            KLPSelector(k=2),
            SimulatedUser(coll, target_index=1),
        )
        assert result.target == 1

    def test_single_set_collection_discovery_is_trivial(self):
        coll = SetCollection([{"x", "y"}])
        session = DiscoverySession(coll, MostEvenSelector())
        assert session.finished
        result = session.result()
        assert result.resolved
        assert result.target == 0
        assert result.n_questions == 0


class TestAdversarialOracles:
    def test_lying_oracle_lands_on_wrong_but_consistent_set(self, fig1):
        """An oracle answering for S2 when the 'true' target is S1 must
        deterministically deliver S2 — discovery trusts answers."""
        liar = SimulatedUser(fig1, target_index=1)
        result = discover(fig1, KLPSelector(k=2), liar)
        assert result.target == 1

    def test_candidates_never_empty_whatever_the_answers(self, fig1):
        """Algorithm 2 invariant: questions are about *informative*
        entities, so both answer branches are non-empty — no answer
        sequence, however wrong, can empty the candidate set (that is
        why the robust session re-applies constraints instead)."""
        for pattern in ("yes", "no", "alternate"):
            session = DiscoverySession(fig1, MostEvenSelector())
            toggle = [True]

            def scripted(entity):
                if pattern == "yes":
                    return True
                if pattern == "no":
                    return False
                toggle[0] = not toggle[0]
                return toggle[0]

            result = session.run(scripted)
            assert len(result.candidates) >= 1
            assert result.resolved

    def test_oracle_exception_propagates_cleanly(self, fig1):
        class Boom(Exception):
            pass

        def exploding(entity):
            raise Boom("network down")

        session = DiscoverySession(fig1, MostEvenSelector())
        with pytest.raises(Boom):
            session.run(exploding)
        # The session is still usable afterwards.
        assert session.n_candidates == 7
        entity = session.next_question()
        session.answer(True)
        assert session.n_candidates < 7


class TestResourceGuards:
    def test_klp_handles_many_duplicated_partitions(self):
        """Hundreds of entities inducing the same split must not blow up
        the lookahead (the memo collapses them)."""
        sets = []
        for i in range(12):
            members = {f"copy{j}" for j in range(50)} if i < 6 else set()
            members |= {f"id{i}"}
            sets.append(members)
        coll = SetCollection(sets)
        selector = KLPSelector(k=3)
        entity = selector.select(coll, coll.full_mask)
        assert entity is not None

    def test_selector_reuse_across_collections_after_reset(self, fig1):
        other = SetCollection([{"x", "y"}, {"x", "z"}, {"y", "z"}])
        selector = KLPSelector(k=2)
        first = selector.select(fig1, fig1.full_mask)
        assert first >= 0
        selector.reset()  # mandatory between collections
        second = selector.select(other, other.full_mask)
        assert second in {
            e for e, _ in other.informative_entities(other.full_mask)
        }

    def test_informative_cache_isolation_between_masks(self, fig1):
        a = fig1.informative_entities(fig1.full_mask)
        b = fig1.informative_entities(0b0000111)
        assert a != b
        # Cached results are copies: mutating one must not leak.
        a.append((999, 1))
        assert (999, 1) not in fig1.informative_entities(fig1.full_mask)


class TestMetricContrast:
    def test_ad_and_h_trees_can_differ(self):
        """A collection where minimising AD and minimising H pick
        different structures: H-optimal trees may sacrifice average
        depth for worst-case depth."""
        from repro.core.optimal import optimal_tree

        # One very separable set plus a clique of similar ones.
        sets = [
            {"lone"},
            {"a", "b", "c"},
            {"a", "b", "d"},
            {"a", "c", "d"},
            {"b", "c", "d"},
            {"a", "b", "c", "d"},
        ]
        coll = SetCollection(sets)
        ad_tree = optimal_tree(coll, AD).tree
        h_tree = optimal_tree(coll, H).tree
        assert h_tree.height() <= ad_tree.height()
        assert ad_tree.average_depth() <= h_tree.average_depth() + 1e-9

    def test_h_metric_session_bounded_by_h_tree(self, synthetic_small):
        coll = synthetic_small
        tree = build_tree(coll, KLPSelector(k=2, metric=H))
        bound = tree.height()
        for target in range(0, coll.n_sets, 6):
            result = discover(
                coll,
                KLPSelector(k=2, metric=H),
                SimulatedUser(coll, target_index=target),
            )
            assert result.n_questions <= bound


class TestUnicodeAndWeirdLabels:
    def test_unicode_entity_labels(self):
        coll = SetCollection(
            [{"café", "naïve", "東京"}, {"café", "zürich"}]
        )
        result = discover(
            coll, InfoGainSelector(), SimulatedUser(coll, target_index=0)
        )
        assert result.target == 0

    def test_labels_with_tabs_round_trip_in_json_only(self, tmp_path):
        from repro.data.loaders import (
            load_collection_json,
            save_collection_json,
        )

        coll = SetCollection([{"a\tb", "c"}, {"c", "d"}])
        path = tmp_path / "weird.json"
        save_collection_json(coll, path)
        loaded = load_collection_json(path)
        assert loaded.n_sets == 2
        assert any(
            "a\tb" in loaded.set_labels(i) for i in range(2)
        )

    def test_numeric_and_string_labels_coexist(self):
        coll = SetCollection([{1, "1", "one"}, {1, 2}])
        assert coll.n_entities == 4

"""Tests for repro.data.synthetic (copy-add generator, Sec. 5.2.2)."""

import pytest

from repro.data.synthetic import (
    SyntheticConfig,
    TABLE1A_OVERLAPS,
    TABLE1B_SET_COUNTS,
    TABLE1C_SIZE_RANGES,
    generate_collection,
    generate_sets,
    table1a_configs,
    table1b_configs,
    table1c_configs,
)


class TestConfigValidation:
    def test_valid_config(self):
        cfg = SyntheticConfig(n_sets=10, size_lo=5, size_hi=8, overlap=0.9)
        assert cfg.label == "n=10,d=5-8,a=0.9"

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_sets=10, size_lo=0, size_hi=5, overlap=0.5)
        with pytest.raises(ValueError):
            SyntheticConfig(n_sets=10, size_lo=9, size_hi=5, overlap=0.5)

    def test_bad_overlap(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_sets=10, size_lo=5, size_hi=8, overlap=1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(n_sets=10, size_lo=5, size_hi=8, overlap=-0.1)

    def test_bad_n_sets(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_sets=0, size_lo=5, size_hi=8, overlap=0.5)

    def test_universe_must_fit_sets(self):
        with pytest.raises(ValueError):
            SyntheticConfig(
                n_sets=5, size_lo=5, size_hi=10, overlap=0.5,
                universe_size=4,
            )


class TestGeneration:
    def test_set_sizes_within_range(self):
        cfg = SyntheticConfig(n_sets=50, size_lo=10, size_hi=15, overlap=0.8)
        for s in generate_sets(cfg):
            assert 10 <= len(s) <= 15

    def test_deterministic_per_seed(self):
        cfg = SyntheticConfig(
            n_sets=30, size_lo=5, size_hi=9, overlap=0.7, seed=9
        )
        assert generate_sets(cfg) == generate_sets(cfg)

    def test_different_seeds_differ(self):
        base = dict(n_sets=30, size_lo=5, size_hi=9, overlap=0.7)
        a = generate_sets(SyntheticConfig(seed=1, **base))
        b = generate_sets(SyntheticConfig(seed=2, **base))
        assert a != b

    def test_all_sets_unique(self):
        cfg = SyntheticConfig(
            n_sets=200, size_lo=5, size_hi=7, overlap=0.95, seed=4
        )
        sets = generate_sets(cfg)
        assert len(set(sets)) == len(sets)

    def test_high_overlap_reuses_elements(self):
        """The copy step must create real overlap between sets."""
        cfg = SyntheticConfig(
            n_sets=50, size_lo=20, size_hi=25, overlap=0.9, seed=3
        )
        sets = generate_sets(cfg)
        overlaps = [
            len(sets[i] & sets[i - 1]) for i in range(1, len(sets))
        ]
        assert max(overlaps) > 0

    def test_distinct_entities_decrease_with_overlap(self):
        counts = []
        for alpha in (0.5, 0.7, 0.9):
            cfg = SyntheticConfig(
                n_sets=200, size_lo=20, size_hi=25, overlap=alpha, seed=5
            )
            counts.append(len(set().union(*generate_sets(cfg))))
        assert counts[0] > counts[1] > counts[2]

    def test_collection_wrapper(self):
        cfg = SyntheticConfig(n_sets=25, size_lo=5, size_hi=8, overlap=0.8)
        coll = generate_collection(cfg)
        assert coll.n_sets == 25
        assert coll.names[0] == "S1"
        union = set()
        for i in range(coll.n_sets):
            union |= set(coll.sets[i])
        assert coll.n_entities == len(union)


class TestTable1Configs:
    def test_table1a_sweeps_overlap(self):
        configs = list(table1a_configs(scale=10))
        assert [c.overlap for c in configs] == list(TABLE1A_OVERLAPS)
        assert all(c.n_sets == 1000 for c in configs)
        assert all((c.size_lo, c.size_hi) == (50, 60) for c in configs)

    def test_table1b_sweeps_n(self):
        configs = list(table1b_configs(scale=10))
        assert [c.n_sets for c in configs] == [
            n // 10 for n in TABLE1B_SET_COUNTS
        ]
        assert all(c.overlap == 0.9 for c in configs)

    def test_table1c_sweeps_sizes(self):
        configs = list(table1c_configs(scale=10))
        assert [(c.size_lo, c.size_hi) for c in configs] == list(
            TABLE1C_SIZE_RANGES
        )

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            list(table1a_configs(scale=0))

    def test_paper_scale_preserved_at_divisor_one(self):
        configs = list(table1b_configs(scale=1))
        assert configs[-1].n_sets == 160_000

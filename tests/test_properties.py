"""Property-based tests (hypothesis) for the paper's core invariants.

Strategy: random small collections of unique sets over a small entity
universe, then check the lemmas and algorithmic equivalences the paper
proves:

* Lemma 3.3 / Eq. 1-2: any constructed tree costs at least the zero-step
  lower bounds;
* Lemmas 4.1/4.2: k-step bounds are monotone non-decreasing in k;
* Lemma 4.3: InfoGain, indistinguishable pairs and 1-step LB select the
  same (most even) entity;
* Lemma 4.4: pruning never changes the selected entity or bound (k-LP vs
  the exhaustive reference);
* Sec. 4.4.1: k-LP at k >= n-1 is optimal;
* Algorithm 2: discovery always finds the target, in exactly the number
  of questions the offline tree predicts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import AD, H, lb_ad0, lb_h0
from repro.core.collection import SetCollection
from repro.core.construction import build_tree
from repro.core.discovery import discover
from repro.core.gain_k import UnprunedKLPSelector, lb_k, lb_k_entity
from repro.core.lookahead import KLPSelector
from repro.core.optimal import optimal_cost
from repro.core.selection import (
    IndistinguishablePairsSelector,
    InfoGainSelector,
    LB1Selector,
    MostEvenSelector,
    unevenness,
)
from repro.oracle import SimulatedUser

# A collection: 2-9 unique non-empty subsets of a 10-entity universe.
collections = st.sets(
    st.frozensets(st.integers(0, 9), min_size=1, max_size=6),
    min_size=2,
    max_size=9,
).map(lambda sets: SetCollection(sorted(sets, key=sorted)))

relaxed = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def has_informative(coll: SetCollection) -> bool:
    return bool(coll.informative_entities(coll.full_mask))


@given(coll=collections)
@relaxed
def test_unique_sets_always_have_informative_entity(coll):
    # Two or more unique sets always differ somewhere.
    assert has_informative(coll)


@given(coll=collections)
@relaxed
def test_partition_is_exact(coll):
    mask = coll.full_mask
    for eid, cnt in coll.informative_entities(mask):
        pos, neg = coll.partition(mask, eid)
        assert pos | neg == mask
        assert pos & neg == 0
        assert coll.count(pos) == cnt
        for idx in coll.sets_in(pos):
            assert eid in coll.sets[idx]
        for idx in coll.sets_in(neg):
            assert eid not in coll.sets[idx]


@given(coll=collections, k=st.integers(1, 4))
@relaxed
def test_tree_cost_at_least_lb0(coll, k):
    tree = build_tree(coll, KLPSelector(k=k))
    n = coll.n_sets
    assert tree.average_depth() >= lb_ad0(n) - 1e-9
    assert tree.height() >= lb_h0(n)


@given(coll=collections)
@relaxed
def test_lemma_4_1_bounds_monotone_in_k(coll):
    for metric in (AD, H):
        bounds = [
            lb_k(coll, coll.full_mask, k, metric) for k in range(0, 5)
        ]
        for earlier, later in zip(bounds, bounds[1:]):
            assert later >= earlier - 1e-9


@given(coll=collections)
@relaxed
def test_lemma_4_2_entity_bounds_monotone_in_k(coll):
    mask = coll.full_mask
    for metric in (AD, H):
        for eid, _ in coll.informative_entities(mask)[:4]:
            bounds = [
                lb_k_entity(coll, mask, eid, k, metric)
                for k in range(1, 5)
            ]
            for earlier, later in zip(bounds, bounds[1:]):
                assert later >= earlier - 1e-9


@given(coll=collections)
@relaxed
def test_lemma_4_3_one_step_strategies_agree(coll):
    mask = coll.full_mask
    n = coll.n_sets
    chosen = {
        selector.name: selector.select(coll, mask)
        for selector in (
            MostEvenSelector(),
            InfoGainSelector(),
            IndistinguishablePairsSelector(),
            LB1Selector(AD),
        )
    }
    values = set(chosen.values())
    assert len(values) == 1, chosen
    # And the common choice is a most-even splitter.
    entity = values.pop()
    best = min(
        unevenness(n, cnt)
        for _, cnt in coll.informative_entities(mask)
    )
    assert unevenness(n, coll.positive_count(mask, entity)) == best


@given(coll=collections, k=st.integers(1, 3), metric=st.sampled_from([AD, H]))
@relaxed
def test_lemma_4_4_pruning_preserves_selection(coll, k, metric):
    pruned = KLPSelector(k=k, metric=metric)
    reference = UnprunedKLPSelector(k=k, metric=metric)
    assert pruned.select(coll, coll.full_mask) == reference.select(
        coll, coll.full_mask
    )


@given(coll=collections, metric=st.sampled_from([AD, H]))
@relaxed
def test_klp_with_full_lookahead_is_optimal(coll, metric):
    exact = optimal_cost(coll, metric)
    tree = build_tree(coll, KLPSelector(k=coll.n_sets - 1, metric=metric))
    assert metric.tree_cost(tree.depths()) == pytest.approx(exact)


@given(coll=collections)
@relaxed
def test_lb_never_exceeds_optimal(coll):
    for metric in (AD, H):
        exact = optimal_cost(coll, metric)
        for k in range(0, 4):
            assert lb_k(coll, coll.full_mask, k, metric) <= exact + 1e-9


@given(coll=collections, k=st.integers(1, 3))
@relaxed
def test_constructed_tree_is_valid(coll, k):
    tree = build_tree(coll, KLPSelector(k=k))
    tree.validate(coll)
    assert tree.n_leaves == coll.n_sets


@given(coll=collections, data=st.data())
@relaxed
def test_discovery_finds_any_target(coll, data):
    target = data.draw(st.integers(0, coll.n_sets - 1))
    tree = build_tree(coll, KLPSelector(k=2))
    result = discover(
        coll, KLPSelector(k=2), SimulatedUser(coll, target_index=target)
    )
    assert result.resolved
    assert result.target == target
    assert result.n_questions == tree.leaf_depths()[target]


@given(coll=collections, q=st.integers(1, 4))
@relaxed
def test_beam_variants_build_valid_trees(coll, q):
    for variable in (False, True):
        selector = KLPSelector(k=2, q=q, variable=variable)
        tree = build_tree(coll, selector)
        tree.validate(coll)


@given(coll=collections)
@relaxed
def test_batch_partition_cells_are_exact(coll):
    from repro.core.batch import partition_cells, select_batch

    batch = select_batch(coll, coll.full_mask, 3)
    cells = partition_cells(coll, coll.full_mask, batch)
    union = 0
    for pattern, cell in cells.items():
        assert len(pattern) == len(batch)
        assert cell != 0
        assert union & cell == 0
        union |= cell
        # Every member set agrees with the pattern.
        for idx in coll.sets_in(cell):
            for eid, expected in zip(batch, pattern):
                assert (eid in coll.sets[idx]) == expected
    assert union == coll.full_mask


@given(coll=collections, s=st.floats(0.0, 2.5))
@relaxed
def test_weighted_cost_bounded_by_entropy(coll, s):
    from repro.core.priors import skewed_prior

    prior = skewed_prior(coll, s)
    tree = build_tree(coll, MostEvenSelector())
    assert prior.weighted_average_depth(tree) >= prior.entropy() - 1e-9


@given(
    sets=st.sets(
        st.frozensets(st.integers(0, 9), min_size=1, max_size=6),
        min_size=2,
        max_size=9,
    )
)
@relaxed
def test_collection_round_trips_through_json(sets, tmp_path_factory):
    from repro.data.loaders import load_collection_json, save_collection_json

    coll = SetCollection(sorted(sets, key=sorted))
    path = tmp_path_factory.mktemp("prop") / "c.json"
    save_collection_json(coll, path)
    loaded = load_collection_json(path)
    originals = {frozenset(coll.set_labels(i)) for i in range(coll.n_sets)}
    reloaded = {
        frozenset(loaded.set_labels(i)) for i in range(loaded.n_sets)
    }
    assert originals == reloaded

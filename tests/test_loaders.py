"""Tests for repro.data.loaders (collection file formats)."""

import pytest

from repro.core.collection import SetCollection
from repro.data.loaders import (
    load_collection,
    load_collection_json,
    load_collection_text,
    save_collection,
    save_collection_json,
    save_collection_text,
)


@pytest.fixture
def sample() -> SetCollection:
    return SetCollection.from_named_sets(
        {
            "planets": {"mars", "venus", "earth"},
            "gods": {"mars", "venus", "jupiter"},
            "metals": {"iron", "copper"},
        }
    )


def assert_same_contents(a: SetCollection, b: SetCollection) -> None:
    assert a.n_sets == b.n_sets
    for name in a.names:
        ia, ib = a.index_of(name), b.index_of(name)
        assert {str(x) for x in a.set_labels(ia)} == {
            str(x) for x in b.set_labels(ib)
        }


class TestTextFormat:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "sets.tsv"
        save_collection_text(sample, path)
        assert_same_contents(sample, load_collection_text(path))

    def test_file_layout(self, sample, tmp_path):
        path = tmp_path / "sets.tsv"
        save_collection_text(sample, path)
        lines = path.read_text().splitlines()
        assert lines[0].split("\t")[0] == "planets"
        assert set(lines[0].split("\t")[1:]) == {"mars", "venus", "earth"}

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "sets.tsv"
        path.write_text("one\ta\tb\n\n\ntwo\tc\td\n")
        coll = load_collection_text(path)
        assert coll.n_sets == 2

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "sets.tsv"
        path.write_text("justaname\n")
        with pytest.raises(ValueError, match=":1:"):
            load_collection_text(path)

    def test_duplicate_sets_honour_dedupe_flag(self, tmp_path):
        path = tmp_path / "sets.tsv"
        path.write_text("one\ta\tb\ntwo\tb\ta\n")
        with pytest.raises(Exception):
            load_collection_text(path)
        coll = load_collection_text(path, dedupe=True)
        assert coll.n_sets == 1


class TestJsonFormat:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "sets.json"
        save_collection_json(sample, path)
        assert_same_contents(sample, load_collection_json(path))

    def test_missing_sets_key_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"collections": {}}')
        with pytest.raises(ValueError):
            load_collection_json(path)

    def test_numeric_labels_survive(self, tmp_path):
        coll = SetCollection([{1, 2}, {2, 3}], names=["a", "b"])
        path = tmp_path / "nums.json"
        save_collection_json(coll, path)
        loaded = load_collection_json(path)
        assert loaded.set_labels(loaded.index_of("a")) == frozenset({1, 2})


class TestDispatch:
    def test_extension_dispatch(self, sample, tmp_path):
        json_path = tmp_path / "c.json"
        text_path = tmp_path / "c.tsv"
        save_collection(sample, json_path)
        save_collection(sample, text_path)
        assert_same_contents(sample, load_collection(json_path))
        assert_same_contents(sample, load_collection(text_path))

    def test_loaded_collection_is_searchable(self, sample, tmp_path):
        """End-to-end: save, load, discover."""
        from repro.core.discovery import discover
        from repro.core.lookahead import KLPSelector
        from repro.oracle import SimulatedUser

        path = tmp_path / "c.json"
        save_collection(sample, path)
        loaded = load_collection(path)
        target = loaded.index_of("gods")
        result = discover(
            loaded,
            KLPSelector(k=2),
            SimulatedUser(loaded, target_index=target),
            initial={"mars"},
        )
        assert result.target == target

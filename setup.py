"""Build script: the optional native popcount extension lives here.

The pure-python package (big-int kernel) and the numpy backend need no
build step; only ``repro.core.kernels._native._nativeext`` compiles C.
The extension is strictly optional — ``Extension(optional=True)`` makes
setuptools log compile failures as warnings instead of failing the
install — so environments without a toolchain degrade to the
numpy/bigint backends (the kernel layer warns once and falls back at
import time).  Set ``REPRO_BUILD_NATIVE=0`` to skip the compile attempt
outright — CI uses this to prove the fallback path.
"""

import os
import platform

from setuptools import Extension, setup


def compile_args():
    if os.name == "nt":
        return []
    args = ["-O3"]
    # Without -mpopcnt, gcc lowers __builtin_popcountll to a software
    # routine on the x86-64 baseline and the whole point of the extension
    # evaporates.  POPCNT shipped with every x86-64 chip since Nehalem
    # (2008), so the flag is safe there; 32-bit x86 is left on the
    # software fallback (a Pentium M would SIGILL on the instruction),
    # and non-x86 targets (aarch64's cnt/addv) need no flag.
    if platform.machine().lower() in ("x86_64", "amd64"):
        args.append("-mpopcnt")
    return args


def native_extensions():
    if os.environ.get("REPRO_BUILD_NATIVE", "1") in ("0", "false", "no"):
        return []
    return [
        Extension(
            "repro.core.kernels._native._nativeext",
            sources=["src/repro/core/kernels/_native/_nativeext.c"],
            extra_compile_args=compile_args(),
            optional=True,
        )
    ]


setup(ext_modules=native_extensions())

"""Build script: the optional native popcount extension lives here.

The pure-python package (big-int kernel) and the numpy backend need no
build step; only ``repro.core.kernels._native._nativeext`` compiles C.
The extension is strictly optional — ``Extension(optional=True)`` makes
setuptools log compile failures as warnings instead of failing the
install — so environments without a toolchain degrade to the
numpy/bigint backends (the kernel layer warns once and falls back at
import time).  Set ``REPRO_BUILD_NATIVE=0`` to skip the compile attempt
outright — CI uses this to prove the fallback path.

SIMD tiers: the AVX2 and AVX-512 popcount sweeps live in their own
translation units compiled with per-file ``-mavx2`` /
``-mavx512f -mavx512vpopcntdq`` flags (``simd_build_ext`` below), while
the rest of the extension keeps the portable baseline.  The binary stays
runnable on any x86-64: tier selection happens at import via CPUID, so
the vector code only executes on CPUs that report the feature.  On
non-x86 targets the per-file flags are skipped and the tier units
compile to empty stubs (their ``__AVX2__``/``__AVX512__`` guards are
false), leaving the scalar path only.
"""

import os
import platform

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

_IS_X86_64 = platform.machine().lower() in ("x86_64", "amd64")

# Per-source -m flags (gcc/clang only; MSVC builds stay scalar-only).
_PER_FILE_FLAGS = {
    "_simd_avx2.c": ["-mavx2"],
    "_simd_avx512.c": ["-mavx512f", "-mavx512vpopcntdq"],
}


def compile_args():
    if os.name == "nt":
        return []
    args = ["-O3"]
    # Without -mpopcnt, gcc lowers __builtin_popcountll to a software
    # routine on the x86-64 baseline and the whole point of the extension
    # evaporates.  POPCNT shipped with every x86-64 chip since Nehalem
    # (2008), so the flag is safe there; 32-bit x86 is left on the
    # software fallback (a Pentium M would SIGILL on the instruction),
    # and non-x86 targets (aarch64's cnt/addv) need no flag.
    if _IS_X86_64:
        args.append("-mpopcnt")
    return args


class simd_build_ext(build_ext):
    """build_ext that adds per-source SIMD flags via the unixccompiler
    ``_compile`` hook.  MSVC's compiler class has no ``_compile`` — there
    the hook is skipped and every unit builds with the base flags, which
    leaves the SIMD units as stubs (scalar-only build, still correct)."""

    def build_extensions(self):
        if _IS_X86_64 and hasattr(self.compiler, "_compile"):
            original = self.compiler._compile

            def patched(obj, src, ext, cc_args, extra_postargs, pp_opts):
                extra = _PER_FILE_FLAGS.get(os.path.basename(src))
                if extra:
                    extra_postargs = list(extra_postargs) + extra
                return original(obj, src, ext, cc_args, extra_postargs,
                                pp_opts)

            self.compiler._compile = patched
        super().build_extensions()


def native_extensions():
    if os.environ.get("REPRO_BUILD_NATIVE", "1") in ("0", "false", "no"):
        return []
    return [
        Extension(
            "repro.core.kernels._native._nativeext",
            sources=[
                "src/repro/core/kernels/_native/_nativeext.c",
                "src/repro/core/kernels/_native/_simd_avx2.c",
                "src/repro/core/kernels/_native/_simd_avx512.c",
            ],
            extra_compile_args=compile_args(),
            optional=True,
        )
    ]


setup(
    ext_modules=native_extensions(),
    cmdclass={"build_ext": simd_build_ext},
)

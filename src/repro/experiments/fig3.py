"""Experiment: Fig. 3 — k-LP tree construction time as k grows.

The paper's Fig. 3 shows, on the web-tables workload, construction time
rising one-to-two orders of magnitude from k=2 to k=3 while the average
number of questions shrinks slightly — the trade-off that motivates the
default k=2 for k-LP and the beam variants for k=3.  The runner
reconstructs each initial-pair sub-collection's tree per k and reports
time and tree quality.
"""

from __future__ import annotations

from ..core.bounds import AD
from ..core.construction import build_and_summarize
from ..core.lookahead import KLPSelector
from .common import ResultTable, Scale, SMALL, mean
from .workloads import webtable_tasks


def run_fig3(
    scale: Scale = SMALL,
    ks: tuple[int, ...] = (1, 2, 3),
    max_tasks: int = 6,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks)
    table = ResultTable(
        title=(
            f"Fig. 3 (scale={scale.name}): k-LP construction time vs k "
            f"({len(tasks)} web-table sub-collections)"
        ),
        columns=[
            "k",
            "mean time (s)",
            "max time (s)",
            "mean AD",
            "mean H",
        ],
    )
    if not tasks:
        table.note("no qualifying sub-collections at this scale")
        return table
    for k in ks:
        times: list[float] = []
        ads: list[float] = []
        heights: list[float] = []
        for task in tasks:
            selector = KLPSelector(k=k, metric=AD)
            _, summary = build_and_summarize(
                task.collection, selector, task.mask
            )
            times.append(summary.construction_seconds)
            ads.append(summary.average_depth)
            heights.append(float(summary.height))
        table.add(
            k,
            round(mean(times), 4),
            round(max(times), 4),
            round(mean(ads), 3),
            round(mean(heights), 2),
        )
    table.note(
        "shape check: time rises steeply with k while AD improves "
        "slightly (paper: 1-2 orders of magnitude from k=2 to k=3)"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_fig3(scale)]

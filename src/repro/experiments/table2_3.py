"""Experiment: Tables 2 and 3 — baseball targets and candidate queries.

Table 2 lists the seven target queries with their output sizes; Table 3
lists, per target, the selected example tuples, the number of generated
candidate CNF queries, and the candidates' average output size.  Both are
regenerated over the synthetic People table; paper values are shown
alongside (absolute sizes differ — different underlying population — but
the regimes match: hundreds-to-thousands for T1-T4, tens for T5-T7).
"""

from __future__ import annotations

from ..querydisc.pipeline import build_query_collection
from ..querydisc.targets import BaseballWorkload
from ..relational.baseball import (
    PAPER_CANDIDATE_COUNTS,
    PAPER_TARGET_SIZES,
)
from .common import ResultTable, Scale, SMALL
from .workloads import baseball_workload

#: Paper Table 3 average output sizes, for side-by-side display.
PAPER_AVG_OUTPUT = {
    "T1": 9404.24,
    "T2": 11254.35,
    "T3": 10612.07,
    "T4": 10957.30,
    "T5": 9772.70,
    "T6": 7187.00,
    "T7": 7795.78,
}


def run_table2(
    scale: Scale = SMALL, workload: BaseballWorkload | None = None
) -> ResultTable:
    workload = workload or baseball_workload(scale)
    table = ResultTable(
        title=(
            f"Table 2 (scale={scale.name}, {workload.table.n_rows} "
            "players): target queries"
        ),
        columns=["target", "query", "output tuples", "paper (20185 players)"],
    )
    for name in sorted(workload.cases):
        case = workload.case(name)
        table.add(
            name,
            case.query.condition.describe(),
            case.output_size,
            PAPER_TARGET_SIZES[name],
        )
    return table


def run_table3(
    scale: Scale = SMALL, workload: BaseballWorkload | None = None
) -> ResultTable:
    workload = workload or baseball_workload(scale)
    table = ResultTable(
        title=f"Table 3 (scale={scale.name}): example tuples and candidates",
        columns=[
            "target",
            "example player ids",
            "# candidates",
            "paper #",
            "avg output tuples",
            "paper avg",
        ],
    )
    for name in sorted(workload.cases):
        case = workload.case(name)
        qc = build_query_collection(case)
        table.add(
            name,
            ", ".join(case.example_player_ids()),
            qc.n_candidate_queries,
            PAPER_CANDIDATE_COUNTS[name],
            round(qc.average_output_size, 2),
            PAPER_AVG_OUTPUT[name],
        )
    table.note(
        "candidate counts depend on the example tuples' values "
        "(how many reference intervals contain them); the paper range is "
        "600-1339"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    """Tables 2 and 3 over one shared workload build."""
    workload = baseball_workload(scale)
    return [
        run_table2(scale, workload),
        run_table3(scale, workload),
    ]

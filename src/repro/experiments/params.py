"""Experiment: Sec. 5.3.1 — choosing the parameters k and q.

Two sweeps on the web-tables workload:

* **k sweep** for plain k-LP: quality (AD/H) versus construction time as
  the lookahead deepens — the basis for the paper's default k=2;
* **q sweep** for 3-LPLE and 3-LPLVE: the paper finds quality flat beyond
  q ≈ 10 while time keeps rising, hence the default q=10.
"""

from __future__ import annotations

from ..core.bounds import AD
from ..core.construction import build_and_summarize
from ..core.lookahead import KLPSelector
from .common import ResultTable, Scale, SMALL, mean
from .workloads import webtable_tasks


def run_k_sweep(
    scale: Scale = SMALL,
    ks: tuple[int, ...] = (1, 2, 3),
    max_tasks: int = 5,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks)
    table = ResultTable(
        title=f"Sec. 5.3.1 (scale={scale.name}): choosing k for k-LP",
        columns=["k", "mean AD", "mean H", "mean time (s)"],
    )
    for k in ks:
        ads: list[float] = []
        hs: list[float] = []
        times: list[float] = []
        for task in tasks:
            _, summary = build_and_summarize(
                task.collection, KLPSelector(k=k, metric=AD), task.mask
            )
            ads.append(summary.average_depth)
            hs.append(float(summary.height))
            times.append(summary.construction_seconds)
        table.add(
            k, round(mean(ads), 3), round(mean(hs), 2), round(mean(times), 4)
        )
    table.note("paper default: k=2 balances quality against time")
    return table


def run_q_sweep(
    scale: Scale = SMALL,
    qs: tuple[int, ...] = (1, 5, 10, 20, 50),
    k: int = 3,
    max_tasks: int = 5,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks)
    table = ResultTable(
        title=(
            f"Sec. 5.3.1 (scale={scale.name}): choosing q for "
            f"{k}-LPLE / {k}-LPLVE"
        ),
        columns=[
            "q",
            "LE mean AD",
            "LE mean time (s)",
            "LVE mean AD",
            "LVE mean time (s)",
        ],
    )
    for q in qs:
        row: list[object] = [q]
        for variable in (False, True):
            ads: list[float] = []
            times: list[float] = []
            for task in tasks:
                selector = KLPSelector(
                    k=k, metric=AD, q=q, variable=variable
                )
                _, summary = build_and_summarize(
                    task.collection, selector, task.mask
                )
                ads.append(summary.average_depth)
                times.append(summary.construction_seconds)
            row.extend([round(mean(ads), 3), round(mean(times), 4)])
        table.add(*row)
    table.note(
        "paper: AD stops improving past q=10 while time keeps growing"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_k_sweep(scale), run_q_sweep(scale)]

"""Workload builders shared by the experiment runners.

Each builder maps a :class:`~repro.experiments.common.Scale` to concrete
dataset parameters.  The guiding rule (DESIGN.md Sec. 4): keep the paper's
parameter *shape* (the swept values, their ratios) and divide sizes by the
scale divisor, so trends and crossovers are preserved at laptop cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collection import SetCollection
from ..data.synthetic import SyntheticConfig, generate_collection
from ..data.webtables import (
    InitialPair,
    WebTableConfig,
    WebTableWorkload,
)
from ..querydisc.targets import BaseballWorkload
from .common import PAPER, Scale


def webtable_workload(
    scale: Scale,
    min_candidates: int | None = None,
    max_pairs: int = 12,
) -> WebTableWorkload:
    """Web-tables substitute sized for ``scale``.

    The paper keeps sub-collections with at least 100 candidate sets; the
    floor shrinks with the scale so small runs still produce multi-set
    sub-collections to search.
    """
    n_sets = scale.scaled(40_000)
    config = WebTableConfig(
        n_sets=max(n_sets, 200),
        n_domains=max(8, scale.scaled(400)),
        domain_vocab=200 if scale is PAPER else 120,
        size_lo=3,
        size_hi=40,
        seed=7,
    )
    if min_candidates is None:
        min_candidates = 100 if scale is PAPER else 25
    return WebTableWorkload.build(
        config=config, min_candidates=min_candidates, max_pairs=max_pairs
    )


@dataclass(frozen=True)
class SubCollectionTask:
    """One tree-construction task: a collection and a sub-collection."""

    collection: SetCollection
    pair: InitialPair

    @property
    def mask(self) -> int:
        return self.pair.mask

    @property
    def n_sets(self) -> int:
        return self.pair.n_candidates


def webtable_tasks(
    scale: Scale,
    max_tasks: int = 8,
    max_sets: int | None = None,
) -> list[SubCollectionTask]:
    """Initial-pair sub-collections as tree-construction tasks.

    ``max_sets`` drops sub-collections larger than the scale's budget (the
    paper's range went up to 11k sets; pure Python trees that large are a
    paper-scale run).
    """
    workload = webtable_workload(scale, max_pairs=max_tasks * 4)
    budget = max_sets if max_sets is not None else scale.max_sets
    tasks = [
        SubCollectionTask(workload.collection, pair)
        for pair in workload.pairs
        if budget is None or pair.n_candidates <= budget
    ]
    tasks.sort(key=lambda t: t.n_sets)
    return tasks[:max_tasks]


def synthetic_collection(
    n_sets: int,
    overlap: float,
    size_lo: int = 50,
    size_hi: int = 60,
    seed: int = 42,
) -> SetCollection:
    """A copy-add synthetic collection with the given parameters."""
    return generate_collection(
        SyntheticConfig(
            n_sets=n_sets,
            size_lo=size_lo,
            size_hi=size_hi,
            overlap=overlap,
            seed=seed,
        )
    )


def baseball_workload(scale: Scale) -> BaseballWorkload:
    """Baseball workload sized for ``scale`` (paper: 20,185 players)."""
    n_players = scale.scaled(20_185)
    return BaseballWorkload.build(n_players=max(n_players, 1_000))

"""Experiment: Fig. 4 — speedup of k-LP over gain-k thanks to pruning.

Fig. 4a (web tables) compares full tree construction with k-LP against the
unpruned gain-k lookahead for k=2 and k=3; Fig. 4b (synthetic) fixes k=2
and varies the number of sets.  The paper reports two to five orders of
magnitude; the exact factor grows with the entity count, so the scaled-down
runs here show smaller but still multi-order-of-magnitude ratios.

gain-k's cost is O(m^k n) per node with no pruning, which is why the
runner sizes its inputs carefully: Fig. 4a uses the smallest qualifying
sub-collections and full trees; Fig. 4b measures root-node selection time
(the dominant, deepest-recursion node) so the sweep can reach collection
sizes where full gain-k trees would take hours.
"""

from __future__ import annotations

import time

from ..core.bounds import AD
from ..core.construction import build_tree
from ..core.gain_k import GainKSelector
from ..core.lookahead import KLPSelector
from .common import ResultTable, Scale, SMALL, geometric_mean
from .workloads import synthetic_collection, webtable_tasks


def run_fig4a(
    scale: Scale = SMALL,
    ks: tuple[int, ...] = (2, 3),
    max_tasks: int = 3,
    max_sets: int = 60,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks, max_sets=max_sets)
    table = ResultTable(
        title=(
            f"Fig. 4a (scale={scale.name}): k-LP vs gain-k speedup, "
            f"web tables ({len(tasks)} sub-collections, full trees)"
        ),
        columns=[
            "k",
            "k-LP time (s)",
            "gain-k time (s)",
            "speedup (geo-mean)",
        ],
    )
    if not tasks:
        table.note("no qualifying sub-collections at this scale")
        return table
    for k in ks:
        klp_times: list[float] = []
        gain_times: list[float] = []
        ratios: list[float] = []
        for task in tasks:
            selector = KLPSelector(k=k, metric=AD)
            start = time.perf_counter()
            build_tree(task.collection, selector, task.mask)
            t_klp = time.perf_counter() - start
            gain = GainKSelector(k=k)
            start = time.perf_counter()
            build_tree(task.collection, gain, task.mask)
            t_gain = time.perf_counter() - start
            klp_times.append(t_klp)
            gain_times.append(t_gain)
            if t_klp > 0:
                ratios.append(t_gain / t_klp)
        table.add(
            k,
            round(sum(klp_times), 4),
            round(sum(gain_times), 4),
            round(geometric_mean(ratios), 1),
        )
    table.note(
        "shape check: speedup grows with k (paper: 2-3 orders of "
        "magnitude at k=2, up to 5 at k=3 on full-size data)"
    )
    return table


def run_fig4b(
    scale: Scale = SMALL,
    set_counts: tuple[int, ...] = (50, 100, 200, 400),
    k: int = 2,
) -> ResultTable:
    table = ResultTable(
        title=(
            f"Fig. 4b (scale={scale.name}): k-LP vs gain-{k} speedup, "
            "synthetic, root-node selection"
        ),
        columns=[
            "n_sets",
            "n_entities",
            "k-LP (s)",
            f"gain-{k} (s)",
            "speedup",
        ],
    )
    for n in set_counts:
        collection = synthetic_collection(
            n_sets=n, overlap=0.9, size_lo=20, size_hi=25
        )
        selector = KLPSelector(k=k, metric=AD)
        start = time.perf_counter()
        selector.select(collection, collection.full_mask)
        t_klp = time.perf_counter() - start
        gain = GainKSelector(k=k)
        start = time.perf_counter()
        gain.select(collection, collection.full_mask)
        t_gain = time.perf_counter() - start
        table.add(
            n,
            collection.n_entities,
            round(t_klp, 5),
            round(t_gain, 4),
            round(t_gain / t_klp, 1) if t_klp > 0 else float("inf"),
        )
    table.note(
        "root-node selection time; the ratio grows with the number of "
        "sets/entities, matching the paper's trend"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_fig4a(scale), run_fig4b(scale)]

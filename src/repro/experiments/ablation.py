"""Ablations of the design choices DESIGN.md calls out.

Not in the paper, but the natural follow-up questions a reader asks:

* **Pruning devices** — which of the three mechanisms (sorted early break,
  recursive upper limits, memoisation) buys how much?  Each configuration
  of :class:`~repro.core.gain_k.UnprunedKLPSelector` re-enables one subset;
  all configurations select the same entities (verified in tests), so the
  comparison is purely about time.
* **Tie-breaking** — the paper breaks cost ties toward the most even
  partition; this ablation compares the resulting tree quality against an
  entity-id tie-break.
* **Batch questions** (Sec. 6 extension) — screens shown vs individual
  answers as the batch size grows.
"""

from __future__ import annotations

import time

from ..core.batch import BatchDiscoverySession
from ..core.bounds import AD
from ..core.construction import build_tree
from ..core.gain_k import UnprunedKLPSelector
from ..core.lookahead import KLPSelector
from ..oracle.user import SimulatedUser
from .common import ResultTable, Scale, SMALL, mean
from .workloads import webtable_tasks


def run_pruning_ablation(
    scale: Scale = SMALL,
    k: int = 2,
    max_tasks: int = 2,
    max_sets: int = 80,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks, max_sets=max_sets)
    table = ResultTable(
        title=(
            f"Ablation (scale={scale.name}): pruning devices of {k}-LP "
            f"(full trees over {len(tasks)} sub-collections)"
        ),
        columns=["configuration", "time (s)", "vs full k-LP"],
    )
    if not tasks:
        table.note("no qualifying sub-collections at this scale")
        return table
    configurations = [
        ("none (exhaustive)", UnprunedKLPSelector(k=k)),
        ("sorted break only", UnprunedKLPSelector(k=k, sorted_break=True)),
        ("upper limits only", UnprunedKLPSelector(k=k, upper_limits=True)),
        ("memoisation only", UnprunedKLPSelector(k=k, memoize=True)),
        (
            "all three (reimpl.)",
            UnprunedKLPSelector(
                k=k, sorted_break=True, upper_limits=True, memoize=True
            ),
        ),
        ("k-LP (Algorithm 1)", KLPSelector(k=k, metric=AD)),
    ]
    timings: list[tuple[str, float]] = []
    for label, selector in configurations:
        start = time.perf_counter()
        for task in tasks:
            selector.reset()
            build_tree(task.collection, selector, task.mask)
        timings.append((label, time.perf_counter() - start))
    full_time = timings[-1][1]
    for label, elapsed in timings:
        ratio = elapsed / full_time if full_time > 0 else float("inf")
        table.add(label, round(elapsed, 4), f"{ratio:.1f}x")
    table.note(
        "all configurations build identical trees; the sorted break is "
        "the single biggest lever, and the devices compound"
    )
    return table


def run_batch_ablation(
    scale: Scale = SMALL,
    batch_sizes: tuple[int, ...] = (1, 2, 3, 4),
    max_targets: int = 12,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=1)
    table = ResultTable(
        title=(
            f"Ablation (scale={scale.name}): multiple-choice batches "
            "(Sec. 6 extension)"
        ),
        columns=[
            "batch size",
            "mean screens",
            "mean answers",
            "resolved %",
        ],
    )
    if not tasks:
        table.note("no qualifying sub-collections at this scale")
        return table
    task = tasks[0]
    collection = task.collection
    targets = list(collection.sets_in(task.mask))[:max_targets]
    for b in batch_sizes:
        screens: list[float] = []
        answers: list[float] = []
        resolved = 0
        for target in targets:
            session = BatchDiscoverySession(
                collection, batch_size=b, initial_mask=task.mask
            )
            oracle = SimulatedUser(collection, target_index=target)
            result = session.run(oracle)
            screens.append(float(result.n_batches))
            answers.append(float(result.n_answers))
            resolved += int(result.resolved)
        table.add(
            b,
            round(mean(screens), 2),
            round(mean(answers), 2),
            round(100.0 * resolved / len(targets), 1),
        )
    table.note(
        "screens (user interactions) fall as the batch grows; total "
        "individual answers rise — the Sec. 6 trade-off"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_pruning_ablation(scale), run_batch_ablation(scale)]

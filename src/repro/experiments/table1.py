"""Experiment: Table 1 — synthetic collection statistics.

Regenerates the three panels of Table 1: the number of distinct entities
produced by the copy-add generator as (a) the overlap ratio, (b) the
number of sets and (c) the set size range vary.  The paper's own counts
are printed alongside for the shape check: distinct entities fall as the
overlap rises and grow with both sweeps (sub-linearly with n because of
copying).
"""

from __future__ import annotations

from ..data.synthetic import (
    generate_collection,
    table1a_configs,
    table1b_configs,
    table1c_configs,
)
from .common import ResultTable, Scale, SMALL

#: Paper-reported distinct-entity counts, for side-by-side display.
PAPER_TABLE1A = {
    0.99: 23_000,
    0.95: 36_000,
    0.90: 59_000,
    0.85: 83_000,
    0.80: 108_000,
    0.75: 132_000,
    0.70: 156_000,
    0.65: 178_000,
}
PAPER_TABLE1B = {
    10_000: 59_000,
    20_000: 125_000,
    40_000: 216_000,
    80_000: 385_000,
    160_000: 622_000,
}
PAPER_TABLE1C = {
    (50, 100): 119_000,
    (100, 150): 150_000,
    (150, 200): 180_000,
    (200, 250): 214_000,
    (250, 300): 249_000,
    (300, 350): 283_000,
}


def run_table1a(scale: Scale = SMALL) -> ResultTable:
    table = ResultTable(
        title=f"Table 1a (scale={scale.name}): distinct entities vs overlap",
        columns=[
            "overlap",
            "n_sets",
            "distinct_entities",
            "paper (at n=10k)",
        ],
    )
    for config in table1a_configs(scale=scale.divisor):
        collection = generate_collection(config)
        table.add(
            config.overlap,
            config.n_sets,
            collection.n_entities,
            PAPER_TABLE1A[config.overlap],
        )
    table.note(
        "shape check: distinct entities decrease monotonically as the "
        "overlap ratio increases"
    )
    return table


def run_table1b(scale: Scale = SMALL) -> ResultTable:
    table = ResultTable(
        title=f"Table 1b (scale={scale.name}): distinct entities vs #sets",
        columns=["n_sets (paper)", "n_sets (ours)", "distinct_entities", "paper"],
    )
    for paper_n, config in zip(
        PAPER_TABLE1B, table1b_configs(scale=scale.divisor)
    ):
        collection = generate_collection(config)
        table.add(
            paper_n, config.n_sets, collection.n_entities, PAPER_TABLE1B[paper_n]
        )
    table.note("shape check: distinct entities grow sub-linearly with n")
    return table


def run_table1c(scale: Scale = SMALL) -> ResultTable:
    table = ResultTable(
        title=f"Table 1c (scale={scale.name}): distinct entities vs set size",
        columns=["size range", "n_sets", "distinct_entities", "paper (at n=10k)"],
    )
    for (lo, hi), config in zip(
        PAPER_TABLE1C, table1c_configs(scale=scale.divisor)
    ):
        collection = generate_collection(config)
        table.add(
            f"{lo}-{hi}",
            config.n_sets,
            collection.n_entities,
            PAPER_TABLE1C[(lo, hi)],
        )
    table.note("shape check: distinct entities grow with the set size range")
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    """All three panels of Table 1."""
    return [run_table1a(scale), run_table1b(scale), run_table1c(scale)]

"""Experiment: Table 4 — pruning effectiveness on the baseball dataset.

For each target query's candidate collection, a full decision tree is
constructed with instrumented 2-LP; at every node the fraction of
informative entities that were *never expanded* (pruned by the sorted
early break before their k-step bound was computed) is recorded.  Table 4
reports the average and minimum fraction across all nodes, per target —
the paper sees >90% average pruning everywhere and up to 99.9%.
"""

from __future__ import annotations

from ..core.bounds import AD
from ..core.construction import build_tree
from ..core.lookahead import KLPSelector
from ..querydisc.pipeline import build_query_collection
from ..querydisc.targets import BaseballWorkload
from .common import ResultTable, Scale, SMALL
from .workloads import baseball_workload

#: Paper Table 4 values (percent pruned, k=2).
PAPER_TABLE4 = {
    "T1": (97.3, 90.1),
    "T2": (99.4, 94.6),
    "T3": (99.1, 96.5),
    "T4": (99.7, 98.0),
    "T5": (88.5, 30.6),
    "T6": (99.7, 98.1),
    "T7": (99.9, 99.5),
}


def run_table4(
    scale: Scale = SMALL,
    workload: BaseballWorkload | None = None,
    k: int = 2,
) -> ResultTable:
    workload = workload or baseball_workload(scale)
    table = ResultTable(
        title=(
            f"Table 4 (scale={scale.name}, k={k}): % of entities pruned "
            "at all nodes"
        ),
        columns=[
            "target",
            "avg % pruned",
            "paper avg",
            "min % pruned",
            "paper min",
            "nodes",
        ],
    )
    for name in sorted(workload.cases):
        case = workload.case(name)
        qc = build_query_collection(case)
        if qc.collection.n_sets < 2:
            continue
        selector = KLPSelector(k=k, metric=AD, collect_stats=True)
        build_tree(qc.collection, selector)
        stats = selector.stats
        assert stats is not None
        paper_avg, paper_min = PAPER_TABLE4[name]
        table.add(
            name,
            round(100.0 * stats.average_pruned, 1),
            paper_avg,
            round(100.0 * stats.min_pruned, 1),
            paper_min,
            len(stats.records),
        )
    table.note(
        "pruned = informative entities whose k-step bound was never "
        "computed thanks to the sorted 1-step-bound early break"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_table4(scale)]

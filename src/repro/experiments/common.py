"""Shared experiment infrastructure: scales, timing, ASCII reporting.

Every experiment runner in this package returns a :class:`ResultTable` —
plain rows with named columns — so benches, tests and the CLI can all
render or assert on the same structure.  Reports are deliberately paper-
shaped: one table or series per paper table/figure, with the paper's own
numbers alongside ours where the paper prints them.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence


@dataclass(frozen=True)
class Scale:
    """Experiment scale: divides the paper's workload sizes.

    ``divisor=1`` is the paper-scale run; the ``small`` default keeps every
    sweep's *shape* while staying laptop-friendly in pure Python (see
    DESIGN.md Sec. 4 for the policy and EXPERIMENTS.md for what each scale
    actually ran).
    """

    name: str
    divisor: int
    #: cap on sets per constructed tree, None = no cap
    max_sets: int | None = None

    def __post_init__(self) -> None:
        if self.divisor < 1:
            raise ValueError(
                f"scale divisor must be >= 1, got {self.divisor}"
            )

    def scaled(self, value: int) -> int:
        return max(1, value // self.divisor)


SMALL = Scale("small", 20, max_sets=600)
MEDIUM = Scale("medium", 8, max_sets=2_000)
PAPER = Scale("paper", 1, max_sets=None)

SCALES = {s.name: s for s in (SMALL, MEDIUM, PAPER)}


def scale_by_name(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


@dataclass
class ResultTable:
    """A named table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} "
                f"columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        headers = [str(c) for c in self.columns]
        body = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body))
            if body
            else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            self.title,
            "=" * len(self.title),
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            sep,
        ]
        for row in body:
            lines.append(
                " | ".join(v.ljust(w) for v, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@contextmanager
def stopwatch() -> Iterator[list[float]]:
    """``with stopwatch() as t: ...`` — elapsed seconds land in ``t[0]``."""
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; ignores non-positive entries defensively."""
    clean = [v for v in values if v > 0]
    if not clean:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in clean) / len(clean)))


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)

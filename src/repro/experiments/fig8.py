"""Experiment: Fig. 8 — query discovery on the baseball database.

For each target query T1-T7, discovery runs with InfoGain (the baseline),
2-LP, 3-LPLE(q=10) and 3-LPLVE(q=10) — the paper's four reported methods —
and records (a) the number of membership questions until the target query
emerges and (b) the discovery wall-clock time.  The paper's shape: the
lookahead methods need no more (usually fewer) questions than InfoGain,
while InfoGain is the fastest in wall-clock.
"""

from __future__ import annotations

from ..core.bounds import AD
from ..core.lookahead import KLPSelector
from ..core.selection import EntitySelector, InfoGainSelector
from ..querydisc.pipeline import build_query_collection, discover_target_query
from ..querydisc.targets import BaseballWorkload
from .common import ResultTable, Scale, SMALL
from .workloads import baseball_workload

#: Paper Fig. 8a values (number of questions), for side-by-side display.
PAPER_FIG8A = {
    "T1": (10, 10, 10, 10),
    "T2": (10, 9, 10, 10),
    "T3": (10, 10, 9, 9),
    "T4": (10, 10, 9, 9),
    "T5": (11, 11, 10, 10),
    "T6": (10, 9, 9, 9),
    "T7": (10, 11, 10, 10),
}


def paper_selectors() -> list[EntitySelector]:
    """The paper's four reported configurations (Sec. 5.3.1 defaults)."""
    return [
        InfoGainSelector(),
        KLPSelector(k=2, metric=AD),
        KLPSelector(k=3, metric=AD, q=10),
        KLPSelector(k=3, metric=AD, q=10, variable=True),
    ]


def run_fig8(
    scale: Scale = SMALL,
    workload: BaseballWorkload | None = None,
) -> list[ResultTable]:
    workload = workload or baseball_workload(scale)
    selectors = paper_selectors()
    questions = ResultTable(
        title=f"Fig. 8a (scale={scale.name}): number of questions",
        columns=[
            "target",
            *(s.name for s in selectors),
            "paper (IG,2LP,LE,LVE)",
            "#cand sets",
        ],
    )
    timing = ResultTable(
        title=f"Fig. 8b (scale={scale.name}): query discovery time (s)",
        columns=["target", *(s.name for s in selectors)],
    )
    for name in sorted(workload.cases):
        case = workload.case(name)
        qc = build_query_collection(case)
        if qc.collection.n_sets < 2:
            continue
        q_row: list[object] = [name]
        t_row: list[object] = [name]
        for selector in selectors:
            outcome = discover_target_query(case, selector, qc)
            q_row.append(outcome.n_questions)
            t_row.append(round(outcome.discovery_seconds, 4))
        q_row.append("/".join(str(v) for v in PAPER_FIG8A[name]))
        q_row.append(qc.n_unique_sets)
        questions.add(*q_row)
        timing.add(*t_row)
    questions.note(
        "shape check: lookahead methods need <= InfoGain questions for "
        "nearly every target"
    )
    timing.note(
        "shape check: InfoGain is fastest; lookahead costs more selection "
        "time per question"
    )
    return [questions, timing]


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return run_fig8(scale)

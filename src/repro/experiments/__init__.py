"""Experiment runners regenerating every table and figure of Sec. 5.

Each module exposes ``run(scale) -> list[ResultTable]``; :data:`REGISTRY`
maps experiment ids (as used by the CLI and the benches) to those runners.
"""

from typing import Callable

from . import (
    ablation,
    comparison,
    fig3,
    fig4,
    fig567,
    fig8,
    params,
    table1,
    table2_3,
    table4,
)
from .common import (
    MEDIUM,
    PAPER,
    SCALES,
    SMALL,
    ResultTable,
    Scale,
    scale_by_name,
)

#: experiment id -> runner; ids mirror the paper's tables and figures.
REGISTRY: dict[str, Callable[[Scale], "list[ResultTable]"]] = {
    "table1": table1.run,
    "table2_3": table2_3.run,
    "table4": table4.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": lambda scale: [fig567.run_fig5(scale)],
    "fig6": lambda scale: [fig567.run_fig6(scale)],
    "fig7": lambda scale: [fig567.run_fig7(scale)],
    "fig8": fig8.run,
    "params": params.run,
    "comparison": comparison.run,
    "ablation": ablation.run,
}


def run_experiment(name: str, scale: "Scale | str" = SMALL) -> "list[ResultTable]":
    """Run one experiment by id; accepts a scale name or object."""
    if isinstance(scale, str):
        scale = scale_by_name(scale)
    try:
        runner = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None
    return runner(scale)


__all__ = [
    "REGISTRY",
    "run_experiment",
    "ResultTable",
    "Scale",
    "scale_by_name",
    "SCALES",
    "SMALL",
    "MEDIUM",
    "PAPER",
]

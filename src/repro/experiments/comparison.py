"""Experiment: Sec. 5.3.2 — comparison with InfoGain and gap to optimal.

Two analyses on web-table sub-collections:

* **Improvement over InfoGain**: trees are built per sub-collection with
  InfoGain, 2-LP, 3-LPLE and 3-LPLVE under both cost metrics; the mean
  per-sub-collection improvement (InfoGain cost minus ours) and a paired
  one-tailed t-test assess significance (the paper reports significance
  at alpha = 0.01, H improvements near one question, small AD improvements
  because InfoGain's AD is already near-optimal).
* **Gap to optimal**: on sub-collections small enough for the exact
  search, InfoGain's AD gap to the optimum (paper: about 0.048 on
  average) and the lookahead methods' gaps.
"""

from __future__ import annotations

from scipy import stats as scipy_stats

from ..core.bounds import AD, H, CostMetric
from ..core.construction import build_tree
from ..core.lookahead import KLPSelector
from ..core.optimal import optimal_cost
from ..core.selection import EntitySelector, InfoGainSelector
from .common import ResultTable, Scale, SMALL, mean
from .workloads import webtable_tasks


def _methods(metric: CostMetric) -> list[EntitySelector]:
    return [
        KLPSelector(k=2, metric=metric),
        KLPSelector(k=3, metric=metric, q=10),
        KLPSelector(k=3, metric=metric, q=10, variable=True),
    ]


def _tree_cost(collection, selector, mask, metric: CostMetric) -> float:
    selector.reset()
    tree = build_tree(collection, selector, mask)
    return metric.tree_cost(tree.depths())


def run_infogain_comparison(
    scale: Scale = SMALL,
    max_tasks: int = 8,
) -> ResultTable:
    tasks = webtable_tasks(scale, max_tasks=max_tasks)
    table = ResultTable(
        title=(
            f"Sec. 5.3.2 (scale={scale.name}): improvement over InfoGain "
            f"({len(tasks)} sub-collections)"
        ),
        columns=[
            "metric",
            "method",
            "mean InfoGain cost",
            "mean method cost",
            "mean improvement",
            "one-tailed p",
        ],
    )
    if not tasks:
        table.note("no qualifying sub-collections at this scale")
        return table
    for metric in (AD, H):
        baseline_costs = [
            _tree_cost(
                task.collection, InfoGainSelector(), task.mask, metric
            )
            for task in tasks
        ]
        for selector in _methods(metric):
            ours = [
                _tree_cost(task.collection, selector, task.mask, metric)
                for task in tasks
            ]
            diffs = [b - o for b, o in zip(baseline_costs, ours)]
            if all(d == 0 for d in diffs):
                p_value = 1.0
            else:
                # Paired, one-tailed: is InfoGain's cost greater than ours?
                result = scipy_stats.ttest_rel(
                    baseline_costs, ours, alternative="greater"
                )
                p_value = float(result.pvalue)
            table.add(
                metric.name,
                selector.name,
                round(mean(baseline_costs), 3),
                round(mean(ours), 3),
                round(mean(diffs), 3),
                round(p_value, 4),
            )
    table.note(
        "shape check: improvements are non-negative; H gains are larger "
        "than AD gains (InfoGain's AD is already near-optimal)"
    )
    return table


def run_optimal_gap(
    scale: Scale = SMALL,
    max_tasks: int = 6,
    max_sets: int = 13,
    seed: int = 0,
) -> ResultTable:
    """Gap to the exact optimum on small candidate sub-collections.

    The exact search is exponential, so each web-table sub-collection is
    down-sampled to ``max_sets`` of its candidate sets (seeded) — a valid
    discovery instance in its own right, exactly what a user with more
    initial examples would face.
    """
    import random

    from ..core.bitmask import iter_bits

    tasks = webtable_tasks(scale, max_tasks=max_tasks * 2)
    rng = random.Random(seed)
    small: list[tuple] = []
    for task in tasks[:max_tasks]:
        indices = list(iter_bits(task.mask))
        if len(indices) > max_sets:
            indices = rng.sample(indices, max_sets)
        sub_mask = 0
        for idx in indices:
            sub_mask |= 1 << idx
        small.append((task.collection, sub_mask))
    table = ResultTable(
        title=(
            f"Sec. 5.3.2 (scale={scale.name}): AD gap to the exact "
            f"optimum ({len(small)} sampled sub-collections of "
            f"<= {max_sets} sets)"
        ),
        columns=["method", "mean AD", "mean optimal AD", "mean gap"],
    )
    if not small:
        table.note("no qualifying sub-collections at this scale")
        return table
    optima = [
        optimal_cost(coll, AD, mask, max_sets=max_sets + 2)
        for coll, mask in small
    ]
    methods: list[EntitySelector] = [InfoGainSelector(), *_methods(AD)]
    for selector in methods:
        ads = [
            _tree_cost(coll, selector, mask, AD) for coll, mask in small
        ]
        gaps = [a - o for a, o in zip(ads, optima)]
        table.add(
            selector.name,
            round(mean(ads), 3),
            round(mean(optima), 3),
            round(mean(gaps), 3),
        )
    table.note(
        "paper: InfoGain's mean AD gap to optimal is about 0.048; "
        "lookahead methods close most of it"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_infogain_comparison(scale), run_optimal_gap(scale)]

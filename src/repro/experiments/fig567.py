"""Experiments: Figs. 5-7 — synthetic parameter sweeps.

* **Fig. 5** sweeps the overlap ratio (Table 1a): the average number of
  questions is U-shaped with a minimum near alpha = 0.9, and construction
  time falls as overlap rises (fewer distinct entities to scan).
* **Fig. 6** sweeps the set size range (Table 1c), i.e. the number of
  distinct entities: questions barely move, construction time grows —
  roughly linearly for the beam variants, quadratically for 2-LP.
* **Fig. 7** sweeps the number of sets (Table 1b): each doubling of n adds
  roughly one question (AD ≈ log2 n), and construction time grows
  super-linearly because the entity count grows alongside n.

The average number of questions over all possible targets equals the
constructed tree's AD, which is what the runners report.
"""

from __future__ import annotations

from ..core.bounds import AD
from ..core.construction import build_and_summarize
from ..core.lookahead import KLPSelector
from ..core.selection import EntitySelector
from ..data.synthetic import (
    TABLE1A_OVERLAPS,
    TABLE1B_SET_COUNTS,
    TABLE1C_SIZE_RANGES,
)
from .common import ResultTable, Scale, SMALL
from .workloads import synthetic_collection


def _selectors(k: int = 2, q: int = 10) -> list[EntitySelector]:
    return [
        KLPSelector(k=k, metric=AD),
        KLPSelector(k=3, metric=AD, q=q),
        KLPSelector(k=3, metric=AD, q=q, variable=True),
    ]


def _sweep_row(
    table: ResultTable,
    label: object,
    collection,
    selectors: list[EntitySelector],
) -> None:
    cells: list[object] = [label, collection.n_sets, collection.n_entities]
    for selector in selectors:
        selector.reset()
        _, summary = build_and_summarize(collection, selector)
        cells.extend(
            [round(summary.average_depth, 3),
             round(summary.construction_seconds, 4)]
        )
    table.add(*cells)


def _sweep_columns(selectors: list[EntitySelector]) -> list[str]:
    cols = ["param", "n_sets", "n_entities"]
    for selector in selectors:
        cols.extend([f"AD {selector.name}", f"time(s) {selector.name}"])
    return cols


def run_fig5(
    scale: Scale = SMALL,
    overlaps: tuple[float, ...] = TABLE1A_OVERLAPS,
) -> ResultTable:
    selectors = _selectors()
    table = ResultTable(
        title=(
            f"Fig. 5 (scale={scale.name}): questions & time vs overlap "
            "ratio (n=10k/scale, d=50-60)"
        ),
        columns=_sweep_columns(selectors),
    )
    n = scale.scaled(10_000)
    for alpha in overlaps:
        collection = synthetic_collection(n_sets=n, overlap=alpha)
        _sweep_row(table, alpha, collection, selectors)
    table.note(
        "shape check: AD is minimal near overlap 0.9 and rises towards "
        "both extremes; time falls as overlap rises"
    )
    return table


def run_fig6(
    scale: Scale = SMALL,
    size_ranges: tuple[tuple[int, int], ...] = TABLE1C_SIZE_RANGES,
) -> ResultTable:
    selectors = _selectors()
    table = ResultTable(
        title=(
            f"Fig. 6 (scale={scale.name}): questions & time vs set size "
            "range (n=10k/scale, overlap=0.9)"
        ),
        columns=_sweep_columns(selectors),
    )
    n = scale.scaled(10_000)
    for lo, hi in size_ranges:
        collection = synthetic_collection(
            n_sets=n, overlap=0.9, size_lo=lo, size_hi=hi
        )
        _sweep_row(table, f"{lo}-{hi}", collection, selectors)
    table.note(
        "shape check: AD is flat while construction time grows with the "
        "number of distinct entities (steeper for 2-LP than the beams)"
    )
    return table


def run_fig7(
    scale: Scale = SMALL,
    set_counts: tuple[int, ...] = TABLE1B_SET_COUNTS,
) -> ResultTable:
    selectors = _selectors()
    table = ResultTable(
        title=(
            f"Fig. 7 (scale={scale.name}): questions & time vs number of "
            "sets (overlap=0.9, d=50-60)"
        ),
        columns=_sweep_columns(selectors),
    )
    for paper_n in set_counts:
        n = scale.scaled(paper_n)
        collection = synthetic_collection(n_sets=n, overlap=0.9)
        _sweep_row(table, f"{paper_n}->{n}", collection, selectors)
    table.note(
        "shape check: each doubling of n adds roughly one question "
        "(AD tracks log2 n); time grows super-linearly as m grows with n"
    )
    return table


def run(scale: Scale = SMALL) -> list[ResultTable]:
    return [run_fig5(scale), run_fig6(scale), run_fig7(scale)]

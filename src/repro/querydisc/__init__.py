"""End-to-end query discovery over the baseball substrate (Sec. 5.2.3)."""

from .pipeline import (
    QueryCollection,
    QueryDiscoveryOutcome,
    build_query_collection,
    discover_target_query,
    run_workload,
)
from .targets import (
    BASEBALL_CATEGORICAL,
    BASEBALL_NUMERICAL,
    BaseballWorkload,
    TargetCase,
    baseball_generator_config,
)

__all__ = [
    "QueryCollection",
    "QueryDiscoveryOutcome",
    "build_query_collection",
    "discover_target_query",
    "run_workload",
    "BASEBALL_CATEGORICAL",
    "BASEBALL_NUMERICAL",
    "BaseballWorkload",
    "TargetCase",
    "baseball_generator_config",
]

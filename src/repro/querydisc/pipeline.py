"""End-to-end query discovery (Sec. 5.2.3 / Sec. 5.3.6).

The pipeline stitches the substrates together:

1. take a target query and its example tuples (:mod:`.targets`);
2. generate candidate CNF queries containing the examples
   (:mod:`repro.relational.generator`);
3. materialise every candidate's output as a set of row ids and wrap the
   *unique* outputs as a :class:`~repro.core.collection.SetCollection`
   (the paper's sets are unique; several syntactically different queries
   can share one output, and the provenance map keeps them all);
4. run interactive set discovery with a simulated user answering
   membership questions against the target's true output;
5. report the discovered query/queries, the number of questions, and the
   discovery time — the quantities of Fig. 8 and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.collection import SetCollection
from ..core.discovery import DiscoverySession
from ..core.selection import EntitySelector
from ..oracle.user import SimulatedUser
from ..relational.generator import (
    CandidateQueries,
    generate_candidate_queries,
)
from .targets import BaseballWorkload, TargetCase, baseball_generator_config


@dataclass
class QueryCollection:
    """Unique candidate outputs as a set collection, with provenance."""

    collection: SetCollection
    candidates: CandidateQueries
    #: set index -> indices (into candidates.queries) sharing that output
    provenance: dict[int, list[int]]
    #: candidate output sizes (before dedupe), for Table 3's average
    output_sizes: list[int]

    @property
    def n_candidate_queries(self) -> int:
        return self.candidates.n_queries

    @property
    def n_unique_sets(self) -> int:
        return self.collection.n_sets

    @property
    def average_output_size(self) -> float:
        if not self.output_sizes:
            return 0.0
        return sum(self.output_sizes) / len(self.output_sizes)

    def queries_for_set(self, set_index: int) -> list[str]:
        """SQL of the candidate queries behind one set."""
        return [
            self.candidates.queries[qi].sql()
            for qi in self.provenance[set_index]
        ]


def build_query_collection(case: TargetCase, max_columns: int = 2) -> QueryCollection:
    """Steps 2-3: candidates for the case's examples, as a collection.

    Entities are labelled with ``playerID`` strings so discovery questions
    read as "is player X in your query's output?".  Candidate queries with
    empty outputs cannot contain the examples and are impossible by
    construction; a defensive check drops them anyway.
    """
    candidates = generate_candidate_queries(
        case.query.table,
        case.example_rows,
        baseball_generator_config(max_columns=max_columns),
    )
    outputs = candidates.evaluate_all()
    table = case.query.table
    unique: dict[frozenset[int], int] = {}
    provenance: dict[int, list[int]] = {}
    kept_sets: list[list[str]] = []
    names: list[str] = []
    sizes: list[int] = []
    for qi, rows in enumerate(outputs):
        if not rows:
            continue
        sizes.append(len(rows))
        idx = unique.get(rows)
        if idx is None:
            idx = len(kept_sets)
            unique[rows] = idx
            kept_sets.append(
                [table.value(rid, "playerID") for rid in sorted(rows)]
            )
            names.append(f"Q{idx}")
            provenance[idx] = []
        provenance[idx].append(qi)
    collection = SetCollection(kept_sets, names=names)
    return QueryCollection(
        collection=collection,
        candidates=candidates,
        provenance=provenance,
        output_sizes=sizes,
    )


@dataclass
class QueryDiscoveryOutcome:
    """Result of one discovery run against one target query."""

    target: str
    selector: str
    n_candidate_queries: int
    n_unique_sets: int
    average_output_size: float
    n_questions: int
    discovery_seconds: float
    resolved: bool
    target_found: bool
    discovered_queries: list[str] = field(default_factory=list)


def discover_target_query(
    case: TargetCase,
    selector: EntitySelector,
    query_collection: QueryCollection | None = None,
) -> QueryDiscoveryOutcome:
    """Steps 4-5: run discovery for one target with a simulated user.

    ``query_collection`` can be passed in when several selectors are
    compared on the same candidates (Fig. 8), avoiding re-generation.
    """
    qc = query_collection or build_query_collection(case)
    collection = qc.collection
    table = case.query.table
    target_labels = [
        table.value(rid, "playerID") for rid in sorted(case.output_rows)
    ]
    oracle = SimulatedUser(collection, target_labels=target_labels)
    example_labels = [
        table.value(rid, "playerID") for rid in case.example_rows
    ]
    selector.reset()
    session = DiscoverySession(collection, selector, initial=example_labels)
    result = session.run(oracle)
    target_set = frozenset(
        collection.universe.intern(lbl) for lbl in target_labels
    )
    target_found = result.resolved and (
        collection.sets[result.target] == target_set
    )
    discovered = (
        qc.queries_for_set(result.target) if result.resolved else []
    )
    return QueryDiscoveryOutcome(
        target=case.name,
        selector=selector.name,
        n_candidate_queries=qc.n_candidate_queries,
        n_unique_sets=qc.n_unique_sets,
        average_output_size=qc.average_output_size,
        n_questions=result.n_questions,
        discovery_seconds=result.seconds,
        resolved=result.resolved,
        target_found=target_found,
        discovered_queries=discovered,
    )


def run_workload(
    workload: BaseballWorkload,
    selector: EntitySelector,
    targets: "list[str] | None" = None,
) -> dict[str, QueryDiscoveryOutcome]:
    """Run one selector over several targets (a Fig. 8 column)."""
    names = targets if targets is not None else sorted(workload.cases)
    outcomes: dict[str, QueryDiscoveryOutcome] = {}
    for name in names:
        case = workload.case(name)
        outcomes[name] = discover_target_query(case, selector)
    return outcomes

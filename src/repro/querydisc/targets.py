"""Target-query workload for the baseball experiment (Sec. 5.2.3).

Bundles a generated People table with the paper's seven target queries and
the per-target example tuples (two seeded random rows of each target's
output, exactly the paper's protocol: "for each target query, we randomly
selected 2 output tuples as the example tuples").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational.baseball import generate_people_table, target_queries
from ..relational.generator import (
    BASEBALL_REFERENCE_VALUES,
    GeneratorConfig,
)
from ..relational.query import SelectQuery
from ..relational.table import Table

#: The paper's column grouping (Sec. 5.2.3, step 1).  ``playerID`` is the
#: row identifier and never a query column.
BASEBALL_CATEGORICAL = (
    "birthCountry",
    "birthState",
    "birthCity",
    "birthMonth",
    "birthDay",
    "bats",
    "throws",
)
BASEBALL_NUMERICAL = ("birthYear", "height", "weight")


def baseball_generator_config(max_columns: int = 2) -> GeneratorConfig:
    """The Sec. 5.2.3 generator configuration for the People table."""
    return GeneratorConfig(
        reference_values=BASEBALL_REFERENCE_VALUES,
        categorical=BASEBALL_CATEGORICAL,
        numerical=BASEBALL_NUMERICAL,
        max_columns=max_columns,
    )


@dataclass(frozen=True)
class TargetCase:
    """One target query with its output and chosen example tuples."""

    name: str
    query: SelectQuery
    output_rows: frozenset[int]
    example_rows: tuple[int, ...]

    @property
    def output_size(self) -> int:
        return len(self.output_rows)

    def example_player_ids(self) -> tuple[str, ...]:
        table = self.query.table
        return tuple(
            table.value(rid, "playerID") for rid in self.example_rows
        )


@dataclass
class BaseballWorkload:
    """People table + the seven targets, ready for query discovery."""

    table: Table
    cases: dict[str, TargetCase]

    @classmethod
    def build(
        cls,
        n_players: int | None = None,
        n_examples: int = 2,
        seed: int = 20185,
        example_seed: int = 7,
    ) -> "BaseballWorkload":
        """Generate the table and select example tuples per target.

        A target whose output has fewer rows than ``n_examples`` (possible
        at tiny test scales) uses its whole output as the examples.
        """
        table = (
            generate_people_table(seed=seed)
            if n_players is None
            else generate_people_table(n_players=n_players, seed=seed)
        )
        cases: dict[str, TargetCase] = {}
        for name, query in target_queries(table).items():
            output = query.evaluate()
            # String seeds hash stably (sha512) across processes, unlike
            # tuple seeds which go through PYTHONHASHSEED-randomised hash().
            rng = random.Random(f"{example_seed}:{name}")
            ordered = sorted(output)
            if not ordered:
                continue  # degenerate at tiny scales; callers must check
            take = min(n_examples, len(ordered))
            examples = tuple(rng.sample(ordered, take))
            cases[name] = TargetCase(
                name=name,
                query=query,
                output_rows=output,
                example_rows=examples,
            )
        return cls(table=table, cases=cases)

    def case(self, name: str) -> TargetCase:
        try:
            return self.cases[name]
        except KeyError:
            raise KeyError(
                f"no target {name!r}; available: {sorted(self.cases)}"
            ) from None

"""HTTP/WebSocket serving edge over :class:`AsyncDiscoveryService`.

The in-process async stack (``docs/serving.md``) simulates "millions of
users" inside one interpreter; this module is the real network edge.  Two
pieces, deliberately separable:

* :class:`DiscoveryApp` — a standard **ASGI 3** application wrapping one
  :class:`~repro.serve.async_service.AsyncDiscoveryService`.  Routes::

      POST /sessions                  create a session -> {session, token}
      GET  /sessions/{id}/question    await the next question (long-poll)
      POST /sessions/{id}/answer      record the user's reply
      GET  /sessions/{id}/result      await the session's outcome
      POST /admin/delta               apply a collection delta batch
      GET  /metrics                   Prometheus text exposition
      GET  /healthz                   liveness/drain status
      GET  /ws                        WebSocket push-style sessions

  Every session-scoped route requires the bearer token minted at
  creation (``Authorization: Bearer <token>``); requests are validated
  with clear 4xx JSON errors and a drain rejects *new* sessions with 503
  while in-flight sessions finish.  Being plain ASGI, the app runs under
  ``uvicorn`` unchanged (the ``http`` extra) — production deployments
  should prefer that.

  ``POST /admin/delta`` is the mutation edge of the epoch-versioned
  collection model (``docs/collections.md``): it takes a JSON delta
  batch, applies it through
  :meth:`~repro.serve.async_service.AsyncDiscoveryService.apply_delta`,
  and answers with the new epoch.  It is disabled unless the app was
  constructed with an ``admin_token``, which the request must present as
  its bearer token — the per-session tokens never authorize it.

  Abandoned sessions no longer leak: give the app a ``session_ttl_s``
  and a lazy sweep (piggy-backed on request handling and on the drain
  poll loop) expires handles idle past the TTL, provided the service
  agrees the session is not mid-interaction.  Expired ids answer 404
  ``session_expired`` — deliberately distinct from ``unknown-session``
  so clients can tell "come back later won't help" from a typo.

* :class:`EmbeddedServer` — a stdlib-only ``asyncio`` HTTP/1.1 +
  WebSocket (RFC 6455) server hosting any ASGI app, so tests, CI and the
  default ``python -m repro serve`` need **no** third-party dependency.
  It supports keep-alive connections, Content-Length bodies and the
  subset of the websocket protocol the app speaks (text frames,
  ping/pong, close handshake); it does not implement chunked uploads or
  frame fragmentation.

The WebSocket protocol is session-per-connection (push-style): the
client's first JSON message either ``{"type": "create", ...}`` (same
fields as ``POST /sessions``) or ``{"type": "attach", "session": id,
"token": t}``; the server then pushes ``question`` messages and expects
``{"type": "answer", "value": true|false|null}`` replies, closing with a
final ``result`` message.  Transcripts over either transport are
byte-identical to in-process runs — ``tests/test_http.py`` holds them to
the same golden-serialization the engine tests use.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import math
import re
import secrets
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Hashable, Mapping
from urllib.parse import unquote

from ..core.bounds import metric_by_name
from ..core.collection import DeltaBatch, DeltaError, DuplicateSetError
from ..core.lookahead import KLPSelector
from ..core.selection import (
    InfoGainSelector,
    MostEvenSelector,
    RandomSelector,
)
from .async_service import (
    AsyncDiscoveryService,
    ServiceClosed,
    ServiceOverloaded,
    SessionExpired,
    WorkerLost,
)

__all__ = [
    "DiscoveryApp",
    "EmbeddedServer",
    "build_selector_from_spec",
    "delta_batch_from_spec",
    "result_payload",
]

#: request bodies past this size are rejected with 413 (no legitimate
#: create/answer payload comes close; a cap keeps the edge bounded)
MAX_BODY_BYTES = 1 << 20

_PHRASES = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

_SESSION_ROUTE = re.compile(r"^/sessions/([^/]+)/(question|answer|result)$")


class _HTTPError(Exception):
    """Internal control flow: abort the request with a JSON error."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def build_selector_from_spec(spec: Mapping) -> object:
    """An entity selector from a JSON session-creation spec.

    ``{"selector": "infogain" | "most-even" | "random" | "klp",
    "k": int, "q": int, "variable": bool, "metric": "AD" | "H",
    "seed": int}`` — unknown names and malformed knobs raise
    ``ValueError`` (mapped to 400 by the route handler).
    """
    name = spec.get("selector", "infogain")
    if name == "infogain":
        return InfoGainSelector()
    if name == "most-even":
        return MostEvenSelector()
    if name == "random":
        return RandomSelector(seed=int(spec.get("seed", 0)))
    if name == "klp":
        q = spec.get("q")
        variable = bool(spec.get("variable", False))
        if variable and q is None:
            q = 10
        return KLPSelector(
            k=int(spec.get("k", 2)),
            metric=metric_by_name(str(spec.get("metric", "AD"))),
            q=None if q is None else int(q),
            variable=variable,
        )
    raise ValueError(f"unknown selector {name!r}")


def delta_batch_from_spec(spec: Mapping) -> DeltaBatch:
    """A :class:`DeltaBatch` from the ``POST /admin/delta`` JSON shape.

    ``{"add": {name: [labels]}, "remove": [names],
    "update": {name: {"add": [labels], "remove": [labels]}}}`` — every
    key optional, malformed shapes raise ``ValueError`` (mapped to 400
    by the route handler; unknown names/labels surface later as
    :class:`~repro.core.collection.DeltaError`).
    """
    batch = DeltaBatch()
    adds = spec.get("add", {})
    if not isinstance(adds, Mapping):
        raise ValueError("'add' must be an object of {name: [labels]}")
    for name, members in adds.items():
        if not isinstance(members, (list, tuple)):
            raise ValueError(f"'add' members of {name!r} must be a list")
        batch.add_sets({name: members})
    removes = spec.get("remove", ())
    if not isinstance(removes, (list, tuple)):
        raise ValueError("'remove' must be a list of set names")
    if removes:
        batch.remove_sets(removes)
    updates = spec.get("update", {})
    if not isinstance(updates, Mapping):
        raise ValueError("'update' must be an object of {name: {...}}")
    for name, change in updates.items():
        if not isinstance(change, Mapping):
            raise ValueError(f"'update' entry {name!r} must be an object")
        add = change.get("add", ())
        drop = change.get("remove", ())
        if not isinstance(add, (list, tuple)) or not isinstance(
            drop, (list, tuple)
        ):
            raise ValueError(
                f"'update' entry {name!r} needs list-valued add/remove"
            )
        batch.update_membership(name, add=add, remove=drop)
    return batch


def result_payload(key: Hashable, result) -> dict:
    """JSON shape of a finished session's ``DiscoveryResult``.

    The transcript serialization mirrors the golden-transcript tests
    (entity/answer/candidate counts per interaction) so HTTP results can
    be compared byte-for-byte against in-process runs.
    """
    return {
        "session": str(key),
        "resolved": result.resolved,
        "candidates": list(result.candidates),
        "n_questions": result.n_questions,
        "n_unanswered": result.n_unanswered,
        "seconds": result.seconds,
        "transcript": [
            {
                "entity": i.entity,
                "answer": i.answer,
                "candidates_before": i.candidates_before,
                "candidates_after": i.candidates_after,
            }
            for i in result.transcript
        ],
    }


@dataclass
class _SessionHandle:
    """One HTTP-created session: its registry key and bearer token."""

    key: Hashable
    token: str
    created_at: float = field(default_factory=time.monotonic)
    last_seen: float = field(default_factory=time.monotonic)

    def touch(self) -> None:
        self.last_seen = time.monotonic()


#: how many expired session ids are remembered for the 404
#: ``session_expired`` distinction (bounded so the memory of expired
#: sessions cannot itself become the leak the TTL sweep removes)
EXPIRED_IDS_REMEMBERED = 4096


class DiscoveryApp:
    """ASGI 3 application exposing one async discovery service.

    Parameters
    ----------
    service:
        The :class:`AsyncDiscoveryService` this edge fronts — or a
        :class:`~repro.serve.cluster.ClusterService` sharding sessions
        across worker processes.  The app duck-types the differences
        (spec-level spawn/delta, awaitable verbs, async metrics render)
        so the single-process path stays byte-identical.
    require_auth:
        When true (default), session-scoped routes demand the bearer
        token minted by ``POST /sessions``.  ``False`` is for trusted
        loopback setups (the load bench still authenticates).
    collection_info:
        Optional static facts merged into ``GET /healthz`` (the CLI puts
        the collection shape and backend here).
    session_ttl_s:
        Idle TTL for HTTP session handles.  A session not touched by any
        authorized request for this long is expired by a lazy sweep
        (requests and the drain loop trigger it) *if* the service agrees
        it is idle — mid-interaction sessions are never reaped.  Expired
        ids answer 404 ``session_expired``; ``None`` (default) keeps the
        pre-TTL behaviour of remembering every handle forever.
    admin_token:
        Bearer token authorizing ``POST /admin/delta``.  ``None``
        (default) disables the admin surface entirely (403
        ``admin-disabled``); session tokens never authorize it.
    """

    def __init__(
        self,
        service: AsyncDiscoveryService,
        *,
        require_auth: bool = True,
        collection_info: Mapping | None = None,
        session_ttl_s: float | None = None,
        admin_token: str | None = None,
    ) -> None:
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be positive (or None)")
        self.service = service
        self.metrics = service.metrics
        self.require_auth = require_auth
        self.collection_info = dict(collection_info or {})
        self.session_ttl_s = session_ttl_s
        self.admin_token = admin_token
        self._sessions: dict[str, _SessionHandle] = {}
        #: expired sid -> None, insertion-ordered so the oldest memories
        #: fall off first once EXPIRED_IDS_REMEMBERED is reached
        self._expired: dict[str, None] = {}
        self._next_sweep = 0.0
        self._draining = False

    # ------------------------------------------------------------------ #
    # Drain / lifecycle
    # ------------------------------------------------------------------ #

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Reject new sessions (503) while in-flight ones keep serving."""
        self._draining = True
        self.service.begin_drain()

    async def drain(
        self, grace_s: float | None = 5.0, poll_s: float = 0.05
    ) -> None:
        """Graceful shutdown: drain, wait for active sessions, close.

        New sessions are rejected immediately; live sessions get up to
        ``grace_s`` seconds to finish (``None`` waits forever).  Then the
        service closes — its running flush completes first, and any still
        -pending waiter is rejected with :class:`ServiceClosed`, which
        in-flight HTTP requests surface as 503.
        """
        self.begin_drain()
        deadline = None if grace_s is None else time.monotonic() + grace_s
        while await self._active_sessions() and (
            deadline is None or time.monotonic() < deadline
        ):
            # The drain poll doubles as the TTL sweeper's last chance:
            # abandoned sessions past their TTL are reaped here instead
            # of pinning the drain until its grace deadline.
            await self.sweep_expired()
            await asyncio.sleep(poll_s)
        await self.service.aclose()

    async def _active_sessions(self) -> int:
        """Active sessions, local or summed across cluster workers."""
        counter = getattr(self.service, "active_count", None)
        if counter is not None:
            return await counter()
        return self.service.n_active

    # ------------------------------------------------------------------ #
    # Session TTL sweep
    # ------------------------------------------------------------------ #

    async def sweep_expired(self, force: bool = False) -> int:
        """Expire session handles idle past ``session_ttl_s``.

        Lazy by design: piggy-backed on request handling (throttled to at
        most one pass per quarter-TTL) and on the drain poll loop, so no
        background task is needed.  A handle is reaped only when the
        service's :meth:`~repro.serve.async_service.AsyncDiscoveryService.expire`
        agrees the session is idle — queued scan work and undelivered
        replies veto it.  A still-waiting long-poll does *not* veto
        (after a full idle TTL its client is gone): the expiry wakes it
        with ``404 session_expired`` immediately.  Returns the number of
        sessions expired by this pass.
        """
        ttl = self.session_ttl_s
        if ttl is None:
            return 0
        now = time.monotonic()
        if not force and now < self._next_sweep:
            return 0
        self._next_sweep = now + max(ttl / 4.0, 0.05)
        reaped = 0
        registry = getattr(self.service, "registry", None)
        for sid, handle in list(self._sessions.items()):
            if now - handle.last_seen < ttl:
                continue
            if (
                registry is not None
                and registry.result_of(handle.key) is not None
            ):
                # Finished but never collected: the handle is all that
                # leaks (the result map is drainable separately), so just
                # forget it.  (Cluster services have no edge registry;
                # their expire() answers True for finished sessions.)
                pass
            elif not await self.service.expire(handle.key):
                continue  # mid-interaction; retry next sweep
            if self._sessions.get(sid) is handle:
                del self._sessions[sid]
            self._expired[sid] = None
            self.metrics.sessions_expired += 1
            reaped += 1
        while len(self._expired) > EXPIRED_IDS_REMEMBERED:
            self._expired.pop(next(iter(self._expired)))
        return reaped

    # ------------------------------------------------------------------ #
    # ASGI entry point
    # ------------------------------------------------------------------ #

    async def __call__(self, scope, receive, send) -> None:
        kind = scope["type"]
        if kind == "lifespan":
            await self._lifespan(receive, send)
        elif kind == "http":
            await self._handle_http(scope, receive, send)
        elif kind == "websocket":
            await self._handle_websocket(scope, receive, send)
        else:  # pragma: no cover - no other scope types exist today
            raise RuntimeError(f"unsupported ASGI scope type {kind!r}")

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                # A cluster service boots its worker processes here, so
                # hosting under uvicorn needs no CLI-side setup hook.
                starter = getattr(self.service, "start_workers", None)
                if starter is not None:
                    await starter()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                # The host server (uvicorn) already stopped accepting
                # connections and waited for handlers; no further grace.
                try:
                    await self.drain(grace_s=0.0)
                finally:
                    await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------ #
    # HTTP routing
    # ------------------------------------------------------------------ #

    async def _handle_http(self, scope, receive, send) -> None:
        method = scope["method"].upper()
        path = scope["path"]
        route = path
        status = 500
        sid: str | None = None
        retry_after: float | None = None
        await self.sweep_expired()
        try:
            if path == "/sessions":
                route = "/sessions"
                self._require_method(method, "POST")
                body = await self._read_json(receive)
                status, payload = await self._create_session(body)
            elif path == "/admin/delta":
                route = "/admin/delta"
                self._require_method(method, "POST")
                self._authorize_admin(scope)
                body = await self._read_json(receive)
                status, payload = await self._apply_delta(body)
            elif match := _SESSION_ROUTE.match(path):
                sid, verb = match.group(1), match.group(2)
                route = f"/sessions/{{id}}/{verb}"
                handle = self._authorize(scope, sid)
                if verb == "question":
                    self._require_method(method, "GET")
                    status, payload = await self._next_question(handle)
                elif verb == "answer":
                    self._require_method(method, "POST")
                    body = await self._read_json(receive)
                    status, payload = await self._record_answer(handle, body)
                else:
                    self._require_method(method, "GET")
                    status, payload = await self._session_result(handle)
            elif path == "/metrics":
                route = "/metrics"
                self._require_method(method, "GET")
                arender = getattr(self.metrics, "arender_prometheus", None)
                text = (
                    await arender()
                    if arender is not None
                    else self.metrics.render_prometheus()
                )
                await self._send_text(send, 200, text)
                self.metrics.observe_http(route, 200)
                return
            elif path == "/healthz":
                route = "/healthz"
                self._require_method(method, "GET")
                status, payload = 200, await self._health()
            else:
                raise _HTTPError(404, "not-found", f"no route {path}")
        except _HTTPError as exc:
            status = exc.status
            payload = {"error": exc.code, "message": exc.message}
        except ServiceOverloaded as exc:
            # Backpressure: the service shed this call to keep its queues
            # bounded.  429 with Retry-After is the client's back-off
            # contract; the hint also rides in the body for clients that
            # only read JSON.
            status = 429
            retry_after = exc.retry_after_s
            payload = {
                "error": "overloaded",
                "message": str(exc),
                "retry_after_s": exc.retry_after_s,
            }
        except SessionExpired as exc:
            # A long-poll woken because the TTL sweep reaped its session
            # mid-wait: same 404 session_expired as a post-expiry request,
            # delivered now instead of after the poll times out.
            status = 404
            payload = {"error": "session_expired", "message": str(exc)}
            if sid is not None:
                self._sessions.pop(sid, None)
                self._expired[sid] = None
        except ServiceClosed as exc:
            # The drain path's mirror of the aclose() waiter rejection:
            # an in-flight request caught by shutdown ends with a clear
            # 503, never a hang or a naked connection reset.
            status = 503
            payload = {"error": "draining", "message": str(exc)}
        except WorkerLost as exc:
            # Cluster topology only: the engine worker owning this
            # session died (or died before replying to this parked
            # long-poll).  Its shared-nothing state is gone, so the
            # client must start a fresh session — which lands on a live
            # worker while the supervisor restarts the dead one.  The
            # handle stays; the TTL sweep reclaims it.
            status = 503
            payload = {"error": "worker_lost", "message": str(exc)}
        headers = None
        if retry_after is not None:
            headers = [
                (
                    b"retry-after",
                    str(max(1, math.ceil(retry_after))).encode(),
                )
            ]
        await self._send_json(send, status, payload, headers=headers)
        self.metrics.observe_http(route, status)

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(
                405, "method-not-allowed", f"use {expected} on this route"
            )

    async def _read_json(self, receive) -> dict:
        chunks: list[bytes] = []
        total = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise _HTTPError(
                    400, "disconnected", "client went away mid-request"
                )
            chunks.append(message.get("body", b""))
            total += len(chunks[-1])
            if total > MAX_BODY_BYTES:
                raise _HTTPError(
                    413, "payload-too-large", "request body too large"
                )
            if not message.get("more_body"):
                break
        raw = b"".join(chunks)
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HTTPError(
                400, "bad-json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(body, dict):
            raise _HTTPError(
                400, "bad-json", "request body must be a JSON object"
            )
        return body

    # ------------------------------------------------------------------ #
    # Session auth
    # ------------------------------------------------------------------ #

    def _bearer_token(self, scope) -> str | None:
        for name, value in scope["headers"]:
            if name == b"authorization":
                text = value.decode("latin-1")
                if text.lower().startswith("bearer "):
                    return text[7:].strip()
                raise _HTTPError(
                    401,
                    "bad-authorization",
                    "Authorization header must be 'Bearer <token>'",
                )
        return None

    def _authorize(self, scope, sid: str) -> _SessionHandle:
        handle = self._sessions.get(sid)
        if handle is None:
            if sid in self._expired:
                raise _HTTPError(
                    404,
                    "session_expired",
                    f"session {sid!r} expired after "
                    f"{self.session_ttl_s}s idle",
                )
            raise _HTTPError(404, "unknown-session", f"no session {sid!r}")
        if not self.require_auth:
            handle.touch()
            return handle
        token = self._bearer_token(scope)
        if token is None:
            raise _HTTPError(
                401, "missing-token", "this route needs a bearer token"
            )
        if not secrets.compare_digest(token, handle.token):
            raise _HTTPError(
                403, "wrong-token", f"token does not match session {sid!r}"
            )
        handle.touch()
        return handle

    def _authorize_admin(self, scope) -> None:
        """Gate ``/admin/delta``: only the configured admin token passes."""
        if self.admin_token is None:
            raise _HTTPError(
                403, "admin-disabled", "no admin token configured"
            )
        token = self._bearer_token(scope)
        if token is None:
            raise _HTTPError(
                401, "missing-token", "admin routes need a bearer token"
            )
        if not secrets.compare_digest(token, self.admin_token):
            raise _HTTPError(403, "wrong-token", "not the admin token")

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #

    def _check_accepting_sessions(self) -> None:
        if self._draining or not self.service.accepting:
            raise _HTTPError(
                503, "draining", "server is draining; no new sessions"
            )

    async def _spawn_session(
        self, body: Mapping
    ) -> "tuple[_SessionHandle, dict]":
        """Create a session; returns its handle plus placement facts.

        Validation happens here at the edge (clear 400s without a worker
        round trip); construction happens in-process or — when the
        service shards — inside the hash-routed owning worker via
        ``spawn_from_spec``, which reports the key/epoch/candidate count
        in its single round trip.
        """
        self._check_accepting_sessions()
        try:
            build_selector_from_spec(body)
        except (ValueError, TypeError) as exc:
            raise _HTTPError(400, "bad-selector", str(exc)) from None
        initial = body.get("initial", ())
        if not isinstance(initial, (list, tuple)):
            raise _HTTPError(
                400, "bad-initial", "'initial' must be a list of entities"
            )
        max_questions = body.get("max_questions")
        if max_questions is not None and (
            not isinstance(max_questions, int) or max_questions < 1
        ):
            raise _HTTPError(
                400,
                "bad-max-questions",
                "'max_questions' must be a positive integer",
            )
        spawner = getattr(self.service, "spawn_from_spec", None)
        try:
            if spawner is not None:
                info = await spawner(body)
                key = info["session"]
            else:
                key = self.service.spawn(
                    build_selector_from_spec(body),
                    initial=initial,
                    max_questions=max_questions,
                )
                state = self.service.registry.state(key)
                info = {
                    "session": str(key),
                    "n_candidates": state.session.n_candidates,
                    "epoch": state.session.collection.epoch,
                }
        except KeyError as exc:
            raise _HTTPError(
                400, "bad-initial", f"unknown initial entity: {exc}"
            ) from None
        handle = _SessionHandle(key=key, token=secrets.token_urlsafe(24))
        self._sessions[str(key)] = handle
        return handle, info

    async def _create_session(self, body: Mapping) -> tuple[int, dict]:
        handle, info = await self._spawn_session(body)
        return 201, {
            "session": str(handle.key),
            "token": handle.token,
            "n_candidates": info["n_candidates"],
            # The collection epoch this session is pinned to — replay
            # tooling (the soak harness) needs it to pick the right
            # collection replica for a byte-identical sequential rerun.
            "epoch": info["epoch"],
        }

    async def _next_question(self, handle: _SessionHandle) -> tuple[int, dict]:
        entity = await self.service.ask(handle.key)
        if entity is None:
            return 200, {
                "session": str(handle.key),
                "entity": None,
                "finished": True,
            }
        label = self.service.collection.universe.label(entity)
        return 200, {
            "session": str(handle.key),
            "entity": entity,
            "label": label if isinstance(label, (str, int, float)) else str(label),
            "finished": False,
        }

    async def _record_answer(
        self, handle: _SessionHandle, body: Mapping
    ) -> tuple[int, dict]:
        if "answer" not in body:
            raise _HTTPError(
                400, "missing-answer", "body needs {'answer': true|false|null}"
            )
        value = body["answer"]
        if value is not None and not isinstance(value, bool):
            raise _HTTPError(
                400, "bad-answer", "'answer' must be true, false or null"
            )
        try:
            reply = self.service.answer(handle.key, value)
            if reply is not None:
                # Cluster services validate on the owning worker, so the
                # verb is a coroutine there; in-process it stays sync.
                await reply
        except KeyError:
            # The handle exists, so the key is not unknown — the session
            # finished between the question and this answer.
            raise _HTTPError(
                409, "session-finished", "session already finished"
            ) from None
        except ValueError as exc:
            raise _HTTPError(409, "no-pending-question", str(exc)) from None
        return 200, {"session": str(handle.key), "recorded": True}

    async def _session_result(self, handle: _SessionHandle) -> tuple[int, dict]:
        result = await self.service.result(handle.key)
        if isinstance(result, dict):
            # A cluster worker already rendered the payload (the
            # DiscoveryResult never crosses the pipe).
            return 200, result
        return 200, result_payload(handle.key, result)

    async def _apply_delta(self, body: Mapping) -> tuple[int, dict]:
        applier = getattr(self.service, "apply_delta_spec", None)
        try:
            if applier is not None:
                # Cluster: the edge parses/applies its replica and fans
                # the spec out to every worker with per-worker epoch acks.
                return 200, await applier(body)
            batch = delta_batch_from_spec(body)
        except (DeltaError, DuplicateSetError) as exc:
            raise _HTTPError(400, "bad-delta", str(exc)) from None
        except (ValueError, TypeError) as exc:
            raise _HTTPError(400, "bad-delta", str(exc)) from None
        try:
            collection = await self.service.apply_delta(batch)
        except (DeltaError, DuplicateSetError) as exc:
            raise _HTTPError(400, "bad-delta", str(exc)) from None
        return 200, {
            "epoch": collection.epoch,
            "n_sets": len(collection),
            "n_entities": collection.n_entities,
            "applied": bool(batch),
        }

    async def _health(self) -> dict:
        reporter = getattr(self.service, "health_info", None)
        if reporter is not None:
            base = await reporter()
        else:
            base = {
                "active_sessions": self.service.n_active,
                "finished_sessions": len(self.service.registry.results),
                "epoch": self.service.collection.epoch,
            }
        return {
            "status": "draining" if self._draining else "ok",
            **base,
            "tracked_sessions": len(self._sessions),
            **self.collection_info,
        }

    # ------------------------------------------------------------------ #
    # WebSocket push-style sessions
    # ------------------------------------------------------------------ #

    async def _handle_websocket(self, scope, receive, send) -> None:
        message = await receive()
        assert message["type"] == "websocket.connect"
        if scope["path"] != "/ws":
            await send({"type": "websocket.close", "code": 4004})
            return
        if self._draining or not self.service.accepting:
            # 1013 = "try again later": the drain rejection, ws flavour.
            await send({"type": "websocket.close", "code": 1013})
            return
        await send({"type": "websocket.accept"})
        self.metrics.ws_sessions += 1
        try:
            await self._websocket_session(receive, send)
        except ServiceClosed:
            await self._ws_close(send, 1013)
        except WorkerLost as exc:
            # The owning engine worker died mid-session (cluster only):
            # tell the client plainly, then close with "internal error" —
            # re-attaching cannot help, only a fresh session can.
            await self._ws_error(send, "worker_lost", str(exc))
            await self._ws_close(send, 1011)
        except asyncio.CancelledError:  # pragma: no cover - host teardown
            raise
        finally:
            self.metrics.ws_sessions -= 1

    async def _ws_json(self, send, payload: dict) -> None:
        await send({"type": "websocket.send", "text": json.dumps(payload)})

    async def _ws_close(self, send, code: int) -> None:
        try:
            await send({"type": "websocket.close", "code": code})
        except Exception:  # pragma: no cover - peer already gone
            pass

    async def _ws_error(self, send, code: str, message: str) -> None:
        await self._ws_json(
            send, {"type": "error", "error": code, "message": message}
        )

    async def _websocket_session(self, receive, send) -> None:
        """One push-style session: create/attach, then serve to the end."""
        first = await receive()
        if first["type"] == "websocket.disconnect":
            return
        try:
            request = json.loads(first.get("text") or "")
        except (json.JSONDecodeError, TypeError):
            await self._ws_error(send, "bad-json", "first message not JSON")
            await self._ws_close(send, 1008)
            return
        kind = request.get("type")
        if kind == "create":
            try:
                handle, info = await self._spawn_session(request)
            except ServiceOverloaded as exc:
                # The WS flavour of the HTTP 429: tell the client it is
                # load, not protocol, and close with "try again later".
                self.metrics.observe_rejection("ws-busy")
                await self._ws_error(send, "busy", str(exc))
                await self._ws_close(send, 1013)
                return
            except _HTTPError as exc:
                await self._ws_error(send, exc.code, exc.message)
                await self._ws_close(send, 1013 if exc.status == 503 else 1008)
                return
            await self._ws_json(
                send,
                {
                    "type": "created",
                    "session": str(handle.key),
                    "token": handle.token,
                    "epoch": info["epoch"],
                },
            )
        elif kind == "attach":
            handle = self._sessions.get(str(request.get("session")))
            token = str(request.get("token", ""))
            if handle is None or (
                self.require_auth
                and not secrets.compare_digest(token, handle.token)
            ):
                code = (
                    "session_expired"
                    if handle is None
                    and str(request.get("session")) in self._expired
                    else "unknown-session"
                )
                await self._ws_error(send, code, "bad session or token")
                await self._ws_close(send, 1008)
                return
            handle.touch()
            await self._ws_json(
                send, {"type": "attached", "session": str(handle.key)}
            )
        else:
            await self._ws_error(
                send, "bad-request", "first message must be create or attach"
            )
            await self._ws_close(send, 1008)
            return

        key = handle.key
        while True:
            try:
                entity = await self.service.ask(key)
                if entity is None:
                    result = await self.service.result(key)
                    if not isinstance(result, dict):
                        # In-process: render the DiscoveryResult; cluster
                        # workers already shipped the payload as a dict.
                        result = result_payload(key, result)
                    await self._ws_json(
                        send,
                        {"type": "result", **result},
                    )
                    await self._ws_close(send, 1000)
                    return
            except ServiceOverloaded as exc:
                # Shed mid-session: the session itself survives (nothing
                # was consumed) — the client may re-attach once load
                # drops and the pending question will be replayed.
                self.metrics.observe_rejection("ws-busy")
                await self._ws_error(send, "busy", str(exc))
                await self._ws_close(send, 1013)
                return
            except SessionExpired as exc:
                await self._ws_error(send, "session_expired", str(exc))
                await self._ws_close(send, 1008)
                return
            label = self.service.collection.universe.label(entity)
            await self._ws_json(
                send,
                {
                    "type": "question",
                    "session": str(key),
                    "entity": entity,
                    "label": label
                    if isinstance(label, (str, int, float))
                    else str(label),
                },
            )
            reply = await receive()
            if reply["type"] == "websocket.disconnect":
                return
            try:
                answer = json.loads(reply.get("text") or "")
                if answer.get("type") != "answer":
                    raise ValueError("expected an answer message")
                value = answer.get("value")
                if value is not None and not isinstance(value, bool):
                    raise ValueError("'value' must be true, false or null")
                recorded = self.service.answer(key, value)
                if recorded is not None:
                    await recorded  # cluster: validated on the worker
            except (json.JSONDecodeError, TypeError, AttributeError):
                await self._ws_error(send, "bad-json", "reply was not JSON")
                await self._ws_close(send, 1008)
                return
            except (KeyError, ValueError) as exc:
                await self._ws_error(send, "bad-answer", str(exc))
                await self._ws_close(send, 1008)
                return

    # ------------------------------------------------------------------ #
    # Response helpers
    # ------------------------------------------------------------------ #

    async def _send_json(
        self,
        send,
        status: int,
        payload: dict,
        headers: "list[tuple[bytes, bytes]] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode()
        await self._send_body(
            send, status, body, b"application/json", headers=headers
        )

    async def _send_text(self, send, status: int, text: str) -> None:
        await self._send_body(
            send, status, text.encode(), b"text/plain; version=0.0.4"
        )

    async def _send_body(
        self,
        send,
        status: int,
        body: bytes,
        content_type: bytes,
        headers: "list[tuple[bytes, bytes]] | None" = None,
    ) -> None:
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type),
                    (b"content-length", str(len(body)).encode()),
                    *(headers or []),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})


# --------------------------------------------------------------------- #
# Embedded stdlib ASGI server (HTTP/1.1 + WebSocket)
# --------------------------------------------------------------------- #

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


def websocket_accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake key (RFC 6455)."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def encode_ws_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One final websocket frame (clients must set ``mask=True``)."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask:
        key = secrets.token_bytes(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def read_ws_frame(
    reader: asyncio.StreamReader,
) -> "tuple[int, bytes] | None":
    """Read one frame; ``None`` on EOF.  Assumes unfragmented frames."""
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


@dataclass
class _Request:
    """One parsed HTTP/1.1 request off an embedded-server connection."""

    method: str
    target: str
    version: str
    headers: list[tuple[bytes, bytes]]
    body: bytes

    def header(self, name: bytes) -> bytes | None:
        for key, value in self.headers:
            if key == name:
                return value
        return None

    @property
    def wants_websocket(self) -> bool:
        upgrade = (self.header(b"upgrade") or b"").lower()
        connection = (self.header(b"connection") or b"").lower()
        return upgrade == b"websocket" and b"upgrade" in connection


class _BadRequest(Exception):
    pass


class EmbeddedServer:
    """Stdlib asyncio HTTP/1.1 + WebSocket host for an ASGI application.

    The zero-dependency fallback runner behind ``python -m repro serve``
    (and the tests/CI server-smoke): binds ``host:port`` (port ``0``
    picks a free one — read :attr:`port` after :meth:`start`), speaks
    keep-alive HTTP/1.1 with Content-Length bodies plus the RFC 6455
    handshake/framing subset the app needs.  Production setups should
    run the same app under ``uvicorn`` instead (``--uvicorn``).
    """

    def __init__(
        self, app: Callable[..., Awaitable], host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: "asyncio.Server | None" = None

    async def start(self) -> None:
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self._server = server
        self.port = server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections (in-flight handlers finish)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "EmbeddedServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest:
                    writer.write(
                        b"HTTP/1.1 400 Bad Request\r\n"
                        b"content-length: 0\r\nconnection: close\r\n\r\n"
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_websocket(request, reader, writer)
                    break
                if not await self._serve_http(request, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to clean beyond the writer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "_Request | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            raise _BadRequest from None
        headers: list[tuple[bytes, bytes]] = []
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            headers.append((name.strip().lower(), value.strip()))
        length_raw = next(
            (v for k, v in headers if k == b"content-length"), b"0"
        )
        try:
            length = int(length_raw)
        except ValueError:
            raise _BadRequest from None
        if length > MAX_BODY_BYTES:
            raise _BadRequest
        body = await reader.readexactly(length) if length else b""
        return _Request(
            method=method,
            target=target,
            version=version,
            headers=headers,
            body=body,
        )

    def _base_scope(self, request: _Request, kind: str, scheme: str) -> dict:
        path, _, query = request.target.partition("?")
        return {
            "type": kind,
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "scheme": scheme,
            "path": unquote(path),
            "raw_path": request.target.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "root_path": "",
            "headers": request.headers,
            "client": None,
            "server": (self.host, self.port),
        }

    async def _serve_http(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Run one request through the app; returns keep-alive."""
        scope = {
            **self._base_scope(request, "http", "http"),
            "method": request.method.upper(),
        }
        sent_body = False

        async def receive() -> dict:
            nonlocal sent_body
            if not sent_body:
                sent_body = True
                return {
                    "type": "http.request",
                    "body": request.body,
                    "more_body": False,
                }
            return {"type": "http.disconnect"}

        status = 500
        response_headers: list[tuple[bytes, bytes]] = []
        chunks: list[bytes] = []
        done = asyncio.Event()

        async def send(message: dict) -> None:
            nonlocal status, response_headers
            if message["type"] == "http.response.start":
                status = message["status"]
                response_headers = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))
                if not message.get("more_body"):
                    done.set()

        await self.app(scope, receive, send)
        if not done.is_set():  # pragma: no cover - app bug guard
            raise RuntimeError("ASGI app never completed the response")
        body = b"".join(chunks)
        keep_alive = (
            request.version.upper() != "HTTP/1.0"
            and (request.header(b"connection") or b"").lower() != b"close"
        )
        phrase = _PHRASES.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {phrase}".encode()]
        for name, value in response_headers:
            if name.lower() != b"content-length":
                head.append(name + b": " + value)
        head.append(b"content-length: " + str(len(body)).encode())
        head.append(
            b"connection: keep-alive" if keep_alive else b"connection: close"
        )
        writer.write(b"\r\n".join(head) + b"\r\n\r\n" + body)
        await writer.drain()
        return keep_alive

    # ------------------------------------------------------------------ #
    # WebSocket bridging
    # ------------------------------------------------------------------ #

    async def _serve_websocket(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        scope = self._base_scope(request, "websocket", "ws")
        scope["subprotocols"] = []
        client_key = (request.header(b"sec-websocket-key") or b"").decode()
        connected = False
        accepted = False
        closed = False

        async def receive() -> dict:
            nonlocal connected
            if not connected:
                connected = True
                return {"type": "websocket.connect"}
            while True:
                frame = await read_ws_frame(reader)
                if frame is None:
                    return {"type": "websocket.disconnect", "code": 1006}
                opcode, payload = frame
                if opcode == 0x1:
                    return {
                        "type": "websocket.receive",
                        "text": payload.decode("utf-8", "replace"),
                    }
                if opcode == 0x2:
                    return {"type": "websocket.receive", "bytes": payload}
                if opcode == 0x8:
                    code = (
                        int.from_bytes(payload[:2], "big")
                        if len(payload) >= 2
                        else 1005
                    )
                    if not closed:
                        writer.write(encode_ws_frame(0x8, payload[:2]))
                        await writer.drain()
                    return {"type": "websocket.disconnect", "code": code}
                if opcode == 0x9:  # ping -> pong, stay in the read loop
                    writer.write(encode_ws_frame(0xA, payload))
                    await writer.drain()

        async def send(message: dict) -> None:
            nonlocal accepted, closed
            kind = message["type"]
            if kind == "websocket.accept":
                accepted = True
                writer.write(
                    b"HTTP/1.1 101 Switching Protocols\r\n"
                    b"upgrade: websocket\r\nconnection: Upgrade\r\n"
                    b"sec-websocket-accept: "
                    + websocket_accept_key(client_key).encode()
                    + b"\r\n\r\n"
                )
            elif kind == "websocket.close" and not accepted:
                # ASGI: rejecting before accept becomes a plain HTTP 403
                # (there is no websocket to close yet).
                closed = True
                writer.write(
                    b"HTTP/1.1 403 Forbidden\r\n"
                    b"content-length: 0\r\nconnection: close\r\n\r\n"
                )
            elif kind == "websocket.send":
                if "text" in message and message["text"] is not None:
                    frame = encode_ws_frame(0x1, message["text"].encode())
                else:
                    frame = encode_ws_frame(0x2, message.get("bytes") or b"")
                writer.write(frame)
            elif kind == "websocket.close":
                if not closed:
                    closed = True
                    code = message.get("code", 1000)
                    writer.write(encode_ws_frame(0x8, code.to_bytes(2, "big")))
            await writer.drain()

        await self.app(scope, receive, send)

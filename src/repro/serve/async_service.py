"""Asyncio serving front-end (layer 3 of 3): questions as awaitables.

An :class:`AsyncDiscoveryService` serves many concurrent discovery sessions
over one shared collection with three coroutine-shaped verbs:

* ``entity = await service.ask(key)`` — the next question for session
  ``key`` (``None`` once the session finished);
* ``service.answer(key, value)`` — record the user's reply
  (``True``/``False``/``None`` for "don't know"), plain and synchronous;
* ``result = await service.result(key)`` — the session's
  :class:`~repro.core.discovery.DiscoveryResult` once it finishes.

Sessions join (:meth:`add`/:meth:`spawn`), answer and finish completely
independently — no lock-step rounds.  Under the hood every ``ask`` queues
a scan request on the shared
:class:`~repro.serve.scheduler.ScanScheduler`; the service flushes the
scheduler when either ``max_batch`` requests have accumulated or the
oldest request has waited ``flush_after_ms`` — so the kernel still sees
large stacked scans while no user waits longer than the latency budget
plus one batched pass.

Flushes run in a single-worker thread executor: all session/kernel
mutation is serialized on that thread while the event loop stays free to
accept joins, answers and asks — and because the numpy/native/sharded
backends release the GIL inside their scans, kernel work genuinely
overlaps network-style I/O.  Transcripts remain bit-identical to
sequential ``DiscoverySession.run`` calls, whatever the arrival order —
selection is deterministic per session state, which the parity tests
(``tests/test_async_service.py``) enforce.

The service binds to the first event loop that uses it; drive it from one
loop only (the normal ``asyncio.run(main())`` shape) and close it with
``await service.aclose()`` or ``async with AsyncDiscoveryService(...)``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, Mapping

from ..core.collection import SetCollection
from ..core.discovery import DiscoveryResult, DiscoverySession
from .metrics import ServiceMetrics, quantile_sorted
from .scheduler import FlushReport, ScanScheduler
from .state import SessionRegistry

__all__ = [
    "AsyncDiscoveryService",
    "ServiceClosed",
    "ServiceOverloaded",
    "SessionExpired",
    "percentile",
]


class ServiceClosed(RuntimeError):
    """The service was closed (or is draining) and cannot serve this call.

    Raised by every verb after :meth:`AsyncDiscoveryService.aclose`, by
    :meth:`~AsyncDiscoveryService.add`/:meth:`~AsyncDiscoveryService.spawn`
    once a drain began, and *delivered to* any ``ask()``/``result()``
    waiter still pending when the service closes — a waiter must end with
    a clear error, never hang forever.  The HTTP edge
    (:mod:`repro.serve.http`) maps it to ``503 Service Unavailable``.
    """


class ServiceOverloaded(RuntimeError):
    """The service shed this call to keep its queues bounded.

    Raised by :meth:`AsyncDiscoveryService.add`/:meth:`spawn` when
    ``max_sessions`` active sessions already exist, and by
    :meth:`ask`/:meth:`result` under the ``"shed"`` overload policy when
    ``max_queued`` requests are already waiting for the next flush.
    Carries ``retry_after_s``, the service's hint for when capacity is
    likely back; the HTTP edge maps this to ``429 Too Many Requests``
    with a ``Retry-After`` header, the WebSocket edge to a ``busy``
    close.  Recorded replies (:meth:`answer`) are never shed — a reply
    frees capacity, it does not consume it.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SessionExpired(RuntimeError):
    """The session was reaped (TTL expiry) while this call waited on it.

    Delivered to any ``ask()``/``result()`` waiter still pending when
    :meth:`AsyncDiscoveryService.expire` discards the session — a
    long-poll on an expired session must learn its fate immediately, not
    wait out its poll timeout.  The HTTP edge maps it to
    ``404 session_expired``.
    """


class WorkerLost(RuntimeError):
    """The engine worker owning this session died mid-call.

    Only the multi-worker topology (:mod:`repro.serve.cluster`) raises
    this: the owning worker process exited (pipe EOF / waitpid) before
    replying, so the session's in-memory state is gone — shared-nothing
    replicas hold no session state for their siblings.  Delivered to any
    parked long-poll waiting on the dead worker and to every later call
    routed to one of its sessions.  The HTTP edge maps it to
    ``503 worker_lost``; clients start a fresh session (which lands on a
    live worker — the supervisor restarts the dead one in place).

    Defined here rather than in :mod:`repro.serve.cluster` so the edge
    (:mod:`repro.serve.http`) can catch it without importing the cluster
    machinery it otherwise never touches.
    """


def percentile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list (0.0 if empty).

    The serving demos and benchmarks all report ``ask()`` latency
    p50/p95 through this one helper so the figures stay comparable.
    """
    return quantile_sorted(sorted_values, q)


class AsyncDiscoveryService:
    """Latency-budgeted asyncio service over a shared :class:`ScanScheduler`.

    Parameters
    ----------
    collection:
        The shared closed collection all sessions discover over.
    flush_after_ms:
        Latency budget: a queued question request waits at most this long
        before a batched kernel pass answers it (plus the pass itself).
        Smaller = snappier single-user latency; larger = bigger stacked
        scans under load.
    max_batch:
        Batch watermark: this many queued requests trigger an immediate
        flush without waiting for the budget.  ``None`` disables the
        watermark (budget-only flushing).
    release_caches:
        As for :class:`~repro.serve.engine.SessionEngine`: release a
        finished session's cached scan stats once no active session
        shares them.
    max_sessions:
        Admission bound: :meth:`add`/:meth:`spawn` raise
        :class:`ServiceOverloaded` while this many sessions are active.
        ``None`` (the default) keeps today's unbounded behavior.
    max_queued:
        Queue bound: once this many requests wait for the next flush, a
        *new* ``ask()``/``result()`` request is shed (``"shed"`` policy)
        or parks until a flush drains the queue (``"wait"`` policy).
        Requests for keys already queued, and replies, always pass —
        they cannot grow the queue.  ``None`` disables the bound.
    overload_policy:
        ``"shed"`` (raise :class:`ServiceOverloaded`, the HTTP edge's
        429) or ``"wait"`` (block the caller until there is room —
        bounded memory, unbounded caller patience).
    retry_after_s:
        The back-off hint carried by every :class:`ServiceOverloaded`
        this service raises (the HTTP ``Retry-After`` value).
    """

    def __init__(
        self,
        collection: SetCollection,
        *,
        flush_after_ms: float = 2.0,
        max_batch: int | None = 64,
        release_caches: bool = True,
        max_sessions: int | None = None,
        max_queued: int | None = None,
        overload_policy: str = "shed",
        retry_after_s: float = 1.0,
    ) -> None:
        if overload_policy not in ("shed", "wait"):
            raise ValueError(
                f"overload_policy must be 'shed' or 'wait', "
                f"not {overload_policy!r}"
            )
        self.registry = SessionRegistry(
            collection, release_caches=release_caches
        )
        self.scheduler = ScanScheduler(
            self.registry,
            flush_after_ms=flush_after_ms,
            max_batch=max_batch,
        )
        self.stats = self.scheduler.stats
        self.metrics = ServiceMetrics(self)
        #: keys awaiting advancement (ordered set; the loop thread owns it)
        self._needy: dict[Hashable, None] = {}
        #: clock reading when the oldest entry of ``_needy`` arrived — the
        #: ``first_at`` the shared :class:`FlushPolicy` evaluates against
        self._needy_first_at: float | None = None
        #: recorded replies not yet applied (applied at the next flush, on
        #: the flush thread, so ALL session mutation is single-threaded)
        self._replies: dict[Hashable, bool | None] = {}
        #: keys whose reply is being applied by the running flush — the
        #: ask() fast path must not trust their stale pending question
        self._inflight_replies: frozenset[Hashable] = frozenset()
        self._ask_waiters: dict[Hashable, list[asyncio.Future]] = {}
        self._result_waiters: dict[Hashable, list[asyncio.Future]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._flush_timer: asyncio.TimerHandle | None = None
        self._flush_task: asyncio.Task | None = None
        self._flushing = False
        self._draining = False
        self._closed = False
        #: collection deltas applied through this service (metrics counter)
        self.deltas_applied = 0
        self.max_sessions = max_sessions
        self.max_queued = max_queued
        self.overload_policy = overload_policy
        self.retry_after_s = retry_after_s
        #: deepest the loop-side queue has ever been (metrics gauge)
        self.queued_high_watermark = 0
        #: set whenever a flush drains ``_needy`` — "wait" admissions park
        #: on it (recreated per wake so every parked caller re-checks room)
        self._room: asyncio.Event | None = None

    @property
    def collection(self) -> SetCollection:
        """The *current* collection epoch (what new sessions spawn on).

        :meth:`apply_delta` advances it; sessions already running stay
        pinned to the epoch they started on.  The shared universe never
        changes across epochs, so label translation through this property
        is valid for questions of any epoch's session.
        """
        return self.registry.collection

    # ------------------------------------------------------------------ #
    # Session attachment (delegated to the registry)
    # ------------------------------------------------------------------ #

    def add(
        self, session: DiscoverySession, key: Hashable | None = None
    ) -> Hashable:
        """Attach a session; returns its key.  Sessions may join at any
        time — including while a flush for other sessions is running."""
        self._check_accepting()
        self._check_capacity()
        return self.registry.add(session, key=key)

    def spawn(
        self,
        selector,
        initial: Iterable[Hashable] = (),
        initial_ids: Iterable[int] | None = None,
        max_questions: int | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Construct a :class:`DiscoverySession` over the service's
        collection and :meth:`add` it in one call."""
        self._check_accepting()
        self._check_capacity()
        return self.registry.spawn(
            selector,
            initial=initial,
            initial_ids=initial_ids,
            max_questions=max_questions,
            key=key,
        )

    @property
    def n_active(self) -> int:
        return self.registry.n_active

    @property
    def queued_requests(self) -> int:
        """Loop-side requests awaiting the next flush (metrics gauge)."""
        return len(self._needy)

    @property
    def accepting(self) -> bool:
        """True while new sessions may join (not closed, not draining)."""
        return not (self._closed or self._draining)

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop accepting new sessions; keep serving the attached ones.

        The graceful-shutdown first step: after this, :meth:`add` and
        :meth:`spawn` raise :class:`ServiceClosed` while every live
        session still asks, answers and finishes normally.  Follow with
        :meth:`aclose` once :attr:`n_active` drains (or a grace deadline
        passes) — the HTTP edge's drain sequence does exactly that.
        """
        self._draining = True

    @property
    def results(self) -> Mapping[Hashable, DiscoveryResult]:
        return self.registry.results

    # ------------------------------------------------------------------ #
    # Collection mutation (epoch versioning)
    # ------------------------------------------------------------------ #

    async def apply_delta(self, batch) -> SetCollection:
        """Apply a :class:`~repro.core.collection.DeltaBatch` live.

        Runs ``collection.apply_delta(batch)`` on the flush executor —
        the single thread that owns all session/kernel mutation — so the
        delta is strictly ordered against in-flight flushes: every stacked
        scan runs entirely before or entirely after it, never across it.
        New sessions spawned after this returns start on the new epoch;
        running sessions keep their pinned epoch and finish with
        transcripts byte-identical to a delta-free run.  An old epoch's
        collection (and kernel) is garbage-collected once its last pinned
        session finishes — nothing else holds a reference.

        Returns the new current collection.  Raises whatever
        :meth:`~repro.core.collection.SetCollection.apply_delta` raises on
        an inconsistent batch, leaving the current epoch in place.
        """
        self._check_open()
        self._bind_loop()
        registry = self.registry

        def _apply() -> "tuple[SetCollection, bool]":
            current = registry.collection
            new = current.apply_delta(batch)
            if new is current:  # empty batch: no new epoch
                return new, False
            registry.advance_collection(new)
            return new, True

        assert self._loop is not None
        new, advanced = await self._loop.run_in_executor(
            self._ensure_executor(), _apply
        )
        if advanced:
            self.deltas_applied += 1
        return new

    async def expire(self, key: Hashable) -> bool:
        """Discard an abandoned live session (the TTL-expiry path).

        Refuses (returns ``False``) when the session is unknown, already
        finished, or has *queued work* — a request awaiting the next
        flush, an unapplied reply, or a reply being applied right now —
        so a session actively being advanced is never expired mid-step.
        A pending ``ask``/``result`` waiter does NOT veto expiry: a
        waiter with no queued work is a long-poll whose client has
        typically vanished (the TTL is what decided the session is
        abandoned), and holding the session alive for it would leak the
        session — and its epoch pin — forever.  Instead, any such waiter
        is woken with :class:`SessionExpired` the moment the discard
        lands, which the HTTP edge maps to ``404 session_expired``.

        The discard itself runs on the flush executor, serialized with
        all other session mutation, and releases the session's epoch pin
        (the discarded state held the only session→collection reference),
        so expiring the last session of an old epoch lets that epoch be
        garbage-collected.  No result is recorded.
        """
        self._check_open()
        self._bind_loop()
        if (
            key in self._needy
            or key in self._replies
            or key in self._inflight_replies
        ):
            return False
        if self.registry.result_of(key) is not None:
            return False  # finished normally; the result map owns it
        assert self._loop is not None
        discarded = await self._loop.run_in_executor(
            self._ensure_executor(), self.registry.discard, key
        )
        if discarded:
            self._expire_waiters(key)
        return discarded

    def _expire_waiters(self, key: Hashable) -> None:
        """Wake ``key``'s pending waiters with :class:`SessionExpired`."""
        expired = SessionExpired(
            f"session {key!r} expired while this wait was pending"
        )
        for waiters in (self._ask_waiters, self._result_waiters):
            for fut in waiters.pop(key, []):
                if not fut.done():
                    fut.set_exception(expired)
                    # As in aclose(): an abandoned waiter must not log an
                    # "exception was never retrieved" warning at GC.
                    fut.exception()

    # ------------------------------------------------------------------ #
    # The three serving verbs
    # ------------------------------------------------------------------ #

    async def ask(self, key: Hashable) -> int | None:
        """Await the next question for session ``key`` (an entity id).

        Returns ``None`` once the session is finished (fetch the outcome
        with :meth:`result`).  Idempotent while an answer is outstanding:
        asking again returns the same pending entity.  Cancelling a
        pending ``ask`` is safe — the session itself still advances with
        the next flush; only the waiter is abandoned.  Under a
        ``max_queued`` bound a *new* request may be shed with
        :class:`ServiceOverloaded` (``"shed"``) or parked until a flush
        makes room (``"wait"``); the fast path and already-queued keys
        are exempt.
        """
        self._check_open()
        self._bind_loop()
        if self.registry.result_of(key) is not None:
            return None
        state = self.registry.state(key)
        if (
            state.session.pending_entity is not None
            and key not in self._replies
            and key not in self._inflight_replies
        ):
            return state.session.pending_entity
        await self._admit_request(key)
        start = time.perf_counter()
        future = self._wait_on(self._ask_waiters, key)
        self._request(key)
        entity = await future
        # The user-observed ask-to-question latency (the SLO the flush
        # policy budgets): only waits are recorded — the fast path above
        # returns an already-selected question and costs nothing.
        self.metrics.observe_ask(time.perf_counter() - start)
        return entity

    def answer(self, key: Hashable, value: bool | None) -> None:
        """Record the user's reply to session ``key``'s pending question.

        Replies are applied on the flush thread (keeping every session
        mutation single-threaded), which then immediately pre-selects the
        session's *next* question in the same batched pass — a later
        :meth:`ask` usually returns without waiting.  Raises ``KeyError``
        for unknown/finished keys and ``ValueError`` when no question is
        pending or a reply was already recorded.
        """
        self._check_open()
        self._bind_loop()
        state = self.registry.state(key)
        if key in self._replies or key in self._inflight_replies:
            raise ValueError(
                f"session {key!r} already has a recorded reply; await "
                f"ask() for the next question before answering again"
            )
        if state.session.pending_entity is None:
            raise ValueError(
                f"session {key!r} has no pending question to answer"
            )
        self._replies[key] = value
        self._request(key)

    async def result(self, key: Hashable) -> DiscoveryResult:
        """Await session ``key``'s outcome (resolves when it finishes)."""
        self._check_open()
        self._bind_loop()
        done = self.registry.result_of(key)
        if done is not None:
            return done
        self.registry.state(key)  # clear KeyError for unknown keys
        await self._admit_request(key)
        future = self._wait_on(self._result_waiters, key)
        self._request(key)
        return await future

    # ------------------------------------------------------------------ #
    # Backpressure (admission control)
    # ------------------------------------------------------------------ #

    def _check_capacity(self) -> None:
        if (
            self.max_sessions is not None
            and self.registry.n_active >= self.max_sessions
        ):
            self.metrics.observe_rejection("sessions")
            raise ServiceOverloaded(
                f"session limit reached ({self.max_sessions} active); "
                f"retry once a session finishes or expires",
                retry_after_s=self.retry_after_s,
            )

    async def _admit_request(self, key: Hashable) -> None:
        """Gate one new ``ask``/``result`` request on queue room.

        A key already queued rides the existing request for free — it
        cannot grow the queue.  Otherwise, at ``max_queued``: shed raises
        :class:`ServiceOverloaded`; wait parks on an event the next flush
        sets when it drains the queue (then re-checks — several parked
        callers may race for the freed room).
        """
        if self.max_queued is None or key in self._needy:
            return
        while len(self._needy) >= self.max_queued:
            if self.overload_policy == "shed":
                self.metrics.observe_rejection("asks")
                raise ServiceOverloaded(
                    f"request queue full ({self.max_queued} waiting for "
                    f"the next flush); retry after the flush budget",
                    retry_after_s=self.retry_after_s,
                )
            if self._room is None:
                self._room = asyncio.Event()
            room = self._room
            await room.wait()
            self._check_open()
            if key in self._needy:
                return

    def _signal_room(self) -> None:
        if self._room is not None:
            self._room.set()
            self._room = None

    # ------------------------------------------------------------------ #
    # Flush scheduling (event-loop side)
    # ------------------------------------------------------------------ #

    def _request(self, key: Hashable) -> None:
        if key not in self._needy:
            self._needy[key] = None
            if self._needy_first_at is None:
                self._needy_first_at = time.perf_counter()
            if len(self._needy) > self.queued_high_watermark:
                self.queued_high_watermark = len(self._needy)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self._closed or self._flushing or not self._needy:
            # Closed: aclose() owns shutdown — a post-close flush would
            # recreate the executor it just shut down.  Flushing: the
            # running flush re-arms scheduling when it ends.
            return
        assert self._loop is not None
        # The watermark/budget decision is the scheduler's FlushPolicy,
        # evaluated over THIS loop-side queue (requests keep accumulating
        # here while a flush runs on the worker thread) — one rule, two
        # queues, no drift.
        now = time.perf_counter()
        policy = self.scheduler.policy
        if policy.should_flush(len(self._needy), self._needy_first_at, now):
            self._start_flush()
            return
        if len(self._needy) >= self.registry.n_active:
            # Every active session is already waiting on us — no request
            # can join the batch, so waiting out the budget is pure idle
            # time (the lock-step engine's "everyone answered" moment).
            self._start_flush()
            return
        if self._flush_timer is None:
            deadline = policy.deadline(self._needy_first_at)
            delay = 0.0 if deadline is None else max(0.0, deadline - now)
            self._flush_timer = self._loop.call_later(delay, self._on_timer)

    def _on_timer(self) -> None:
        self._flush_timer = None
        if self._needy and not self._closed:
            self._start_flush()

    def _start_flush(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        assert self._loop is not None
        self._flushing = True
        self._flush_task = self._loop.create_task(self._flush())

    async def _flush(self) -> None:
        needy = list(self._needy)
        self._needy.clear()
        self._needy_first_at = None
        # The queue just drained: parked "wait"-policy admissions may race
        # for the freed room while the flush runs on the worker thread.
        self._signal_room()
        replies, self._replies = self._replies, {}
        self._inflight_replies = frozenset(replies)
        start = time.perf_counter()
        failure: BaseException | None = None
        try:
            assert self._loop is not None
            report, prefinished, vanished = await self._loop.run_in_executor(
                self._ensure_executor(), self._advance_sync, needy, replies
            )
        except BaseException as exc:
            failure = exc
        finally:
            self._inflight_replies = frozenset()
            self._flushing = False
        if failure is not None:
            # A kernel/selector bug must fail this batch's waiters loudly,
            # not leave them hanging forever — and requests that queued
            # while the doomed flush ran still deserve their own flush.
            for key in needy:
                for fut in self._ask_waiters.pop(key, []):
                    if not fut.done():
                        fut.set_exception(failure)
                for fut in self._result_waiters.pop(key, []):
                    if not fut.done():
                        fut.set_exception(failure)
            self._flush_task = None
            self._maybe_flush()
            raise failure
        self.stats.ticks += 1
        self.stats.seconds += time.perf_counter() - start
        for key in vanished:
            # Discarded (expired) between request and flush: only this
            # key's waiters fail, with the precise exception — the rest of
            # the batch already advanced normally.
            self._expire_waiters(key)
        self._resolve(report, prefinished)
        # Requests that arrived while this flush ran start the next cycle.
        self._flush_task = None
        self._maybe_flush()

    # ------------------------------------------------------------------ #
    # Flush work (executor-thread side: the only session mutator)
    # ------------------------------------------------------------------ #

    def _advance_sync(
        self,
        needy: list[Hashable],
        replies: dict[Hashable, bool | None],
    ) -> tuple[
        FlushReport, dict[Hashable, DiscoveryResult], list[Hashable]
    ]:
        registry = self.registry
        vanished: list[Hashable] = []
        for key, value in replies.items():
            try:
                state = registry.state(key)
            except KeyError:
                # Discarded between answer() and this flush (expire() only
                # vetoes on keys it can see queued; a reply recorded in the
                # same loop turn as its discard check can slip past).  The
                # reply dies with the session; only this key's waiters
                # fail, not the whole batch.
                vanished.append(key)
                continue
            state.session.answer(value)
        prefinished: dict[Hashable, DiscoveryResult] = {}
        for key in needy:
            done = registry.result_of(key)
            if done is not None:  # retired by an earlier flush
                prefinished[key] = done
                continue
            try:
                state = registry.state(key)
            except KeyError:  # expired between request and flush
                if key not in vanished:
                    vanished.append(key)
                continue
            # flush() re-checks each request's phase itself, so a request
            # whose state changed since submission is always dispatched
            # correctly (DONE -> retired, QUESTION_PENDING -> re-reported).
            self.scheduler.submit(state)
        return self.scheduler.flush(), prefinished, vanished

    # ------------------------------------------------------------------ #
    # Waiter resolution (event-loop side)
    # ------------------------------------------------------------------ #

    def _resolve(
        self,
        report: FlushReport,
        prefinished: dict[Hashable, DiscoveryResult],
    ) -> None:
        for key, entity in report.questions.items():
            self._resolve_ask(key, entity)
        for key, entity in report.already_pending.items():
            if key in self._replies:
                # The user answered this very question while the flush ran
                # (the same staleness the ask() fast path guards against):
                # the waiters want the NEXT question, and the recorded
                # reply already re-queued the key, so the follow-up flush
                # resolves them with the fresh selection.
                continue
            self._resolve_ask(key, entity)
        finished = dict(prefinished)
        finished.update(report.finished)
        for key, result in finished.items():
            self._resolve_ask(key, None)
            for fut in self._result_waiters.pop(key, []):
                if not fut.done():
                    fut.set_result(result)

    def _resolve_ask(self, key: Hashable, entity: int | None) -> None:
        for fut in self._ask_waiters.pop(key, []):
            if not fut.done():
                fut.set_result(entity)

    def _wait_on(
        self, waiters: dict[Hashable, list[asyncio.Future]], key: Hashable
    ) -> asyncio.Future:
        # Cancelled waiters are not unlinked eagerly (a done-callback per
        # future would double the call_soon traffic on the hot path);
        # resolution skips done futures and pops the whole bucket, so a
        # cancelled ask lingers only until its key's next flush.
        assert self._loop is not None
        future = self._loop.create_future()
        waiters.setdefault(key, []).append(future)
        return future

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise RuntimeError(
                "AsyncDiscoveryService is bound to a different event loop; "
                "create one service per loop"
            )

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # One worker by design: it serializes every session/kernel
            # mutation while the GIL-releasing kernel scans inside it
            # overlap the event loop's I/O.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-flush"
            )
        return self._executor

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("AsyncDiscoveryService is closed")

    def _check_accepting(self) -> None:
        self._check_open()
        if self._draining:
            raise ServiceClosed(
                "AsyncDiscoveryService is draining; not accepting new "
                "sessions"
            )

    async def aclose(self) -> None:
        """Stop flushing, reject outstanding waiters, free the executor.

        Waiters still pending — including ``result()`` waiters of sessions
        that were never asked a question, which no future flush would ever
        resolve — are rejected with a clear :class:`ServiceClosed` instead
        of being left to hang (or die with an anonymous cancellation).
        """
        if self._closed:
            return
        self._closed = True
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        task = self._flush_task
        if task is not None and not task.done():
            try:
                await task
            except Exception:
                pass  # the flush already failed its waiters
        # Parked "wait"-policy admissions must wake and see the close.
        self._signal_room()
        closed = ServiceClosed(
            "AsyncDiscoveryService closed while this wait was pending"
        )
        for waiters in (self._ask_waiters, self._result_waiters):
            for bucket in list(waiters.values()):
                for fut in list(bucket):
                    if not fut.done():
                        fut.set_exception(closed)
                        # An abandoned waiter (its ask() was cancelled and
                        # nobody will ever await it) must not log an
                        # "exception was never retrieved" warning at GC;
                        # live awaiters still receive the exception.
                        fut.exception()
            waiters.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "AsyncDiscoveryService":
        self._check_open()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return (
            f"<AsyncDiscoveryService active={self.n_active} "
            f"finished={len(self.registry.results)} "
            f"queued={len(self._needy)} "
            f"flush_after_ms={self.scheduler.flush_after_ms} "
            f"max_batch={self.scheduler.max_batch}>"
        )

"""Lock-step serving front-end (layer 3 of 3): the multi-session engine.

A :class:`SessionEngine` advances N concurrent
:class:`~repro.core.discovery.DiscoverySession` states in lock-step over one
shared collection.  Since the serving stack was split into layers, the
engine is a *thin client*: session bookkeeping lives in the
:class:`~repro.serve.state.SessionRegistry` and all batching in the
:class:`~repro.serve.scheduler.ScanScheduler` — each
:meth:`SessionEngine.tick` submits every session in the ``NEEDS_SCAN``
phase and flushes immediately (no latency budget: lock-step *is* the
cadence).  The asyncio front-end
(:class:`~repro.serve.async_service.AsyncDiscoveryService`) drives the
very same scheduler with a latency budget instead.

Answers flow back through the session step logic itself
(:meth:`~repro.core.discovery.DiscoverySession.answer`), so transcripts,
candidate narrowing, "don't know" exclusions and halting are *bit-identical*
to N sequential ``DiscoverySession.run`` calls — the engine only changes how
the work is batched, never what any session observes.

Two usage styles, mirroring :class:`DiscoverySession`:

* **pull** — a server loop calls :meth:`tick`, forwards each newly selected
  question to its user, and feeds replies back via :meth:`answer`; finished
  sessions accumulate in :attr:`results` (drain with :meth:`completed`).
* **push** — :meth:`run` drives every session against its registered oracle
  until all finish (the benchmark/evaluation protocol).

Selectors that cannot be expressed through the batched scoring path (k-LP
lookahead, random) still benefit: their per-session ``select`` hits the
cache primed by the batched scan instead of re-scanning.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, Mapping

from ..core.collection import SetCollection
from ..core.discovery import DiscoveryResult, DiscoverySession, Oracle
from ..core.kernels.sharded import resolve_executor_name
from .scheduler import EngineStats, ScanScheduler
from .state import SessionRegistry

__all__ = ["EngineStats", "SessionEngine"]


class SessionEngine:
    """Advance many discovery sessions with batched kernel passes.

    Parameters
    ----------
    collection:
        The shared closed collection all sessions discover over.  Stacking
        masks requires one collection; sessions over a different collection
        are rejected.
    release_caches:
        When true (default), a finishing session's cached informative
        stats are released as soon as no other *active* session has
        visited the same sub-collection — the *bounded-memory* behaviour a
        long-lived server needs on top of the collection's LRU cap.
    shards:
        When given, re-kernel the collection with this many set-range
        shards (:meth:`~repro.core.collection.SetCollection.reshard`)
        before serving, so every stacked tick scan is dispatched through
        the sharded worker pool.  Transcripts stay bit-identical — the
        sharded kernels merge exact counts — only tick throughput changes.
    shard_executor:
        Worker-pool kind for ``shards`` (``"thread"``/``"process"``/
        ``"serial"``; ``None`` defers to ``$REPRO_SHARD_EXECUTOR``).
        Given without ``shards``, it applies to the collection's current
        shard count (a no-op on unsharded collections).
    """

    def __init__(
        self,
        collection: SetCollection,
        release_caches: bool = True,
        shards: int | None = None,
        shard_executor: str | None = None,
    ) -> None:
        if (
            shards is None
            and shard_executor is not None
            and collection.shards > 1
        ):
            shards = collection.shards
        if shards is not None:
            # Unsharded kernels have no executor (current None): only a
            # shard-count change forces a rebuild then — an executor
            # request alone must not repack a large unsharded matrix for
            # zero behavioural change.
            current_exec = getattr(collection.kernel, "executor_kind", None)
            if shards != collection.shards or (
                shard_executor is not None
                and current_exec is not None
                and resolve_executor_name(shard_executor) != current_exec
            ):
                collection.reshard(shards, executor=shard_executor)
        self.registry = SessionRegistry(
            collection, release_caches=release_caches
        )
        self.scheduler = ScanScheduler(self.registry)
        self.stats = self.scheduler.stats

    @property
    def collection(self) -> SetCollection:
        """The current collection epoch (what new sessions spawn on)."""
        return self.registry.collection

    def apply_delta(self, batch) -> SetCollection:
        """Apply a :class:`~repro.core.collection.DeltaBatch` between ticks.

        New sessions spawn on the returned epoch; running sessions stay
        pinned to theirs — the next :meth:`tick` groups stacked scans per
        epoch, so every transcript stays byte-identical to a delta-free
        run.  Call between :meth:`tick`/:meth:`answer` rounds (the engine
        is single-threaded by design).
        """
        current = self.registry.collection
        new = current.apply_delta(batch)
        if new is not current:
            self.registry.advance_collection(new)
        return new

    # ------------------------------------------------------------------ #
    # Session registry (delegated)
    # ------------------------------------------------------------------ #

    def add(
        self,
        session: DiscoverySession,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Attach a session (optionally with its answering oracle).

        Returns the session's key — auto-assigned integers unless given.
        """
        return self.registry.add(session, oracle=oracle, key=key)

    def spawn(
        self,
        selector,
        initial: Iterable[Hashable] = (),
        initial_ids: Iterable[int] | None = None,
        max_questions: int | None = None,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Construct a :class:`DiscoverySession` over the engine's
        collection and :meth:`add` it in one call."""
        return self.registry.spawn(
            selector,
            initial=initial,
            initial_ids=initial_ids,
            max_questions=max_questions,
            oracle=oracle,
            key=key,
        )

    def session(self, key: Hashable) -> DiscoverySession:
        """The live session for ``key`` (raises once it finished)."""
        return self.registry.session(key)

    @property
    def n_active(self) -> int:
        return self.registry.n_active

    @property
    def results(self) -> Mapping[Hashable, DiscoveryResult]:
        """Outcomes of every finished session, by key (grows over time)."""
        return self.registry.results

    def completed(self) -> dict[Hashable, DiscoveryResult]:
        """Drain and return the finished-session outcomes."""
        return self.registry.completed()

    def pending(self) -> dict[Hashable, int]:
        """All questions currently awaiting an answer, by session key."""
        return self.registry.pending()

    # ------------------------------------------------------------------ #
    # Lock-step advancement
    # ------------------------------------------------------------------ #

    def tick(self) -> dict[Hashable, int]:
        """Select the next question for every session that needs one.

        One batched kernel pass answers all fresh informative scans; the
        newly selected ``{key: entity id}`` questions are returned (and
        also visible via :meth:`pending`).  Sessions discovered to be
        finished are retired into :attr:`results`.
        """
        start = time.perf_counter()
        self.stats.ticks += 1
        for state in self.registry.needs_question():
            self.scheduler.submit(state)
        report = self.scheduler.flush()
        self.stats.seconds += time.perf_counter() - start
        return report.questions

    def answer(self, key: Hashable, value: bool | None) -> None:
        """Record a user's answer for session ``key`` (pull-style API).

        The narrowing itself runs through the session's own
        :meth:`~repro.core.discovery.DiscoverySession.answer`.  Unknown or
        already-finished keys raise a clear ``KeyError``; answering a
        session with no pending question (never asked, or a second answer
        before the next tick) raises ``ValueError``.  Retirement of
        sessions that just resolved happens on the next :meth:`tick`.
        """
        self.registry.answer(key, value)

    def run(self) -> dict[Hashable, DiscoveryResult]:
        """Drive every session against its oracle until all finish."""
        missing = [
            state.key
            for state in self.registry.active_states()
            if state.oracle is None
        ]
        if missing:
            raise ValueError(
                f"run() needs an oracle per session; missing for {missing!r}"
            )
        while self.registry.n_active:
            self.tick()
            pending = self.pending()
            if not pending and self.registry.n_active:
                raise RuntimeError(  # pragma: no cover - safety net
                    "engine made no progress; sessions stuck"
                )
            for key, entity in pending.items():
                oracle = self.registry.state(key).oracle
                assert oracle is not None
                self.answer(key, oracle(entity))
        return dict(self.registry.results)

    def __repr__(self) -> str:
        return (
            f"<SessionEngine active={self.n_active} "
            f"finished={len(self.registry.results)} "
            f"backend={self.collection.backend}>"
        )

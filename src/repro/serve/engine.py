"""Multi-session batched discovery engine.

A :class:`SessionEngine` advances N concurrent
:class:`~repro.core.discovery.DiscoverySession` states in lock-step over one
shared collection.  Each :meth:`SessionEngine.tick`:

1. stacks the candidate masks of every session that needs a question and
   answers all of their informative scans in **one** batched kernel pass
   (:meth:`~repro.core.collection.SetCollection.informative_stats_many`,
   which also primes the per-mask cache the sequential code path reads);
2. restricts each scan to the informative entities of the session's previous
   sub-collection (narrowing can only shrink the informative set, so the
   restricted scan is exact) — deep sessions therefore cost far less than a
   full-entity scan;
3. scores the selections of all sessions sharing a scoring rule with one
   batched ``lexsort`` (:func:`~repro.core.kernels.scoring.select_best_many`),
   deduplicated by ``(mask, scoring rule, exclusions)`` so sessions at the
   same state pay for one selection, not many;
4. pushes each session its selected question
   (:meth:`~repro.core.discovery.DiscoverySession.push_question`).

Answers flow back through the session step logic itself
(:meth:`~repro.core.discovery.DiscoverySession.answer`), so transcripts,
candidate narrowing, "don't know" exclusions and halting are *bit-identical*
to N sequential ``DiscoverySession.run`` calls — the engine only changes how
the work is batched, never what any session observes.

Two usage styles, mirroring :class:`DiscoverySession`:

* **pull** — a server loop calls :meth:`tick`, forwards each newly selected
  question to its user, and feeds replies back via :meth:`answer`; finished
  sessions accumulate in :attr:`results` (drain with :meth:`completed`).
* **push** — :meth:`run` drives every session against its registered oracle
  until all finish (the benchmark/evaluation protocol).

Selectors that cannot be expressed through the batched scoring path (k-LP
lookahead, random) still benefit: their per-session ``select`` hits the
cache primed by the batched scan instead of re-scanning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.collection import SetCollection
from ..core.discovery import DiscoveryResult, DiscoverySession, Oracle
from ..core.kernels import filter_excluded, select_best_many
from ..core.kernels.sharded import resolve_executor_name
from ..core.selection import NoInformativeEntityError


@dataclass
class EngineStats:
    """Aggregate engine-side work counters (serving metrics)."""

    #: lock-step rounds executed
    ticks: int = 0
    #: stacked kernel passes issued (at most one per tick)
    batched_scans: int = 0
    #: distinct sub-collection masks scanned by those passes
    scanned_masks: int = 0
    #: informative scans avoided because another session (or an earlier
    #: tick) already paid for the mask
    scan_cache_hits: int = 0
    #: questions selected in total
    selections: int = 0
    #: selections answered by the batched scoring path
    batched_selections: int = 0
    #: distinct (mask, scoring rule, exclusions) groups actually scored —
    #: the gap to ``batched_selections`` is deduplicated scoring work
    scoring_groups: int = 0
    #: selections that fell back to the selector's own ``select``
    fallback_selections: int = 0
    #: wall-clock seconds spent inside :meth:`SessionEngine.tick`
    seconds: float = 0.0


class SessionEngine:
    """Advance many discovery sessions with batched kernel passes.

    Parameters
    ----------
    collection:
        The shared closed collection all sessions discover over.  Stacking
        masks requires one collection; sessions over a different collection
        are rejected.
    release_caches:
        When true (default), a finishing session's cached informative
        stats are released as soon as no other *active* session has
        visited the same sub-collection — the *bounded-memory* behaviour a
        long-lived server needs on top of the collection's LRU cap.
    shards:
        When given, re-kernel the collection with this many set-range
        shards (:meth:`~repro.core.collection.SetCollection.reshard`)
        before serving, so every stacked tick scan is dispatched through
        the sharded worker pool.  Transcripts stay bit-identical — the
        sharded kernels merge exact counts — only tick throughput changes.
    shard_executor:
        Worker-pool kind for ``shards`` (``"thread"``/``"process"``/
        ``"serial"``; ``None`` defers to ``$REPRO_SHARD_EXECUTOR``).
        Given without ``shards``, it applies to the collection's current
        shard count (a no-op on unsharded collections).
    """

    def __init__(
        self,
        collection: SetCollection,
        release_caches: bool = True,
        shards: int | None = None,
        shard_executor: str | None = None,
    ) -> None:
        if (
            shards is None
            and shard_executor is not None
            and collection.shards > 1
        ):
            shards = collection.shards
        if shards is not None:
            # Unsharded kernels have no executor (current None): only a
            # shard-count change forces a rebuild then — an executor
            # request alone must not repack a large unsharded matrix for
            # zero behavioural change.
            current_exec = getattr(collection.kernel, "executor_kind", None)
            if shards != collection.shards or (
                shard_executor is not None
                and current_exec is not None
                and resolve_executor_name(shard_executor) != current_exec
            ):
                collection.reshard(shards, executor=shard_executor)
        self.collection = collection
        self.stats = EngineStats()
        self._release = release_caches
        self._sessions: dict[Hashable, DiscoverySession] = {}
        self._oracles: dict[Hashable, Oracle | None] = {}
        self._results: dict[Hashable, DiscoveryResult] = {}
        #: per-session informative eids of the mask it last asked at —
        #: the exact restriction for its next sub-collection's scan
        self._lineage: dict[Hashable, Sequence[int]] = {}
        #: masks each active session has been scanned at (for release)
        self._visited: dict[Hashable, set[int]] = {}
        self._mask_refs: dict[int, int] = {}
        self._auto_key = 0

    # ------------------------------------------------------------------ #
    # Session registry
    # ------------------------------------------------------------------ #

    def add(
        self,
        session: DiscoverySession,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Attach a session (optionally with its answering oracle).

        Returns the session's key — auto-assigned integers unless given.
        """
        if session.collection is not self.collection:
            raise ValueError(
                "session discovers over a different collection; "
                "an engine batches masks of one shared collection"
            )
        if key is None:
            key = self._auto_key
            self._auto_key += 1
        if key in self._sessions or key in self._results:
            raise KeyError(f"duplicate session key {key!r}")
        self._sessions[key] = session
        self._oracles[key] = oracle
        self._visited[key] = set()
        return key

    def spawn(
        self,
        selector,
        initial: Iterable[Hashable] = (),
        initial_ids: Iterable[int] | None = None,
        max_questions: int | None = None,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Construct a :class:`DiscoverySession` over the engine's
        collection and :meth:`add` it in one call."""
        session = DiscoverySession(
            self.collection,
            selector,
            initial=initial,
            initial_ids=initial_ids,
            max_questions=max_questions,
        )
        return self.add(session, oracle=oracle, key=key)

    def session(self, key: Hashable) -> DiscoverySession:
        """The live session for ``key`` (raises once it finished)."""
        return self._sessions[key]

    @property
    def n_active(self) -> int:
        return len(self._sessions)

    @property
    def results(self) -> Mapping[Hashable, DiscoveryResult]:
        """Outcomes of every finished session, by key (grows over time)."""
        return dict(self._results)

    def completed(self) -> dict[Hashable, DiscoveryResult]:
        """Drain and return the finished-session outcomes."""
        done = dict(self._results)
        self._results.clear()
        return done

    def pending(self) -> dict[Hashable, int]:
        """All questions currently awaiting an answer, by session key."""
        return {
            key: s.pending_entity
            for key, s in self._sessions.items()
            if s.pending_entity is not None
        }

    # ------------------------------------------------------------------ #
    # Lock-step advancement
    # ------------------------------------------------------------------ #

    def tick(self) -> dict[Hashable, int]:
        """Select the next question for every session that needs one.

        One batched kernel pass answers all fresh informative scans; the
        newly selected ``{key: entity id}`` questions are returned (and
        also visible via :meth:`pending`).  Sessions discovered to be
        finished are retired into :attr:`results`.
        """
        start = time.perf_counter()
        self.stats.ticks += 1
        need: list[tuple[Hashable, DiscoverySession]] = []
        for key, s in list(self._sessions.items()):
            if s.pending_entity is not None:
                continue
            # Cheap halt conditions first (single candidate / question
            # budget): no scan needed to retire these.
            if s.n_candidates <= 1 or (
                s.max_questions is not None
                and s.n_questions >= s.max_questions
            ):
                self._finish(key)
                continue
            need.append((key, s))
        newly = self._advance(need) if need else {}
        self.stats.seconds += time.perf_counter() - start
        return newly

    def _advance(
        self, need: list[tuple[Hashable, DiscoverySession]]
    ) -> dict[Hashable, int]:
        collection = self.collection
        # -- 1. one stacked scan for every distinct mask ----------------- #
        mask_order: list[int] = []
        mask_cands: list[Sequence[int] | None] = []
        seen_masks: dict[int, int] = {}
        for key, s in need:
            mask = s.candidates_mask
            if mask not in seen_masks:
                seen_masks[mask] = len(mask_order)
                mask_order.append(mask)
                # Any session's lineage restricts the scan exactly: the
                # informative entities of a mask are a subset of those of
                # every ancestor mask.
                mask_cands.append(self._lineage.get(key))
            self._note_visit(key, mask)
        hits = sum(1 for m in mask_order if collection.is_cached(m))
        t_batch = time.perf_counter()
        stats_list = collection.informative_stats_many(mask_order, mask_cands)
        stats_by_mask = dict(zip(mask_order, stats_list))
        if len(mask_order) > hits:
            self.stats.batched_scans += 1
            self.stats.scanned_masks += len(mask_order) - hits
        self.stats.scan_cache_hits += hits

        # -- 2. retire finished sessions, group the rest for scoring ---- #
        groups: dict[tuple, list[tuple[Hashable, DiscoverySession]]] = {}
        primaries: dict[tuple, object] = {}
        singles: list[tuple[Hashable, DiscoverySession]] = []
        for key, s in need:
            mask = s.candidates_mask
            self._lineage[key] = stats_by_mask[mask][0]
            if s.finished:  # cache-hit cheap now; retires e.g. all-excluded
                self._finish(key)
                continue
            try:
                primary = s.selector.batch_primary()
                gkey = (mask, s.selector.batch_key(), s.excluded)
            except NotImplementedError:
                singles.append((key, s))
                continue
            primaries.setdefault(gkey, primary)
            groups.setdefault(gkey, []).append((key, s))

        newly: dict[Hashable, int] = {}
        batch_served: list[Hashable] = []
        # -- 3. batched scoring, one lexsort per scoring rule ------------ #
        by_rule: dict[tuple, list[tuple]] = {}
        for gkey in groups:
            by_rule.setdefault(gkey[1], []).append(gkey)
        for rule_keys in by_rule.values():
            ready: list[tuple] = []
            eids_list, counts_list, ns = [], [], []
            for gkey in rule_keys:
                mask, _, excl = gkey
                eids, counts = stats_by_mask[mask]
                if excl:
                    eids, counts = filter_excluded(eids, counts, excl)
                if len(eids) == 0:  # pragma: no cover - finished() caught it
                    for key, _ in groups[gkey]:
                        self._finish(key)
                    continue
                ready.append(gkey)
                eids_list.append(eids)
                counts_list.append(counts)
                ns.append(self.collection.count(mask))
            if not ready:
                continue
            chosen = select_best_many(
                eids_list, counts_list, ns, primaries[ready[0]]
            )
            self.stats.scoring_groups += len(ready)
            for gkey, entity in zip(ready, chosen):
                for key, s in groups[gkey]:
                    s.push_question(entity)
                    newly[key] = entity
                    batch_served.append(key)
                    self.stats.selections += 1
                    self.stats.batched_selections += 1
        # Attribute the batched scan+scoring cost evenly to the sessions it
        # served, so DiscoveryResult.seconds stays comparable to sequential
        # runs (fallback sessions below self-time their select instead).
        if batch_served:
            share = (time.perf_counter() - t_batch) / len(batch_served)
            for key in batch_served:
                self._sessions[key].add_seconds(share)

        # -- 4. fallback selectors: per-session select over primed cache - #
        for key, s in singles:
            try:
                entity = s.next_question()
            except (RuntimeError, NoInformativeEntityError):
                self._finish(key)
                continue
            newly[key] = entity
            self.stats.selections += 1
            self.stats.fallback_selections += 1
        return newly

    def answer(self, key: Hashable, value: bool | None) -> None:
        """Record a user's answer for session ``key`` (pull-style API).

        The narrowing itself runs through the session's own
        :meth:`~repro.core.discovery.DiscoverySession.answer`.  Retirement
        of sessions that just resolved happens on the next :meth:`tick`.
        """
        self._sessions[key].answer(value)

    def run(self) -> dict[Hashable, DiscoveryResult]:
        """Drive every session against its oracle until all finish."""
        missing = [k for k, o in self._oracles.items() if o is None]
        if missing:
            raise ValueError(
                f"run() needs an oracle per session; missing for {missing!r}"
            )
        while self._sessions:
            self.tick()
            pending = self.pending()
            if not pending and self._sessions:
                raise RuntimeError(  # pragma: no cover - safety net
                    "engine made no progress; sessions stuck"
                )
            for key, entity in pending.items():
                oracle = self._oracles[key]
                assert oracle is not None
                self.answer(key, oracle(entity))
        return dict(self._results)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _note_visit(self, key: Hashable, mask: int) -> None:
        visited = self._visited[key]
        if mask not in visited:
            visited.add(mask)
            self._mask_refs[mask] = self._mask_refs.get(mask, 0) + 1

    def _finish(self, key: Hashable) -> None:
        session = self._sessions.pop(key)
        self._oracles.pop(key, None)
        self._lineage.pop(key, None)
        self._results[key] = session.result()
        for mask in self._visited.pop(key, ()):
            refs = self._mask_refs.get(mask, 0) - 1
            if refs > 0:
                self._mask_refs[mask] = refs
            else:
                self._mask_refs.pop(mask, None)
                if self._release:
                    # Nobody active still holds this sub-collection: give
                    # its cached stats back before the LRU has to.
                    self.collection.release_cached(mask)

    def __repr__(self) -> str:
        return (
            f"<SessionEngine active={self.n_active} "
            f"finished={len(self._results)} backend={self.collection.backend}>"
        )

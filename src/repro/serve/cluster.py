"""Multi-worker session sharding: N engine processes behind one edge.

One :class:`~repro.serve.scheduler.ScanScheduler` tops out at one
machine's cores (the flush thread serializes kernel passes per process).
This module scales the serving stack past that by partitioning *sessions*
across N engine worker processes:

* each worker owns a full replica of the collection, its own kernel,
  ``ScanScheduler`` and :class:`~repro.serve.async_service.AsyncDiscoveryService`
  — **shared-nothing**: no cross-worker state, no shared memory, no locks;
* sessions are routed by a consistent hash of the session id at
  create/attach time, so every later call (HTTP long-poll, WebSocket
  attach, TTL expiry) lands on the owning worker;
* all traffic is multiplexed over one length-prefixed duplex pipe per
  worker (``multiprocessing.Pipe`` frames JSON messages via
  ``send_bytes``/``recv_bytes``); a blocking reader thread per worker
  posts replies back onto the event loop, so a parked long-poll simply
  awaits its request's future;
* ``POST /admin/delta`` fans out to every worker and awaits a per-worker
  epoch acknowledgement before returning 200 — replicas never diverge by
  more than the one in-flight delta (a lock serializes fan-outs);
* a dead worker is detected by pipe EOF, its sessions answer
  ``503 worker_lost`` (their in-memory state died with the process), and
  the supervisor restarts it in place — replaying the recorded delta-spec
  chain so the fresh replica catches up to the current epoch — without
  disturbing sibling workers.

The HTTP edge (:class:`~repro.serve.http.DiscoveryApp`) stays a thin
router: :class:`ClusterService` exposes the same verb surface as
``AsyncDiscoveryService`` (``ask``/``answer``/``result``/``expire``/
``begin_drain``/``aclose``), plus spec-level entry points
(:meth:`ClusterService.spawn_from_spec`,
:meth:`ClusterService.apply_delta_spec`) so session construction and
delta parsing happen inside the owning worker.  Because routing is by
opaque session id over a pipe, moving workers to other hosts later is a
transport change, not an architecture change.

``python -m repro serve --workers N`` builds this topology; ``N = 0``
keeps the single-process in-process path byte-identical.
"""

from __future__ import annotations

import asyncio
import json
import math
import multiprocessing
import os
import secrets
import threading
import time
import zlib
from typing import Any, Hashable, Mapping

from ..data.loaders import load_collection
from ..data.synthetic import SyntheticConfig, generate_collection
from .async_service import (
    AsyncDiscoveryService,
    ServiceClosed,
    ServiceOverloaded,
    SessionExpired,
    WorkerLost,
)
from .metrics import ClusterMetrics

__all__ = [
    "ClusterError",
    "ClusterService",
    "WorkerLost",
    "worker_index_for",
]


class ClusterError(RuntimeError):
    """A cluster protocol violation (bad frame, replica epoch mismatch)."""


#: how many lost session ids are remembered so their later requests get a
#: clear 503 ``worker_lost`` instead of a generic 404 (bounded exactly like
#: the edge's expired-session memory)
LOST_IDS_REMEMBERED = 4096

#: reserved request id of the worker's one unsolicited message: the ready
#: hello it sends after building its replica, before serving requests
_HELLO_ID = -1


def worker_index_for(sid: str, n_workers: int) -> int:
    """The worker owning session ``sid``: a stable consistent hash.

    CRC32 of the id modulo the worker count — deterministic across
    processes, restarts and reconnects (no per-process seed, unlike
    ``hash()``), so an attach routed months of requests later still lands
    on the same worker index.
    """
    return zlib.crc32(sid.encode("utf-8")) % n_workers


def _encode(message: Mapping) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode()


# --------------------------------------------------------------------- #
# Worker process (child side)
# --------------------------------------------------------------------- #


def _build_worker_collection(boot: Mapping):
    """Rebuild the collection replica a worker serves, from its boot spec.

    Workers never receive a pickled collection: the spec names either a
    file path or the synthetic-generator parameters, and each replica is
    rebuilt deterministically — byte-identical across the edge and every
    worker — then the recorded delta chain is replayed so a *restarted*
    worker rejoins at the current epoch.
    """
    # Imported lazily only in docs; safe at child import time too.
    from .http import delta_batch_from_spec

    spec = boot["collection"]
    backend = boot.get("backend")
    if "path" in spec:
        collection = load_collection(spec["path"], backend=backend)
    else:
        collection = generate_collection(
            SyntheticConfig(**spec["synthetic"]), backend=backend
        )
    for delta_spec in boot.get("deltas", ()):
        collection = collection.apply_delta(delta_batch_from_spec(delta_spec))
    return collection


class _WorkerServer:
    """The child-side RPC loop: one request message -> one asyncio task.

    All sends happen on the event-loop thread (requests are dispatched to
    it via ``call_soon_threadsafe``), so pipe writes need no lock.  Errors
    cross the pipe as ``{"ok": false, "error": <kind>}`` frames and are
    re-raised as the matching exception on the parent side, keeping the
    edge's status mapping identical to the in-process path.
    """

    def __init__(self, index: int, conn, service, stop: asyncio.Event) -> None:
        self.index = index
        self.conn = conn
        self.service = service
        self.stop = stop
        self.tasks: set[asyncio.Task] = set()

    def read_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Blocking reader thread: parent frames -> loop tasks, EOF -> stop."""
        while True:
            try:
                raw = self.conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                message = json.loads(raw)
            except ValueError:
                continue
            try:
                loop.call_soon_threadsafe(self._begin, message)
            except RuntimeError:  # pragma: no cover - loop already closed
                break
        try:
            loop.call_soon_threadsafe(self.stop.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _begin(self, message: Mapping) -> None:
        task = asyncio.ensure_future(self._serve_one(message))
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)

    def _reply(self, rid, value) -> None:
        self._send({"id": rid, "ok": True, "value": value})

    def _reply_error(self, rid, kind: str, message: str, **extra) -> None:
        self._send({"id": rid, "ok": False, "error": kind,
                    "message": message, **extra})

    def _send(self, message: Mapping) -> None:
        try:
            self.conn.send_bytes(_encode(message))
        except (OSError, ValueError, BrokenPipeError):
            # Parent went away; the EOF path shuts us down.
            pass

    async def _serve_one(self, message: Mapping) -> None:
        from ..core.collection import DeltaError, DuplicateSetError

        rid = message.get("id")
        op = str(message.get("op", ""))
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        try:
            if handler is None:
                raise ClusterError(f"unknown op {op!r}")
            value = await handler(message)
        except ServiceOverloaded as exc:
            self._reply_error(rid, "overloaded", str(exc),
                              retry_after_s=exc.retry_after_s)
        except SessionExpired as exc:
            self._reply_error(rid, "expired", str(exc))
        except ServiceClosed as exc:
            self._reply_error(rid, "closed", str(exc))
        except (DeltaError, DuplicateSetError) as exc:
            self._reply_error(rid, "delta", str(exc))
        except KeyError as exc:
            self._reply_error(rid, "key", str(exc.args[0]) if exc.args else "")
        except (ValueError, TypeError) as exc:
            self._reply_error(rid, "value", str(exc))
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._reply_error(rid, "internal",
                              f"{type(exc).__name__}: {exc}")
        else:
            self._reply(rid, value)

    # ---------------------------- ops --------------------------------- #

    async def _op_ping(self, message):
        return {"pid": os.getpid()}

    async def _op_spawn(self, message):
        from .http import build_selector_from_spec

        spec = message["spec"]
        selector = build_selector_from_spec(spec)
        key = self.service.spawn(
            selector,
            initial=spec.get("initial", ()),
            max_questions=spec.get("max_questions"),
            key=message["key"],
        )
        state = self.service.registry.state(key)
        return {
            "session": str(key),
            "n_candidates": state.session.n_candidates,
            "epoch": state.session.collection.epoch,
        }

    async def _op_ask(self, message):
        return {"entity": await self.service.ask(message["key"])}

    async def _op_answer(self, message):
        self.service.answer(message["key"], message["value"])
        return {}

    async def _op_result(self, message):
        from .http import result_payload

        key = message["key"]
        return result_payload(key, await self.service.result(key))

    async def _op_expire(self, message):
        key = message["key"]
        if self.service.registry.result_of(key) is not None:
            # Finished but never collected: the edge may forget its
            # handle; the result map is retained exactly as in-process.
            return {"expired": True, "finished": True}
        return {"expired": bool(await self.service.expire(key)),
                "finished": False}

    async def _op_delta(self, message):
        from .http import delta_batch_from_spec

        batch = delta_batch_from_spec(message["spec"])
        collection = await self.service.apply_delta(batch)
        return {
            "epoch": collection.epoch,
            "n_sets": len(collection),
            "n_entities": collection.n_entities,
            "applied": bool(batch),
        }

    async def _op_metrics(self, message):
        metrics = self.service.metrics
        snapshot = metrics.snapshot()
        stats = self.service.stats
        # The aggregated edge exposition needs the raw scheduler counters
        # the JSON snapshot folds away.
        snapshot["stats"] = {
            "flushed_requests": stats.flushed_requests,
            "scanned_masks": stats.scanned_masks,
            "selections": stats.selections,
            "flush_seconds": stats.seconds,
        }
        snapshot["active"] = self.service.n_active
        return snapshot

    async def _op_health(self, message):
        registry = self.service.registry
        return {
            "active": registry.n_active,
            "finished": len(registry.results),
            "epoch": self.service.collection.epoch,
        }

    async def _op_drain(self, message):
        self.service.begin_drain()
        return {}

    async def _op_close(self, message):
        await self.service.aclose()
        self.stop.set()
        return {}


async def _worker_main(index: int, conn, boot: Mapping) -> None:
    collection = _build_worker_collection(boot)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    async with AsyncDiscoveryService(
        collection, **(boot.get("service") or {})
    ) as service:
        server = _WorkerServer(index, conn, service, stop)
        # The hello doubles as the ready handshake: the parent blocks on
        # it before routing traffic, so a worker that dies building its
        # replica fails the boot loudly instead of dropping requests.
        server._send({
            "id": _HELLO_ID,
            "ok": True,
            "value": {
                "ready": True,
                "pid": os.getpid(),
                "epoch": service.collection.epoch,
            },
        })
        reader = threading.Thread(
            target=server.read_loop,
            args=(loop,),
            name=f"repro-worker-{index}-reader",
            daemon=True,
        )
        reader.start()
        await stop.wait()
        # Let in-flight request tasks deliver their (possibly
        # ServiceClosed) replies before the pipe closes under them.
        if server.tasks:
            await asyncio.gather(*server.tasks, return_exceptions=True)
    conn.close()


def _worker_entry(index: int, conn, boot: Mapping) -> None:
    """Spawn-context process target (must be importable, not a closure)."""
    try:
        asyncio.run(_worker_main(index, conn, boot))
    except KeyboardInterrupt:  # pragma: no cover - operator ^C broadcast
        pass


# --------------------------------------------------------------------- #
# Parent side: one handle per worker process
# --------------------------------------------------------------------- #


def _error_from(message: Mapping, index: int) -> Exception:
    kind = message.get("error")
    text = str(message.get("message", ""))
    if kind == "overloaded":
        return ServiceOverloaded(
            text, retry_after_s=float(message.get("retry_after_s", 1.0))
        )
    if kind == "expired":
        return SessionExpired(text)
    if kind == "closed":
        return ServiceClosed(text)
    if kind == "key":
        return KeyError(text)
    if kind == "value":
        return ValueError(text)
    # "delta" here means a replica applied the same spec differently than
    # the edge replica — by construction impossible unless replicas
    # diverged, so it surfaces as a protocol error, not a 400.
    return ClusterError(f"worker {index} error [{kind}]: {text}")


class _WorkerHandle:
    """Parent-side endpoint of one engine worker process.

    Owns the pipe, the request-id -> future correlation map, and the
    blocking reader thread that completes those futures from the loop.
    ``ready`` gates routing: it is true only between a successful boot
    handshake (+ delta catch-up) and pipe EOF, so restarting workers
    never receive session traffic mid-replay.
    """

    def __init__(self, index: int, ctx) -> None:
        self.index = index
        self._ctx = ctx
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.pid: int | None = None
        self.boot_epoch = 0
        self.ready = False
        self.restarts = 0
        self.generation = 0
        self._serving = False  # pipe open and reader attached
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._on_death = None

    # ------------------------- lifecycle ------------------------------ #

    def start(self, boot: Mapping, timeout_s: float = 120.0) -> None:
        """Spawn the child and block until its ready hello (thread-safe).

        Called via ``asyncio.to_thread`` so replica builds (which can take
        seconds at bench scale) never block the event loop.
        """
        self.reap()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        self.proc = self._ctx.Process(
            target=_worker_entry,
            args=(self.index, child_conn, boot),
            name=f"repro-engine-worker-{self.index}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        deadline = time.monotonic() + timeout_s
        while not parent_conn.poll(0.2):
            if time.monotonic() > deadline:
                self.proc.kill()
                raise ClusterError(
                    f"worker {self.index} did not become ready within "
                    f"{timeout_s:.0f}s"
                )
            if not self.proc.is_alive() and not parent_conn.poll(0):
                raise ClusterError(
                    f"worker {self.index} exited during boot "
                    f"(exitcode {self.proc.exitcode})"
                )
        try:
            hello = json.loads(parent_conn.recv_bytes())
        except (EOFError, OSError, ValueError) as exc:
            raise ClusterError(
                f"worker {self.index} closed its pipe during boot"
            ) from exc
        if hello.get("id") != _HELLO_ID or not hello.get("ok"):
            raise ClusterError(f"worker {self.index} bad hello: {hello!r}")
        value = hello.get("value") or {}
        self.pid = int(value.get("pid", self.proc.pid))
        self.boot_epoch = int(value.get("epoch", 0))
        self.generation += 1

    def attach(self, loop: asyncio.AbstractEventLoop, on_death) -> None:
        """Start the reader thread; must run on the owning event loop."""
        self._loop = loop
        self._on_death = on_death
        self._serving = True
        thread = threading.Thread(
            target=self._read_loop,
            args=(self.conn, self.generation),
            name=f"repro-cluster-reader-{self.index}",
            daemon=True,
        )
        thread.start()

    def reap(self) -> None:
        """Join a previous (dead) child so no zombie outlives a restart."""
        if self.proc is not None:
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():  # pragma: no cover - defensive
                self.proc.kill()
                self.proc.join(timeout=5.0)
            self.proc = None
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.conn = None

    def kill(self) -> None:
        """SIGKILL the child (fault injection; EOF handling does the rest)."""
        if self.proc is not None and self.proc.is_alive():
            self.proc.kill()

    async def close(self, timeout_s: float = 10.0) -> int | None:
        """Graceful shutdown: close RPC, join, SIGKILL fallback; exitcode."""
        self.ready = False
        if self._serving:
            try:
                await asyncio.wait_for(self.call("close", routed=False),
                                       timeout_s)
            except (WorkerLost, ClusterError, asyncio.TimeoutError):
                pass
        self._serving = False
        proc = self.proc
        if proc is None:
            return None
        await asyncio.to_thread(proc.join, timeout_s)
        if proc.is_alive():
            proc.kill()
            await asyncio.to_thread(proc.join, 5.0)
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        return proc.exitcode

    # --------------------------- RPC ---------------------------------- #

    async def call(self, op: str, *, routed: bool = True, **params) -> Any:
        """One request/reply round trip; ``WorkerLost`` if the pipe is down.

        ``routed=False`` bypasses the ``ready`` gate for supervisor ops
        (drain/close/catch-up deltas) that must reach a worker the router
        is still hiding from session traffic.
        """
        if not self._serving or (routed and not self.ready):
            raise WorkerLost(f"engine worker {self.index} is not serving")
        rid = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self.conn.send_bytes(_encode({"id": rid, "op": op, **params}))
        except (OSError, ValueError) as exc:
            self._pending.pop(rid, None)
            # A failed send means the child is gone even if the reader
            # thread has not seen EOF yet; run the death path now so the
            # supervisor restarts without waiting on the reader (the
            # later EOF callback is a no-op: ``was_serving`` is False).
            self._handle_eof(self.generation)
            raise WorkerLost(
                f"engine worker {self.index} pipe is closed"
            ) from exc
        return await future

    # ----------------------- reader thread ---------------------------- #

    def _read_loop(self, conn, generation: int) -> None:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                message = json.loads(raw)
            except ValueError:
                continue
            try:
                self._loop.call_soon_threadsafe(self._dispatch, message)
            except RuntimeError:  # pragma: no cover - loop closed
                return
        try:
            self._loop.call_soon_threadsafe(self._handle_eof, generation)
        except RuntimeError:  # pragma: no cover - loop closed
            pass

    def _dispatch(self, message: Mapping) -> None:
        future = self._pending.pop(message.get("id"), None)
        if future is None or future.done():
            return
        if message.get("ok"):
            future.set_result(message.get("value"))
        else:
            future.set_exception(_error_from(message, self.index))

    def _handle_eof(self, generation: int) -> None:
        if generation != self.generation:
            return  # a stale reader of an earlier incarnation
        was_serving = self._serving
        self._serving = False
        self.ready = False
        self.fail_pending(WorkerLost(f"engine worker {self.index} died"))
        if was_serving and self._on_death is not None:
            self._on_death(self)

    def fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)


# --------------------------------------------------------------------- #
# Cluster service: the edge-side router
# --------------------------------------------------------------------- #


class _Placement:
    """Edge bookkeeping for one routed session."""

    __slots__ = ("worker", "finished")

    def __init__(self, worker: int) -> None:
        self.worker = worker
        self.finished = False


class ClusterService:
    """Session-sharding router over N engine worker processes.

    Exposes the :class:`AsyncDiscoveryService` verb surface (plus
    spec-level ``spawn_from_spec``/``apply_delta_spec``) so
    :class:`~repro.serve.http.DiscoveryApp` fronts either interchangeably.
    The edge keeps its own collection replica — applying every admin
    delta locally first — purely for label translation, epoch reporting
    and restart replay; it runs no kernel and serves no sessions.

    Parameters
    ----------
    collection:
        The edge replica (already built; workers rebuild their own from
        ``collection_spec``).
    workers:
        Number of engine worker processes (>= 1).
    collection_spec:
        Picklable recipe every worker rebuilds its replica from:
        ``{"path": str}`` or ``{"synthetic": {SyntheticConfig kwargs}}``.
    backend:
        Kernel backend forced in every worker (``None`` auto-detects).
    max_sessions:
        Global admission cap, divided evenly across workers (each worker
        enforces ``ceil(max_sessions / workers)``).
    restart_workers:
        Restart a dead worker in place (default).  Tests disable it to
        observe the lost state.
    """

    def __init__(
        self,
        collection,
        *,
        workers: int,
        collection_spec: Mapping,
        backend: str | None = None,
        flush_after_ms: float = 2.0,
        max_batch: int | None = 64,
        max_sessions: int | None = None,
        max_queued: int | None = None,
        overload_policy: str = "shed",
        retry_after_s: float = 1.0,
        restart_workers: bool = True,
        boot_timeout_s: float = 120.0,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self._collection = collection
        self.n_workers = workers
        self._collection_spec = dict(collection_spec)
        self._backend = backend
        self._boot_timeout_s = boot_timeout_s
        self._restart_workers = restart_workers
        per_worker_cap = (
            None
            if max_sessions is None
            else max(1, math.ceil(max_sessions / workers))
        )
        self._service_kwargs = {
            "flush_after_ms": flush_after_ms,
            "max_batch": max_batch,
            "max_sessions": per_worker_cap,
            "max_queued": max_queued,
            "overload_policy": overload_policy,
            "retry_after_s": retry_after_s,
        }
        ctx = multiprocessing.get_context(start_method)
        self._workers = [_WorkerHandle(i, ctx) for i in range(workers)]
        #: ordered delta specs applied so far — the replay chain a
        #: restarted worker needs to rejoin the current epoch (the edge
        #: epoch always equals ``len(self._delta_specs)``)
        self._delta_specs: list[dict] = []
        self._placed: dict[str, _Placement] = {}
        self._lost: dict[str, None] = {}
        self._started = False
        self._draining = False
        self._closed = False
        self._delta_lock: asyncio.Lock | None = None
        self._restart_tasks: set[asyncio.Task] = set()
        self.metrics = ClusterMetrics(self)

    # ------------------------- properties ----------------------------- #

    @property
    def collection(self):
        """The edge replica's current epoch (labels + epoch reporting)."""
        return self._collection

    @property
    def accepting(self) -> bool:
        return self._started and not (self._draining or self._closed)

    @property
    def draining(self) -> bool:
        return self._draining

    def worker_index(self, sid: str) -> int:
        return worker_index_for(sid, self.n_workers)

    @property
    def workers(self) -> "list[_WorkerHandle]":
        """The worker handles (fault injection and tests)."""
        return list(self._workers)

    # ------------------------- lifecycle ------------------------------ #

    def _boot_spec(self) -> dict:
        return {
            "collection": dict(self._collection_spec),
            "backend": self._backend,
            "deltas": list(self._delta_specs),
            "service": dict(self._service_kwargs),
        }

    async def start_workers(self) -> None:
        """Boot every worker and wait for all ready hellos (idempotent)."""
        if self._started:
            return
        loop = asyncio.get_running_loop()
        self._delta_lock = asyncio.Lock()
        boot = self._boot_spec()
        await asyncio.gather(
            *(
                asyncio.to_thread(h.start, boot, self._boot_timeout_s)
                for h in self._workers
            )
        )
        for handle in self._workers:
            handle.attach(loop, self._worker_died)
            handle.ready = True
        self._started = True

    async def __aenter__(self) -> "ClusterService":
        await self.start_workers()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def begin_drain(self) -> None:
        """Stop admitting sessions; tell every worker to drain too."""
        if self._draining:
            return
        self._draining = True
        for handle in self._workers:
            if handle.ready:
                task = asyncio.ensure_future(self._quiet_drain(handle))
                self._restart_tasks.add(task)
                task.add_done_callback(self._restart_tasks.discard)

    @staticmethod
    async def _quiet_drain(handle: _WorkerHandle) -> None:
        try:
            await handle.call("drain", routed=False)
        except (WorkerLost, ClusterError):
            pass

    async def aclose(self) -> None:
        """Drain-close every worker, join and reap all children."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        for task in list(self._restart_tasks):
            task.cancel()
        if self._started:
            await asyncio.gather(
                *(h.close() for h in self._workers), return_exceptions=True
            )

    # ---------------------- failure handling -------------------------- #

    def _worker_died(self, handle: _WorkerHandle) -> None:
        """Pipe-EOF callback (loop thread): orphan sessions, restart."""
        lost = [
            sid
            for sid, place in self._placed.items()
            if place.worker == handle.index
        ]
        for sid in lost:
            del self._placed[sid]
            self._lost[sid] = None
        while len(self._lost) > LOST_IDS_REMEMBERED:
            self._lost.pop(next(iter(self._lost)))
        if self._closed or self._draining or not self._restart_workers:
            return
        task = asyncio.ensure_future(self._restart_worker(handle))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart_worker(self, handle: _WorkerHandle) -> None:
        """Boot a replacement in place; siblings keep serving throughout."""
        while not (self._closed or self._draining):
            try:
                await asyncio.to_thread(
                    handle.start, self._boot_spec(), self._boot_timeout_s
                )
            except (ClusterError, OSError):
                await asyncio.sleep(0.5)
                continue
            handle.attach(asyncio.get_running_loop(), self._worker_died)
            try:
                # Deltas applied while the replacement was booting: catch
                # it up (the chain index IS the epoch) before the router
                # sees it, so live replicas never serve stale epochs.
                async with self._delta_lock:
                    behind = self._delta_specs[handle.boot_epoch:]
                    for spec in behind:
                        await handle.call("delta", spec=spec, routed=False)
                    handle.ready = True
                    handle.restarts += 1
            except (WorkerLost, ClusterError):
                continue  # died again mid-catch-up; EOF path re-triggers
            return

    # ------------------------- routing -------------------------------- #

    def _route(self, key: Hashable) -> tuple[_WorkerHandle, str]:
        sid = str(key)
        if sid in self._lost:
            raise WorkerLost(
                f"session {sid} was lost when its engine worker died"
            )
        place = self._placed.get(sid)
        if place is None:
            raise KeyError(f"unknown session key {sid!r}")
        return self._workers[place.worker], sid

    def _note_finished(self, sid: str) -> None:
        """Count a finish at the first successful *result fetch*.

        The edge keeps the authoritative lifetime counter because worker
        restarts reset worker-side counters.  It deliberately counts at
        result delivery, not at ask-returns-None: a worker killed between
        the two strands a finish no client ever saw, and the lifetime
        counter must agree exactly with what clients observed.
        """
        place = self._placed.get(sid)
        if place is not None and not place.finished:
            place.finished = True
            self.metrics.sessions_finished += 1

    # ------------------------- verbs ---------------------------------- #

    async def spawn_from_spec(self, spec: Mapping) -> dict:
        """Create a session on its hash-routed worker; placement info.

        The edge pre-validates the spec (the app's 400 mapping); the
        owning worker rebuilds the selector and constructs the session so
        no session object ever crosses the pipe.  If the hashed owner is
        mid-restart the session overflows to the next ready worker — the
        placement map, not the hash, is authoritative for later calls.
        """
        if self._closed or self._draining:
            raise ServiceClosed("cluster is draining; no new sessions")
        sid = secrets.token_hex(8)
        start = self.worker_index(sid)
        handle = None
        for offset in range(self.n_workers):
            candidate = self._workers[(start + offset) % self.n_workers]
            if candidate.ready:
                handle = candidate
                break
        if handle is None:
            raise ServiceOverloaded(
                "no engine worker is ready (restarts in progress)",
                retry_after_s=0.5,
            )
        try:
            info = await handle.call("spawn", key=sid, spec=dict(spec))
        except ServiceOverloaded:
            self.metrics.observe_rejection("sessions")
            raise
        self._placed[sid] = _Placement(handle.index)
        return info

    async def ask(self, key: Hashable) -> int | None:
        handle, sid = self._route(key)
        started = time.perf_counter()
        try:
            value = await handle.call("ask", key=sid)
        except ServiceOverloaded:
            self.metrics.observe_rejection("asks")
            raise
        self.metrics.observe_ask(time.perf_counter() - started)
        return value["entity"]

    async def answer(self, key: Hashable, value: "bool | None") -> None:
        handle, sid = self._route(key)
        await handle.call("answer", key=sid, value=value)

    async def result(self, key: Hashable) -> dict:
        handle, sid = self._route(key)
        try:
            payload = await handle.call("result", key=sid)
        except ServiceOverloaded:
            self.metrics.observe_rejection("asks")
            raise
        self._note_finished(sid)
        return payload

    async def expire(self, key: Hashable) -> bool:
        """TTL-expire ``key`` unless its worker vetoes (mid-interaction).

        Lost sessions expire trivially — their state died with the
        worker — so the edge's sweep reclaims their handles too.
        """
        sid = str(key)
        if sid in self._lost:
            return True
        place = self._placed.get(sid)
        if place is None:
            return True
        handle = self._workers[place.worker]
        try:
            value = await handle.call("expire", key=sid)
        except WorkerLost:
            return True
        except KeyError:
            value = {"expired": True, "finished": False}
        if not value["expired"]:
            return False
        self._placed.pop(sid, None)
        return True

    async def apply_delta_spec(self, spec: Mapping) -> dict:
        """Apply one delta: edge replica first, then fan-out with acks.

        The edge applies the batch locally (validating it and fixing the
        target epoch), records the spec on the replay chain, then awaits
        every live worker's epoch acknowledgement before returning — so a
        200 means every serving replica is at the new epoch.  A worker
        that dies mid-fan-out converges through restart replay instead.
        Serialized by a lock: at most one delta is in flight cluster-wide.
        """
        from .http import delta_batch_from_spec

        if self._closed:
            raise ServiceClosed("cluster is closed")
        async with self._delta_lock:
            batch = delta_batch_from_spec(spec)
            new_collection = self._collection.apply_delta(batch)
            if not batch:
                return {
                    "epoch": self._collection.epoch,
                    "n_sets": len(self._collection),
                    "n_entities": self._collection.n_entities,
                    "applied": False,
                }
            self._collection = new_collection
            stored = json.loads(_encode(dict(spec)))
            self._delta_specs.append(stored)
            self.metrics.deltas_applied += 1
            target = new_collection.epoch
            acks = await asyncio.gather(
                *(
                    self._delta_to_worker(handle, stored, target)
                    for handle in self._workers
                )
            )
            acked = [epoch for epoch in acks if epoch is not None]
            return {
                "epoch": target,
                "n_sets": len(new_collection),
                "n_entities": new_collection.n_entities,
                "applied": True,
                "workers_acked": len(acked),
            }

    async def _delta_to_worker(
        self, handle: _WorkerHandle, spec: Mapping, target: int
    ) -> "int | None":
        if not handle.ready:
            return None  # restart replay carries this spec
        try:
            value = await handle.call("delta", spec=spec)
        except WorkerLost:
            return None
        epoch = int(value["epoch"])
        if epoch != target:
            raise ClusterError(
                f"worker {handle.index} acked epoch {epoch}, "
                f"edge replica is at {target}"
            )
        return epoch

    # ---------------------- aggregate views --------------------------- #

    async def active_count(self) -> int:
        """Active sessions across all live workers (the drain gate)."""
        healths = await self._fanout("health")
        return sum(h["active"] for h in healths if h is not None)

    async def health_info(self) -> dict:
        """The cluster section of ``GET /healthz``.

        Includes per-worker pids so out-of-process harnesses (the soak
        driver's worker-kill fault) can target a specific child.
        """
        healths = await self._fanout("health")
        workers = []
        for handle, health in zip(self._workers, healths):
            workers.append(
                {
                    "worker": handle.index,
                    "pid": handle.pid,
                    "up": health is not None,
                    "restarts": handle.restarts,
                    "active": 0 if health is None else health["active"],
                    "epoch": None if health is None else health["epoch"],
                }
            )
        return {
            "active_sessions": sum(w["active"] for w in workers),
            "finished_sessions": self.metrics.sessions_finished,
            "epoch": self._collection.epoch,
            "workers": workers,
        }

    async def worker_metrics(self) -> "list[dict | None]":
        """Per-worker metrics snapshots (``None`` for a down worker)."""
        return await self._fanout("metrics")

    async def _fanout(self, op: str) -> "list[dict | None]":
        async def one(handle: _WorkerHandle) -> "dict | None":
            if not handle.ready:
                return None
            try:
                return await handle.call(op)
            except (WorkerLost, ClusterError, ServiceClosed):
                return None

        return await asyncio.gather(*(one(h) for h in self._workers))

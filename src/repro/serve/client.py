"""Minimal asyncio client for the HTTP/WebSocket serving edge.

The load benchmark (``benchmarks/bench_http.py``) drives thousands of
concurrent sessions against a real server process; a third-party HTTP
client would be a new dependency and a synchronous one would serialize
the load.  This module is the smallest useful client instead: one
keep-alive HTTP/1.1 connection per :class:`HttpSessionClient`, one
websocket per :class:`WsSessionClient`, JSON verbs matching the routes of
:class:`~repro.serve.http.DiscoveryApp`.  The tests reuse it, and it
doubles as the quickstart Python client in ``docs/serving.md``.

It understands exactly what :class:`~repro.serve.http.EmbeddedServer`
and uvicorn emit for this app — Content-Length JSON bodies, no chunked
responses — which is all a session client needs.
"""

from __future__ import annotations

import asyncio
import base64
import json
import secrets

from .http import encode_ws_frame, read_ws_frame

__all__ = [
    "AdminClient",
    "HttpConnection",
    "HttpSessionClient",
    "ServerBusy",
    "SessionExpiredError",
    "WorkerLostError",
    "WsSessionClient",
]


class ServerBusy(RuntimeError):
    """The server shed this request under load (HTTP 429 / WS ``busy``).

    Carries ``retry_after_s``, the server's back-off hint (the
    ``Retry-After`` value on HTTP, the ``retry_after_s`` body field on
    either transport; 1.0 when the server sent none).  The soak harness
    and well-behaved clients sleep that long and retry.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SessionExpiredError(RuntimeError):
    """The server reaped this session via its idle TTL (``session_expired``).

    Retrying will not help — the session and its state are gone; start a
    new session instead.
    """


class WorkerLostError(RuntimeError):
    """The engine worker owning this session died (``worker_lost``).

    Only a ``--workers N`` server emits it: HTTP 503 with error
    ``worker_lost``, or the same code on a WebSocket error frame before
    a 1011 close.  The session's state died with its worker — start a
    new session; the supervisor restarts the worker in the background.
    """


def _busy_from_body(body) -> ServerBusy:
    retry_after = 1.0
    if isinstance(body, dict):
        try:
            retry_after = float(body.get("retry_after_s", 1.0))
        except (TypeError, ValueError):
            pass
    return ServerBusy(
        f"server overloaded: {body!r}", retry_after_s=retry_after
    )


class HttpConnection:
    """One keep-alive HTTP/1.1 connection speaking JSON."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        token: str | None = None,
    ) -> tuple[int, dict | str]:
        """One round-trip; returns ``(status, parsed body)``.

        Reconnects transparently if the server closed the idle keep-alive
        connection between requests.
        """
        if self._writer is None:
            await self.connect()
        try:
            return await self._round_trip(method, path, body, token)
        except (ConnectionError, asyncio.IncompleteReadError):
            await self.aclose()
            await self.connect()
            return await self._round_trip(method, path, body, token)

    async def _round_trip(
        self,
        method: str,
        path: str,
        body: dict | None,
        token: str | None,
    ) -> tuple[int, dict | str]:
        assert self._reader is not None and self._writer is not None
        payload = b"" if body is None else json.dumps(body).encode()
        head = [
            f"{method} {path} HTTP/1.1".encode(),
            f"host: {self.host}:{self.port}".encode(),
            b"content-length: " + str(len(payload)).encode(),
        ]
        if body is not None:
            head.append(b"content-type: application/json")
        if token is not None:
            head.append(b"authorization: Bearer " + token.encode())
        self._writer.write(b"\r\n".join(head) + b"\r\n\r\n" + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split(b" ", 2)[1])
        headers: dict[bytes, bytes] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get(b"content-length", b"0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get(b"connection", b"").lower() == b"close":
            await self.aclose()
        content_type = headers.get(b"content-type", b"")
        if content_type.startswith(b"application/json") and raw:
            return status, json.loads(raw)
        return status, raw.decode("utf-8", "replace")

    async def __aenter__(self) -> "HttpConnection":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class _UnexpectedStatus(RuntimeError):
    def __init__(self, status: int, body) -> None:
        super().__init__(f"unexpected HTTP {status}: {body!r}")
        self.status = status
        self.body = body


class HttpSessionClient:
    """One discovery session over the HTTP routes (pull-style).

    Backpressure surfaces as typed exceptions: HTTP 429 raises
    :class:`ServerBusy` (with the server's ``retry_after_s`` hint) and a
    404 ``session_expired`` raises :class:`SessionExpiredError`; other
    unexpected statuses stay the generic internal error.
    """

    def __init__(self, host: str, port: int) -> None:
        self.conn = HttpConnection(host, port)
        self.session: str | None = None
        self.token: str | None = None

    async def __aenter__(self) -> "HttpSessionClient":
        await self.conn.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.conn.aclose()

    @staticmethod
    def _check(status: int, body, expected: int) -> None:
        if status == expected:
            return
        if status == 429:
            raise _busy_from_body(body)
        if (
            status == 404
            and isinstance(body, dict)
            and body.get("error") == "session_expired"
        ):
            raise SessionExpiredError(str(body.get("message", body)))
        if (
            status == 503
            and isinstance(body, dict)
            and body.get("error") == "worker_lost"
        ):
            raise WorkerLostError(str(body.get("message", body)))
        raise _UnexpectedStatus(status, body)

    async def create(self, **spec) -> dict:
        """``POST /sessions``; remembers the session id and token."""
        status, body = await self.conn.request("POST", "/sessions", spec)
        self._check(status, body, 201)
        assert isinstance(body, dict)
        self.session = body["session"]
        self.token = body["token"]
        return body

    async def next_question(self) -> int | None:
        """``GET .../question``: the entity id, ``None`` once finished."""
        status, body = await self.conn.request(
            "GET", f"/sessions/{self.session}/question", token=self.token
        )
        self._check(status, body, 200)
        assert isinstance(body, dict)
        return body["entity"]

    async def send_answer(self, value: "bool | None") -> None:
        status, body = await self.conn.request(
            "POST",
            f"/sessions/{self.session}/answer",
            {"answer": value},
            token=self.token,
        )
        self._check(status, body, 200)

    async def result(self) -> dict:
        status, body = await self.conn.request(
            "GET", f"/sessions/{self.session}/result", token=self.token
        )
        self._check(status, body, 200)
        assert isinstance(body, dict)
        return body

    async def run(self, oracle) -> dict:
        """Drive the whole session with ``oracle`` answering (bench core)."""
        while (entity := await self.next_question()) is not None:
            await self.send_answer(oracle(entity))
        return await self.result()


class AdminClient:
    """Operator-side client for the admin surface (``POST /admin/delta``).

    Speaks the JSON delta shape of
    :func:`~repro.serve.http.delta_batch_from_spec`, authorized by the
    server's ``admin_token`` (never a session token)::

        async with AdminClient(host, port, token) as admin:
            info = await admin.apply_delta(
                add={"S9": ["milk", "eggs"]},
                remove=["S3"],
                update={"S1": {"add": ["butter"]}},
            )
            # info["epoch"] is the collection epoch now serving spawns
    """

    def __init__(self, host: str, port: int, token: str) -> None:
        self.conn = HttpConnection(host, port)
        self.token = token

    async def __aenter__(self) -> "AdminClient":
        await self.conn.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.conn.aclose()

    async def apply_delta(
        self,
        add: "dict | None" = None,
        remove: "list | None" = None,
        update: "dict | None" = None,
    ) -> dict:
        """Apply one delta batch; returns the server's epoch summary."""
        body: dict = {}
        if add:
            body["add"] = add
        if remove:
            body["remove"] = remove
        if update:
            body["update"] = update
        status, payload = await self.conn.request(
            "POST", "/admin/delta", body, token=self.token
        )
        if status != 200:
            raise _UnexpectedStatus(status, payload)
        assert isinstance(payload, dict)
        return payload


class WsSessionClient:
    """One push-style discovery session over the ``/ws`` endpoint."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self.session: str | None = None
        self.token: str | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        key = base64.b64encode(secrets.token_bytes(16)).decode()
        self._writer.write(
            (
                f"GET /ws HTTP/1.1\r\nhost: {self.host}:{self.port}\r\n"
                f"upgrade: websocket\r\nconnection: Upgrade\r\n"
                f"sec-websocket-key: {key}\r\n"
                f"sec-websocket-version: 13\r\n\r\n"
            ).encode()
        )
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        while True:  # drain the handshake headers
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if status != 101:
            raise ConnectionError(f"websocket upgrade refused: {status}")

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "WsSessionClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def send_json(self, payload: dict) -> None:
        assert self._writer is not None
        self._writer.write(
            encode_ws_frame(0x1, json.dumps(payload).encode(), mask=True)
        )
        await self._writer.drain()

    async def receive_json(self) -> "dict | None":
        """Next JSON message; ``None`` once the server closed."""
        assert self._reader is not None and self._writer is not None
        while True:
            frame = await read_ws_frame(self._reader)
            if frame is None:
                return None
            opcode, payload = frame
            if opcode == 0x1:
                return json.loads(payload.decode())
            if opcode == 0x8:
                try:
                    self._writer.write(encode_ws_frame(0x8, payload[:2]))
                    await self._writer.drain()
                except (ConnectionError, OSError):
                    pass
                return None
            if opcode == 0x9:
                self._writer.write(encode_ws_frame(0xA, payload, mask=True))
                await self._writer.drain()

    async def create(self, **spec) -> dict:
        """Create the session as the first message of the connection."""
        await self.send_json({"type": "create", **spec})
        created = await self.receive_json()
        if created is not None and created.get("type") == "error":
            self._raise_ws_error(created)
        if created is None or created.get("type") != "created":
            raise ConnectionError(f"create refused: {created!r}")
        self.session = created["session"]
        self.token = created["token"]
        return created

    async def attach(self, session: str, token: str) -> dict:
        """Re-attach to an existing session (the reconnect path).

        The first message of a *fresh* connection: presents the session
        id and the bearer token minted at creation.  On success the
        server replies ``attached`` and immediately replays the pending
        question (if one was in flight when the previous connection
        dropped), so :meth:`run` resumes exactly where the session left
        off.
        """
        await self.send_json(
            {"type": "attach", "session": session, "token": token}
        )
        reply = await self.receive_json()
        if reply is not None and reply.get("type") == "error":
            self._raise_ws_error(reply)
        if reply is None or reply.get("type") != "attached":
            raise ConnectionError(f"attach refused: {reply!r}")
        self.session = session
        self.token = token
        return reply

    @staticmethod
    def _raise_ws_error(message: dict) -> None:
        code = message.get("error")
        detail = str(message.get("message", message))
        if code == "busy":
            raise ServerBusy(detail)
        if code == "session_expired":
            raise SessionExpiredError(detail)
        if code == "worker_lost":
            raise WorkerLostError(detail)
        raise RuntimeError(f"server error: {detail!r}")

    async def run(self, oracle) -> dict:
        """Answer pushed questions with ``oracle`` until the result."""
        while True:
            message = await self.receive_json()
            if message is None:
                raise ConnectionError("server closed before the result")
            kind = message.get("type")
            if kind == "question":
                await self.send_json(
                    {"type": "answer", "value": oracle(message["entity"])}
                )
            elif kind == "result":
                return message
            elif kind == "error":
                self._raise_ws_error(message)

"""Latency-budgeted scan batching for the serving stack (layer 2 of 3).

A :class:`ScanScheduler` accumulates scan requests — sessions in the
``NEEDS_SCAN`` phase, from *any* front-end — and answers all of them with
one stacked kernel pass per :meth:`ScanScheduler.flush`:

1. distinct candidate masks are scanned once, lineage-restricted, through
   :meth:`~repro.core.collection.SetCollection.informative_stats_many`;
2. sessions the scan revealed to be finished are retired;
3. the rest are deduplicated by ``(mask, scoring rule, exclusions)`` and
   scored with one vectorized :func:`~repro.core.kernels.scoring.select_best_many`
   pass per scoring rule; selectors without a batched form fall back to
   their own ``select`` over the just-primed cache.

*When* to flush is policy the front-end chooses:

* the lock-step :class:`~repro.serve.engine.SessionEngine` flushes every
  ``tick()`` — submit-then-flush, no budget;
* the :class:`~repro.serve.async_service.AsyncDiscoveryService` flushes
  when either the batch-size watermark (``max_batch``) is hit or the
  oldest queued request has waited ``flush_after_ms`` — large stacked
  scans *and* a bounded per-question latency.

The decision itself lives in exactly one place: :class:`FlushPolicy`, a
pure function of ``(queued, first_at, now)``.  The scheduler applies it
to its own queue (:meth:`due`, :attr:`watermark_hit`, :meth:`deadline`,
:meth:`should_flush`, over an injectable ``clock`` — which is also how
the tests drive the budget with a fake clock); the async service applies
the *same* policy object to its event-loop-side queue (requests must
keep accumulating there while a flush runs on the worker thread), plus
an all-sessions-waiting shortcut of its own.  Whatever the cadence, one
flush is bit-identical to the lock-step engine advancing the same
sessions — selection is deterministic given each session's own state, so
transcripts never depend on how requests were batched (the
golden-transcript tests enforce this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable

from ..core.collection import SetCollection
from ..core.discovery import DiscoveryResult
from ..core.kernels import filter_excluded, select_best_many
from ..core.selection import NoInformativeEntityError
from .state import (
    Phase,
    SessionRegistry,
    SessionState,
    group_for_scoring,
    plan_stacked_scan,
)


@dataclass(frozen=True)
class FlushPolicy:
    """*When* to flush, as a pure function — the single home of the rule.

    Both the scheduler (over its own request queue) and the async service
    (over its event-loop-side queue) answer "should we flush now?" by
    calling this object, so the two can never drift apart.

    ``flush_after_ms`` is the latency budget: the oldest queued request
    waits at most this long before a batched pass answers it (``None``
    disables the budget — the front-end flushes explicitly).
    ``max_batch`` is the batch-size watermark: this many queued requests
    trigger an immediate flush (``None`` disables the watermark).
    """

    flush_after_ms: float | None = None
    max_batch: int | None = None

    def watermark_hit(self, queued: int) -> bool:
        """True once ``queued`` requests fill the watermark."""
        return self.max_batch is not None and queued >= self.max_batch

    def deadline(self, first_at: float | None) -> float | None:
        """Clock value at which the oldest request's budget ends.

        ``first_at`` is the clock reading when the oldest currently-queued
        request arrived (``None`` while the queue is empty).
        """
        if first_at is None or self.flush_after_ms is None:
            return None
        return first_at + self.flush_after_ms / 1000.0

    def due(self, first_at: float | None, now: float) -> bool:
        """True once the latency budget of the oldest request expired."""
        deadline = self.deadline(first_at)
        return deadline is not None and now >= deadline

    def should_flush(
        self, queued: int, first_at: float | None, now: float
    ) -> bool:
        """The flush trigger: watermark hit or latency budget due."""
        return self.watermark_hit(queued) or self.due(first_at, now)


class SchedulerSaturated(RuntimeError):
    """A :meth:`ScanScheduler.submit` hit the scheduler's ``max_queue``.

    Only raised when the opt-in bound is set; re-submissions of an
    already-queued key never count against it.  Front-ends that bound
    their own loop-side queue (the async service's ``max_queued``) keep
    the scheduler queue bounded transitively and leave this off.
    """


@dataclass
class EngineStats:
    """Aggregate scheduler/engine work counters (serving metrics)."""

    #: scheduling rounds executed (lock-step ticks or async flushes)
    ticks: int = 0
    #: scan requests those rounds served (flush occupancy numerator —
    #: :class:`~repro.serve.metrics.ServiceMetrics` divides by ticks)
    flushed_requests: int = 0
    #: stacked kernel passes issued (at most one per flush)
    batched_scans: int = 0
    #: distinct sub-collection masks scanned by those passes
    scanned_masks: int = 0
    #: informative scans avoided because another session (or an earlier
    #: flush) already paid for the mask
    scan_cache_hits: int = 0
    #: questions selected in total
    selections: int = 0
    #: selections answered by the batched scoring path
    batched_selections: int = 0
    #: distinct (mask, scoring rule, exclusions) groups actually scored —
    #: the gap to ``batched_selections`` is deduplicated scoring work
    scoring_groups: int = 0
    #: selections that fell back to the selector's own ``select``
    fallback_selections: int = 0
    #: wall-clock seconds spent inside tick()/flush rounds
    seconds: float = 0.0
    #: deepest the scheduler's request queue has ever been (backpressure
    #: gauge: how close the edge came to a bound)
    queue_high_watermark: int = 0
    #: submissions refused because ``max_queue`` was full
    shed_requests: int = 0


@dataclass
class FlushReport:
    """Everything one :meth:`ScanScheduler.flush` decided.

    ``questions`` are the newly selected ``{key: entity id}`` pairs;
    ``finished`` the sessions retired this flush (with their results);
    ``already_pending`` requests that turned out to already hold an
    unanswered question (an async resubmission race, never the lock-step
    path) — reported so the front-end can still deliver that entity.
    """

    questions: dict[Hashable, int] = field(default_factory=dict)
    finished: dict[Hashable, DiscoveryResult] = field(default_factory=dict)
    already_pending: dict[Hashable, int] = field(default_factory=dict)


class ScanScheduler:
    """Accumulate scan requests; answer them in batched kernel passes.

    Parameters
    ----------
    registry:
        The shared :class:`~repro.serve.state.SessionRegistry` whose
        sessions this scheduler advances (finished sessions are retired
        into it).
    flush_after_ms:
        Latency budget: :meth:`due` turns true once the oldest queued
        request has waited this long.  ``None`` (the lock-step default)
        means the front-end flushes explicitly.
    max_batch:
        Batch-size watermark: :attr:`watermark_hit` turns true once this
        many requests are queued.  ``None`` means no watermark.
    clock:
        Monotonic time source for the latency budget (injectable for
        tests; defaults to :func:`time.perf_counter`).
    max_queue:
        Opt-in hard bound on queued requests: :meth:`submit` raises
        :class:`SchedulerSaturated` once this many distinct keys wait
        for a flush.  ``None`` (the default) keeps the queue unbounded —
        the async front-end bounds its own loop-side queue instead.
    """

    def __init__(
        self,
        registry: SessionRegistry,
        flush_after_ms: float | None = None,
        max_batch: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
        max_queue: int | None = None,
    ) -> None:
        self.registry = registry
        self.policy = FlushPolicy(
            flush_after_ms=flush_after_ms, max_batch=max_batch
        )
        self.stats = EngineStats()
        self._clock = clock
        self._queue: list[SessionState] = []
        self._queued: set[Hashable] = set()
        self._first_at: float | None = None
        self.max_queue = max_queue

    @property
    def collection(self) -> "SetCollection":
        """The registry's *current* epoch (new sessions' collection).

        A property, not a snapshot: after
        :meth:`~repro.serve.state.SessionRegistry.advance_collection` the
        scheduler follows automatically.  Flushes group work by each
        session's own pinned collection regardless.
        """
        return self.registry.collection

    @property
    def flush_after_ms(self) -> float | None:
        """The policy's latency budget (see :class:`FlushPolicy`)."""
        return self.policy.flush_after_ms

    @property
    def max_batch(self) -> int | None:
        """The policy's batch watermark (see :class:`FlushPolicy`)."""
        return self.policy.max_batch

    # ------------------------------------------------------------------ #
    # Request queue + flush policy
    # ------------------------------------------------------------------ #

    def submit(self, state: SessionState) -> None:
        """Queue one session's scan request (idempotent per key).

        With ``max_queue`` set, a submission that would grow the queue
        past the bound raises :class:`SchedulerSaturated` instead (the
        shed is counted in ``stats.shed_requests``).
        """
        if state.key in self._queued:
            return
        if (
            self.max_queue is not None
            and len(self._queue) >= self.max_queue
        ):
            self.stats.shed_requests += 1
            raise SchedulerSaturated(
                f"scheduler queue full ({self.max_queue} requests "
                f"awaiting a flush)"
            )
        self._queued.add(state.key)
        self._queue.append(state)
        if len(self._queue) > self.stats.queue_high_watermark:
            self.stats.queue_high_watermark = len(self._queue)
        if self._first_at is None:
            self._first_at = self._clock()

    @property
    def pending_requests(self) -> int:
        """Queued scan requests awaiting the next flush."""
        return len(self._queue)

    @property
    def watermark_hit(self) -> bool:
        """True once ``max_batch`` requests are queued."""
        return self.policy.watermark_hit(len(self._queue))

    def deadline(self) -> float | None:
        """Clock value at which the oldest queued request's budget ends."""
        return self.policy.deadline(self._first_at)

    def due(self, now: float | None = None) -> bool:
        """True once the latency budget of the oldest request expired."""
        return self.policy.due(
            self._first_at, self._clock() if now is None else now
        )

    def should_flush(self, now: float | None = None) -> bool:
        """Flush trigger: batch watermark hit or latency budget due."""
        return self.policy.should_flush(
            len(self._queue),
            self._first_at,
            self._clock() if now is None else now,
        )

    # ------------------------------------------------------------------ #
    # The batched pass
    # ------------------------------------------------------------------ #

    def flush(self) -> FlushReport:
        """Advance every queued session with one batched kernel pass.

        Sessions whose phase changed since submission (an answer arrived
        out of band) are re-dispatched by their *current* phase, so a
        flush is always safe to run — it never scans a session that does
        not need one.
        """
        queue, self._queue = self._queue, []
        self._queued.clear()
        self._first_at = None
        self.stats.flushed_requests += len(queue)
        report = FlushReport()
        need: list[SessionState] = []
        for state in queue:
            phase = state.phase
            if phase is Phase.DONE:
                report.finished[state.key] = self.registry.finish(state)
            elif phase is Phase.QUESTION_PENDING:
                entity = state.session.pending_entity
                assert entity is not None
                report.already_pending[state.key] = entity
            else:
                need.append(state)
        if need:
            self._advance(need, report)
        return report

    def _advance(
        self, need: list[SessionState], report: FlushReport
    ) -> None:
        """Advance ``need``, grouped by each session's pinned epoch.

        All sessions usually share the current collection and this is one
        group; after an
        :meth:`~repro.core.collection.SetCollection.apply_delta`, sessions
        pinned to older epochs get their own stacked pass against *their*
        collection — masks are only comparable within one epoch, and this
        is exactly what keeps a pinned session's transcript byte-identical
        across deltas.  Groups run in first-submission order, so the
        common single-epoch case is unchanged.
        """
        by_collection: dict[int, tuple[SetCollection, list[SessionState]]] = {}
        for state in need:
            collection = state.session.collection
            group = by_collection.get(id(collection))
            if group is None:
                by_collection[id(collection)] = (collection, [state])
            else:
                group[1].append(state)
        for collection, group in by_collection.values():
            self._advance_group(collection, group, report)

    def _advance_group(
        self,
        collection: SetCollection,
        need: list[SessionState],
        report: FlushReport,
    ) -> None:
        registry = self.registry
        # -- 1. one stacked scan for every distinct mask ----------------- #
        for state in need:
            registry.note_visit(state, state.session.candidates_mask)
        mask_order, mask_cands = plan_stacked_scan(need)
        hits = sum(1 for m in mask_order if collection.is_cached(m))
        t_batch = time.perf_counter()
        stats_list = collection.informative_stats_many(mask_order, mask_cands)
        stats_by_mask = dict(zip(mask_order, stats_list))
        if len(mask_order) > hits:
            self.stats.batched_scans += 1
            self.stats.scanned_masks += len(mask_order) - hits
        self.stats.scan_cache_hits += hits

        # -- 2. retire finished sessions, group the rest for scoring ---- #
        plan = group_for_scoring(need, stats_by_mask)
        for state in plan.finished:
            report.finished[state.key] = registry.finish(state)

        # -- 3. batched scoring, one lexsort per scoring rule ------------ #
        batch_served: list[SessionState] = []
        by_rule: dict[tuple, list[tuple]] = {}
        for gkey in plan.groups:
            by_rule.setdefault(gkey[1], []).append(gkey)
        for rule_keys in by_rule.values():
            ready: list[tuple] = []
            eids_list, counts_list, ns = [], [], []
            for gkey in rule_keys:
                mask, _, excl = gkey
                eids, counts = stats_by_mask[mask]
                if excl:
                    eids, counts = filter_excluded(eids, counts, excl)
                if len(eids) == 0:  # pragma: no cover - finished() caught it
                    for state in plan.groups[gkey]:
                        report.finished[state.key] = registry.finish(state)
                    continue
                ready.append(gkey)
                eids_list.append(eids)
                counts_list.append(counts)
                ns.append(collection.count(mask))
            if not ready:
                continue
            chosen = select_best_many(
                eids_list, counts_list, ns, plan.primaries[ready[0]]
            )
            self.stats.scoring_groups += len(ready)
            for gkey, entity in zip(ready, chosen):
                for state in plan.groups[gkey]:
                    state.session.push_question(entity)
                    report.questions[state.key] = entity
                    batch_served.append(state)
                    self.stats.selections += 1
                    self.stats.batched_selections += 1
        # Attribute the batched scan+scoring cost evenly to the sessions it
        # served, so DiscoveryResult.seconds stays comparable to sequential
        # runs (fallback sessions below self-time their select instead).
        if batch_served:
            share = (time.perf_counter() - t_batch) / len(batch_served)
            for state in batch_served:
                state.session.add_seconds(share)

        # -- 4. fallback selectors: per-session select over primed cache - #
        for state in plan.singles:
            try:
                entity = state.session.next_question()
            except (RuntimeError, NoInformativeEntityError):
                report.finished[state.key] = registry.finish(state)
                continue
            report.questions[state.key] = entity
            self.stats.selections += 1
            self.stats.fallback_selections += 1

    def __repr__(self) -> str:
        return (
            f"<ScanScheduler queued={self.pending_requests} "
            f"flush_after_ms={self.flush_after_ms} "
            f"max_batch={self.max_batch}>"
        )

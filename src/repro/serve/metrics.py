"""SLO metrics for the serving stack: latency percentiles, queue depth.

The scheduler's :class:`~repro.serve.scheduler.EngineStats` counts *work*
(flushes, scans, selections).  A network edge needs *SLO* figures on top:
what latency users actually observe, how deep the request queue runs, and
how full each batched flush is.  :class:`ServiceMetrics` layers those over
an ``EngineStats`` without touching the scheduler's hot path — the only
per-request cost is one :meth:`observe_ask` append into a bounded
reservoir.

The figures exported (and gated in CI via ``benchmarks/bench_http.py``):

* **ask latency p50/p95/p99** — time from ``ask()`` to question delivery,
  over a sliding window of recent observations (count and sum are
  lifetime totals, so Prometheus ``rate()`` works on them);
* **queue depth** — requests waiting for the next batched flush;
* **flush occupancy** — mean requests served per flush, i.e. how well the
  latency budget converts waiting users into stacked kernel work;
* **sessions by phase** — active sessions in ``needs-scan`` /
  ``question-pending`` plus lifetime ``finished``.

:meth:`render_prometheus` serializes everything in the Prometheus text
exposition format (``GET /metrics`` on the HTTP edge,
:mod:`repro.serve.http`); the dict form (:meth:`snapshot`) feeds JSON
consumers like the bench reports.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable

__all__ = [
    "ClusterMetrics",
    "LatencyReservoir",
    "ServiceMetrics",
    "quantile_sorted",
]


def quantile_sorted(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    at = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[at]


class LatencyReservoir:
    """Bounded sliding window of latency observations plus lifetime totals.

    Percentiles are computed over the newest ``window`` observations (a
    long-lived server must reflect *current* tail latency, not its whole
    history); ``count``/``total_seconds`` never reset, which is what
    Prometheus counters want.
    """

    def __init__(self, window: int = 4096) -> None:
        self._window: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def quantiles(self, qs: Iterable[float]) -> dict[float, float]:
        """``{q: seconds}`` for each requested quantile, one sort."""
        ordered = sorted(self._window)
        return {q: quantile_sorted(ordered, q) for q in qs}

    def __len__(self) -> int:
        return len(self._window)


#: the quantiles every latency summary exports (the SLO trio)
SLO_QUANTILES = (0.5, 0.95, 0.99)


class ServiceMetrics:
    """SLO view over one serving front-end (duck-typed, no hard coupling).

    ``source`` is anything exposing the async-service shape used here:
    ``stats`` (an :class:`~repro.serve.scheduler.EngineStats`),
    ``registry`` (a :class:`~repro.serve.state.SessionRegistry`), a
    ``scheduler`` with ``pending_requests``, and optionally
    ``queued_requests`` for loop-side queues the scheduler cannot see
    (:class:`~repro.serve.async_service.AsyncDiscoveryService` keeps its
    request queue on the event loop between flushes).
    """

    def __init__(
        self,
        source,
        *,
        window: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._source = source
        self._clock = clock
        self.ask_latency = LatencyReservoir(window=window)
        self.ws_sessions = 0  # live push-style websocket sessions
        #: sessions reaped by the HTTP edge's TTL sweep (lifetime counter,
        #: incremented by the edge — in-process serving never expires)
        self.sessions_expired = 0
        #: HTTP request counter, ``(route, status) -> count`` — filled by
        #: the HTTP edge; empty (and un-rendered) for in-process serving
        self.http_requests: dict[tuple[str, int], int] = {}
        #: backpressure sheds by kind: ``sessions`` (admission refused at
        #: ``max_sessions``), ``asks`` (request shed at ``max_queued``),
        #: ``ws-busy`` (WebSocket closed with a busy code).  All kinds
        #: render at 0 so dashboards see the series before the first shed.
        self.backpressure_rejections: dict[str, int] = {
            "sessions": 0,
            "asks": 0,
            "ws-busy": 0,
        }
        self._started_at = clock()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def observe_ask(self, seconds: float) -> None:
        """Record one user-observed ask-to-question latency."""
        self.ask_latency.observe(seconds)

    def observe_http(self, route: str, status: int) -> None:
        """Count one HTTP request by route template and response status."""
        key = (route, status)
        self.http_requests[key] = self.http_requests.get(key, 0) + 1

    def observe_rejection(self, kind: str) -> None:
        """Count one backpressure shed (see ``backpressure_rejections``)."""
        self.backpressure_rejections[kind] = (
            self.backpressure_rejections.get(kind, 0) + 1
        )

    # ------------------------------------------------------------------ #
    # Derived gauges
    # ------------------------------------------------------------------ #

    @property
    def queue_depth(self) -> int:
        """Requests waiting for the next batched flush (loop + scheduler)."""
        depth = self._source.scheduler.pending_requests
        queued = getattr(self._source, "queued_requests", None)
        if queued is not None:
            depth += queued
        return depth

    def queue_high_watermarks(self) -> dict[str, int]:
        """Deepest each request queue has ever run, by queue name.

        ``scheduler`` is the scheduler-side queue
        (``EngineStats.queue_high_watermark``); ``loop`` is the async
        front-end's event-loop-side queue, present only when the source
        tracks one.  The operator's sizing signal: how close traffic came
        to a ``max_queued`` bound.
        """
        marks = {"scheduler": self._source.stats.queue_high_watermark}
        loop = getattr(self._source, "queued_high_watermark", None)
        if loop is not None:
            marks["loop"] = loop
        return marks

    @property
    def flush_occupancy(self) -> float:
        """Mean scan requests served per flush (0.0 before the first)."""
        stats = self._source.stats
        if stats.ticks == 0:
            return 0.0
        return stats.flushed_requests / stats.ticks

    @property
    def collection_epoch(self) -> int:
        """Epoch number of the collection new sessions currently spawn on."""
        return self._source.registry.collection.epoch

    def live_epochs(self) -> dict[int, int]:
        """Active sessions pinned to each still-referenced epoch."""
        return self._source.registry.live_epochs()

    @property
    def deltas_applied(self) -> int:
        """Delta batches the front-end has applied (0 if it cannot)."""
        return getattr(self._source, "deltas_applied", 0)

    def sessions_by_phase(self) -> dict[str, int]:
        """Active sessions per phase plus lifetime ``finished`` count."""
        counts = {"needs-scan": 0, "question-pending": 0}
        for state in self._source.registry.active_states():
            counts[state.phase.value] = counts.get(state.phase.value, 0) + 1
        counts["finished"] = len(self._source.registry.results)
        return counts

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-friendly summary (the bench reports embed this)."""
        quantiles = self.ask_latency.quantiles(SLO_QUANTILES)
        stats = self._source.stats
        return {
            "ask_latency_ms": {
                f"p{int(q * 100)}": quantiles[q] * 1000.0
                for q in SLO_QUANTILES
            },
            "ask_count": self.ask_latency.count,
            "queue_depth": self.queue_depth,
            "flush_occupancy": self.flush_occupancy,
            "sessions": self.sessions_by_phase(),
            "collection_epoch": self.collection_epoch,
            "live_epochs": {
                str(epoch): count
                for epoch, count in sorted(self.live_epochs().items())
            },
            "deltas_applied": self.deltas_applied,
            "sessions_expired": self.sessions_expired,
            "backpressure_rejections": dict(self.backpressure_rejections),
            "queue_high_watermark": self.queue_high_watermarks(),
            "flushes": stats.ticks,
            "stacked_scans": stats.batched_scans,
            "scan_cache_hits": stats.scan_cache_hits,
            "uptime_s": self._clock() - self._started_at,
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (``GET /metrics``)."""
        stats = self._source.stats
        quantiles = self.ask_latency.quantiles(SLO_QUANTILES)
        lines = [
            "# HELP repro_ask_latency_seconds Time from ask() to question "
            "delivery, sliding window.",
            "# TYPE repro_ask_latency_seconds summary",
        ]
        for q in SLO_QUANTILES:
            lines.append(
                f'repro_ask_latency_seconds{{quantile="{q}"}} '
                f"{quantiles[q]:.9f}"
            )
        lines += [
            f"repro_ask_latency_seconds_sum "
            f"{self.ask_latency.total_seconds:.9f}",
            f"repro_ask_latency_seconds_count {self.ask_latency.count}",
            "# HELP repro_queue_depth Scan requests awaiting the next "
            "batched flush.",
            "# TYPE repro_queue_depth gauge",
            f"repro_queue_depth {self.queue_depth}",
            "# HELP repro_flush_occupancy Mean scan requests served per "
            "flush.",
            "# TYPE repro_flush_occupancy gauge",
            f"repro_flush_occupancy {self.flush_occupancy:.6f}",
            "# HELP repro_sessions Sessions by serving phase (finished is "
            "a lifetime count).",
            "# TYPE repro_sessions gauge",
        ]
        for phase, count in sorted(self.sessions_by_phase().items()):
            lines.append(f'repro_sessions{{phase="{phase}"}} {count}')
        lines += [
            "# HELP repro_collection_epoch Epoch new sessions spawn on "
            "(bumped by each applied delta batch).",
            "# TYPE repro_collection_epoch gauge",
            f"repro_collection_epoch {self.collection_epoch}",
            "# HELP repro_epoch_sessions Active sessions pinned to each "
            "still-referenced collection epoch.",
            "# TYPE repro_epoch_sessions gauge",
        ]
        for epoch, count in sorted(self.live_epochs().items()):
            lines.append(f'repro_epoch_sessions{{epoch="{epoch}"}} {count}')
        lines += [
            "# HELP repro_deltas_applied_total Delta batches applied to "
            "the served collection.",
            "# TYPE repro_deltas_applied_total counter",
            f"repro_deltas_applied_total {self.deltas_applied}",
            "# HELP repro_sessions_expired_total Sessions reaped by the "
            "HTTP edge's idle TTL sweep.",
            "# TYPE repro_sessions_expired_total counter",
            f"repro_sessions_expired_total {self.sessions_expired}",
            "# HELP repro_backpressure_rejections_total Requests shed to "
            "keep queues bounded, by kind.",
            "# TYPE repro_backpressure_rejections_total counter",
        ]
        for kind, count in sorted(self.backpressure_rejections.items()):
            lines.append(
                f'repro_backpressure_rejections_total{{kind="{kind}"}} '
                f"{count}"
            )
        lines += [
            "# HELP repro_queue_high_watermark Deepest each request queue "
            "has ever run.",
            "# TYPE repro_queue_high_watermark gauge",
        ]
        for queue, mark in sorted(self.queue_high_watermarks().items()):
            lines.append(
                f'repro_queue_high_watermark{{queue="{queue}"}} {mark}'
            )
        lines += [
            "# HELP repro_websocket_sessions Live push-style websocket "
            "sessions.",
            "# TYPE repro_websocket_sessions gauge",
            f"repro_websocket_sessions {self.ws_sessions}",
            "# HELP repro_flushes_total Scheduling rounds executed.",
            "# TYPE repro_flushes_total counter",
            f"repro_flushes_total {stats.ticks}",
            "# HELP repro_flushed_requests_total Scan requests served by "
            "those rounds.",
            "# TYPE repro_flushed_requests_total counter",
            f"repro_flushed_requests_total {stats.flushed_requests}",
            "# HELP repro_stacked_scans_total Stacked kernel passes issued.",
            "# TYPE repro_stacked_scans_total counter",
            f"repro_stacked_scans_total {stats.batched_scans}",
            "# HELP repro_scanned_masks_total Distinct sub-collection masks "
            "scanned.",
            "# TYPE repro_scanned_masks_total counter",
            f"repro_scanned_masks_total {stats.scanned_masks}",
            "# HELP repro_scan_cache_hits_total Scans answered from the "
            "stats cache.",
            "# TYPE repro_scan_cache_hits_total counter",
            f"repro_scan_cache_hits_total {stats.scan_cache_hits}",
            "# HELP repro_selections_total Questions selected.",
            "# TYPE repro_selections_total counter",
            f"repro_selections_total {stats.selections}",
            "# HELP repro_flush_seconds_total Wall-clock seconds inside "
            "flush rounds.",
            "# TYPE repro_flush_seconds_total counter",
            f"repro_flush_seconds_total {stats.seconds:.9f}",
        ]
        if self.http_requests:
            lines += [
                "# HELP repro_http_requests_total HTTP requests by route "
                "template and status.",
                "# TYPE repro_http_requests_total counter",
            ]
            for (route, status), count in sorted(self.http_requests.items()):
                lines.append(
                    f'repro_http_requests_total{{route="{route}",'
                    f'status="{status}"}} {count}'
                )
        return "\n".join(lines) + "\n"


class ClusterMetrics:
    """Edge-side metrics for the multi-worker topology
    (:class:`~repro.serve.cluster.ClusterService`).

    Exposes the same recording surface the HTTP edge expects from
    :class:`ServiceMetrics` (``observe_http``/``observe_rejection``,
    ``ws_sessions``, ``sessions_expired``) plus the async renderer
    :meth:`arender_prometheus`, which fans out to every live worker for a
    snapshot and merges.

    Aggregation rules keep the exported families *exact* under worker
    restarts (a restarted worker's counters reset to zero, so naive sums
    would go backwards):

    * lifetime counters users observe — sessions ``finished``,
      ``deltas_applied``, backpressure sheds, expirations — are edge-side
      counters that survive any worker's death;
    * work gauges (queue depth, session phases, pinned epochs) are summed
      across live workers — a dead worker's sessions really are gone;
    * scheduler work counters (flushes, scans, selections) are summed and
      documented as best-effort across restarts;
    * per-worker drill-down rides in new single-label families
      (``repro_worker_up``, ``repro_worker_epoch``, ...) rather than a
      second label on existing ones, so existing scrape tooling keeps
      parsing the aggregate series unchanged.
    """

    def __init__(
        self,
        cluster,
        *,
        window: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._cluster = cluster
        self._clock = clock
        #: end-to-end ask latency as the edge sees it (RPC included) —
        #: the user-observed figure, unlike per-worker service latency
        self.ask_latency = LatencyReservoir(window=window)
        self.ws_sessions = 0
        self.sessions_expired = 0
        self.http_requests: dict[tuple[str, int], int] = {}
        self.backpressure_rejections: dict[str, int] = {
            "sessions": 0,
            "asks": 0,
            "ws-busy": 0,
        }
        #: sessions whose result the edge delivered (counted once per
        #: session, at first result fetch) — survives restarts
        self.sessions_finished = 0
        #: admin deltas accepted by the edge (each one reaches every
        #: worker, so a cross-worker sum would over-count by N)
        self.deltas_applied = 0
        self._started_at = clock()

    # Recording (same surface as ServiceMetrics) ----------------------- #

    def observe_ask(self, seconds: float) -> None:
        self.ask_latency.observe(seconds)

    def observe_http(self, route: str, status: int) -> None:
        key = (route, status)
        self.http_requests[key] = self.http_requests.get(key, 0) + 1

    def observe_rejection(self, kind: str) -> None:
        self.backpressure_rejections[kind] = (
            self.backpressure_rejections.get(kind, 0) + 1
        )

    # Export ----------------------------------------------------------- #

    async def arender_prometheus(self) -> str:
        """Prometheus text exposition, aggregated across the cluster."""
        snapshots = await self._cluster.worker_metrics()
        live = [s for s in snapshots if s is not None]

        def total(key: str) -> float:
            return sum(s.get(key, 0) for s in live)

        def stat_total(key: str) -> float:
            return sum(s.get("stats", {}).get(key, 0) for s in live)

        sessions = {"needs-scan": 0, "question-pending": 0}
        epoch_sessions: dict[int, int] = {
            self._cluster.collection.epoch: 0
        }
        watermarks: dict[str, int] = {}
        for snap in live:
            for phase, count in snap.get("sessions", {}).items():
                if phase != "finished":
                    sessions[phase] = sessions.get(phase, 0) + count
            for epoch, count in snap.get("live_epochs", {}).items():
                epoch = int(epoch)
                epoch_sessions[epoch] = epoch_sessions.get(epoch, 0) + count
            for queue, mark in snap.get("queue_high_watermark", {}).items():
                watermarks[queue] = max(watermarks.get(queue, 0), mark)
        sessions["finished"] = self.sessions_finished
        flushes = total("flushes")
        flushed_requests = stat_total("flushed_requests")
        occupancy = flushed_requests / flushes if flushes else 0.0

        quantiles = self.ask_latency.quantiles(SLO_QUANTILES)
        lines = [
            "# HELP repro_ask_latency_seconds Time from ask() to question "
            "delivery, sliding window.",
            "# TYPE repro_ask_latency_seconds summary",
        ]
        for q in SLO_QUANTILES:
            lines.append(
                f'repro_ask_latency_seconds{{quantile="{q}"}} '
                f"{quantiles[q]:.9f}"
            )
        lines += [
            f"repro_ask_latency_seconds_sum "
            f"{self.ask_latency.total_seconds:.9f}",
            f"repro_ask_latency_seconds_count {self.ask_latency.count}",
            "# HELP repro_queue_depth Scan requests awaiting the next "
            "batched flush.",
            "# TYPE repro_queue_depth gauge",
            f"repro_queue_depth {int(total('queue_depth'))}",
            "# HELP repro_flush_occupancy Mean scan requests served per "
            "flush.",
            "# TYPE repro_flush_occupancy gauge",
            f"repro_flush_occupancy {occupancy:.6f}",
            "# HELP repro_sessions Sessions by serving phase (finished is "
            "a lifetime count).",
            "# TYPE repro_sessions gauge",
        ]
        for phase, count in sorted(sessions.items()):
            lines.append(f'repro_sessions{{phase="{phase}"}} {count}')
        lines += [
            "# HELP repro_collection_epoch Epoch new sessions spawn on "
            "(bumped by each applied delta batch).",
            "# TYPE repro_collection_epoch gauge",
            f"repro_collection_epoch {self._cluster.collection.epoch}",
            "# HELP repro_epoch_sessions Active sessions pinned to each "
            "still-referenced collection epoch.",
            "# TYPE repro_epoch_sessions gauge",
        ]
        for epoch, count in sorted(epoch_sessions.items()):
            lines.append(f'repro_epoch_sessions{{epoch="{epoch}"}} {count}')
        lines += [
            "# HELP repro_deltas_applied_total Delta batches applied to "
            "the served collection.",
            "# TYPE repro_deltas_applied_total counter",
            f"repro_deltas_applied_total {self.deltas_applied}",
            "# HELP repro_sessions_expired_total Sessions reaped by the "
            "HTTP edge's idle TTL sweep.",
            "# TYPE repro_sessions_expired_total counter",
            f"repro_sessions_expired_total {self.sessions_expired}",
            "# HELP repro_backpressure_rejections_total Requests shed to "
            "keep queues bounded, by kind.",
            "# TYPE repro_backpressure_rejections_total counter",
        ]
        for kind, count in sorted(self.backpressure_rejections.items()):
            lines.append(
                f'repro_backpressure_rejections_total{{kind="{kind}"}} '
                f"{count}"
            )
        lines += [
            "# HELP repro_queue_high_watermark Deepest each request queue "
            "has ever run.",
            "# TYPE repro_queue_high_watermark gauge",
        ]
        for queue, mark in sorted(watermarks.items() or {"scheduler": 0}.items()):
            lines.append(
                f'repro_queue_high_watermark{{queue="{queue}"}} {mark}'
            )
        lines += [
            "# HELP repro_websocket_sessions Live push-style websocket "
            "sessions.",
            "# TYPE repro_websocket_sessions gauge",
            f"repro_websocket_sessions {self.ws_sessions}",
            "# HELP repro_flushes_total Scheduling rounds executed "
            "(summed across workers; best-effort across restarts).",
            "# TYPE repro_flushes_total counter",
            f"repro_flushes_total {int(flushes)}",
            "# HELP repro_flushed_requests_total Scan requests served by "
            "those rounds.",
            "# TYPE repro_flushed_requests_total counter",
            f"repro_flushed_requests_total {int(flushed_requests)}",
            "# HELP repro_stacked_scans_total Stacked kernel passes issued.",
            "# TYPE repro_stacked_scans_total counter",
            f"repro_stacked_scans_total {int(total('stacked_scans'))}",
            "# HELP repro_scanned_masks_total Distinct sub-collection masks "
            "scanned.",
            "# TYPE repro_scanned_masks_total counter",
            f"repro_scanned_masks_total {int(stat_total('scanned_masks'))}",
            "# HELP repro_scan_cache_hits_total Scans answered from the "
            "stats cache.",
            "# TYPE repro_scan_cache_hits_total counter",
            f"repro_scan_cache_hits_total {int(total('scan_cache_hits'))}",
            "# HELP repro_selections_total Questions selected.",
            "# TYPE repro_selections_total counter",
            f"repro_selections_total {int(stat_total('selections'))}",
            "# HELP repro_flush_seconds_total Wall-clock seconds inside "
            "flush rounds.",
            "# TYPE repro_flush_seconds_total counter",
            f"repro_flush_seconds_total {stat_total('flush_seconds'):.9f}",
            "# HELP repro_cluster_workers Engine worker processes "
            "configured for this edge.",
            "# TYPE repro_cluster_workers gauge",
            f"repro_cluster_workers {self._cluster.n_workers}",
            "# HELP repro_worker_up Whether each engine worker is serving.",
            "# TYPE repro_worker_up gauge",
        ]
        handles = self._cluster.workers
        for handle, snap in zip(handles, snapshots):
            lines.append(
                f'repro_worker_up{{worker="{handle.index}"}} '
                f"{1 if snap is not None else 0}"
            )
        lines += [
            "# HELP repro_worker_epoch Collection epoch each live worker "
            "replica serves (the replica-divergence signal).",
            "# TYPE repro_worker_epoch gauge",
        ]
        for handle, snap in zip(handles, snapshots):
            if snap is not None:
                lines.append(
                    f'repro_worker_epoch{{worker="{handle.index}"}} '
                    f"{snap.get('collection_epoch', 0)}"
                )
        lines += [
            "# HELP repro_worker_sessions_active Active sessions owned by "
            "each live worker.",
            "# TYPE repro_worker_sessions_active gauge",
        ]
        for handle, snap in zip(handles, snapshots):
            if snap is not None:
                lines.append(
                    f'repro_worker_sessions_active'
                    f'{{worker="{handle.index}"}} {snap.get("active", 0)}'
                )
        lines += [
            "# HELP repro_worker_restarts_total Times each worker was "
            "restarted after dying.",
            "# TYPE repro_worker_restarts_total counter",
        ]
        for handle in handles:
            lines.append(
                f'repro_worker_restarts_total{{worker="{handle.index}"}} '
                f"{handle.restarts}"
            )
        if self.http_requests:
            lines += [
                "# HELP repro_http_requests_total HTTP requests by route "
                "template and status.",
                "# TYPE repro_http_requests_total counter",
            ]
            for (route, status), count in sorted(self.http_requests.items()):
                lines.append(
                    f'repro_http_requests_total{{route="{route}",'
                    f'status="{status}"}} {count}'
                )
        return "\n".join(lines) + "\n"

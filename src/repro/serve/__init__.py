"""Serving layer: run *many* concurrent discovery sessions efficiently.

The paper evaluates Algorithm 2 one session at a time; serving heavy
interactive traffic means advancing thousands of independent sessions whose
per-step latency budgets are tight.  :class:`~repro.serve.engine.SessionEngine`
is the building block for that: it steps N sessions in lock-step, answering
all of their informative scans and selector scorings through the stacked-mask
kernel APIs (one batched pass instead of N Python-level scans) while keeping
every session's transcript bit-identical to a sequential
:meth:`~repro.core.discovery.DiscoverySession.run`.
"""

from .engine import EngineStats, SessionEngine

__all__ = ["EngineStats", "SessionEngine"]

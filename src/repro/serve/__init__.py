"""Serving layer: run *many* concurrent discovery sessions efficiently.

The paper evaluates Algorithm 2 one session at a time; serving heavy
interactive traffic means advancing thousands of independent sessions whose
per-step latency budgets are tight.  The stack has three layers
(``docs/serving.md``):

1. :mod:`repro.serve.state` — the session **state machine**
   (``NEEDS_SCAN -> QUESTION_PENDING -> DONE``) and the shared
   :class:`SessionRegistry` bookkeeping;
2. :mod:`repro.serve.scheduler` — the :class:`ScanScheduler`, which
   accumulates scan requests and answers them in stacked kernel passes,
   flushing on a batch watermark or latency budget;
3. front-ends — the lock-step :class:`SessionEngine`
   (:mod:`repro.serve.engine`) and the asyncio
   :class:`AsyncDiscoveryService` (:mod:`repro.serve.async_service`),
   which let sessions join, answer and finish independently while the
   kernel still sees large stacked scans;
4. the network edge — :class:`DiscoveryApp` (:mod:`repro.serve.http`),
   an ASGI app exposing sessions over HTTP and WebSocket with
   :class:`ServiceMetrics` SLO export, hosted by the stdlib
   :class:`EmbeddedServer` or any ASGI server (uvicorn extra);
5. scale-out — :class:`ClusterService` (:mod:`repro.serve.cluster`)
   shards sessions across N shared-nothing engine worker processes by
   consistent hash of the session id, the same ``DiscoveryApp`` acting
   as a thin router (``python -m repro serve --workers N``).

Whatever the front-end, every session's transcript is bit-identical to a
sequential :meth:`~repro.core.discovery.DiscoverySession.run` — the stack
changes how work is batched, never what a session observes.  That
guarantee survives mutation: collections version by epoch
(``docs/collections.md``), every front-end exposes ``apply_delta``, each
session stays pinned to the epoch it started on, and the scheduler groups
stacked flushes per epoch.
"""

from .async_service import (
    AsyncDiscoveryService,
    ServiceClosed,
    ServiceOverloaded,
    SessionExpired,
    WorkerLost,
    percentile,
)
from .cluster import ClusterError, ClusterService, worker_index_for
from .engine import EngineStats, SessionEngine
from .http import DiscoveryApp, EmbeddedServer, delta_batch_from_spec
from .metrics import ClusterMetrics, LatencyReservoir, ServiceMetrics
from .scheduler import FlushPolicy, FlushReport, ScanScheduler, SchedulerSaturated
from .state import Phase, SessionRegistry, SessionState

__all__ = [
    "AsyncDiscoveryService",
    "ClusterError",
    "ClusterMetrics",
    "ClusterService",
    "DiscoveryApp",
    "EmbeddedServer",
    "EngineStats",
    "FlushPolicy",
    "FlushReport",
    "LatencyReservoir",
    "Phase",
    "ScanScheduler",
    "SchedulerSaturated",
    "ServiceClosed",
    "ServiceMetrics",
    "ServiceOverloaded",
    "SessionEngine",
    "SessionExpired",
    "SessionRegistry",
    "SessionState",
    "WorkerLost",
    "delta_batch_from_spec",
    "worker_index_for",
    "percentile",
]

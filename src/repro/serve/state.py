"""Session state machine for the serving stack (layer 1 of 3).

Serving splits into three layers (see ``docs/serving.md``):

1. **state machine** (this module) — what each session *is*: a keyed
   :class:`SessionState` moving through the phases

   ``NEEDS_SCAN -> QUESTION_PENDING -> ... -> DONE``

   plus the registry bookkeeping every front-end shares (lineage
   restrictions, visited-mask reference counts for cache release, results
   of finished sessions, answer validation);
2. **scheduler** (:mod:`repro.serve.scheduler`) — *when* the batched
   kernel passes run;
3. **front-ends** (:mod:`repro.serve.engine` lock-step,
   :mod:`repro.serve.async_service` asyncio) — *who* drives the cadence.

The phase/grouping logic here used to live inline in the monolithic
``SessionEngine._advance``; it is pure session-state reasoning with no
batching policy, which is why both the lock-step engine and the async
service can share it without re-deriving each other's behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from ..core.collection import SetCollection
from ..core.discovery import DiscoveryResult, DiscoverySession, Oracle


class Phase(enum.Enum):
    """Where a session sits in the serving state machine.

    ``NEEDS_SCAN``
        No question is pending and no cheap halt applies: the session's
        next step is an informative scan of its candidate mask (which may
        still discover the session is done, e.g. every informative entity
        excluded by "don't know" answers).
    ``QUESTION_PENDING``
        A question was selected and awaits the user's answer; the session
        costs nothing until the answer arrives.
    ``DONE``
        Decidable without a scan: one candidate remains or the question
        budget is exhausted (:attr:`DiscoverySession.halted_without_scan`).
    """

    NEEDS_SCAN = "needs-scan"
    QUESTION_PENDING = "question-pending"
    DONE = "done"


@dataclass
class SessionState:
    """One session's serving-side state: key, lineage, visited masks.

    ``lineage`` is the informative-entity list of the mask the session was
    last scanned at — the exact restriction for its next sub-collection's
    scan (narrowing can only shrink the informative set).  ``visited``
    feeds the registry's mask reference counts so finished sessions can
    release cached stats nobody else holds.
    """

    key: Hashable
    session: DiscoverySession
    oracle: Oracle | None = None
    lineage: Sequence[int] | None = None
    visited: set[int] = field(default_factory=set)

    @property
    def phase(self) -> Phase:
        if self.session.pending_entity is not None:
            return Phase.QUESTION_PENDING
        if self.session.halted_without_scan:
            return Phase.DONE
        return Phase.NEEDS_SCAN


def plan_stacked_scan(
    states: Sequence[SessionState],
) -> tuple[list[int], list[Sequence[int] | None]]:
    """Distinct candidate masks to scan, each with a lineage restriction.

    Sessions sharing a mask are scanned once.  Any sharing session's
    lineage restricts the scan exactly — the informative entities of a
    mask are a subset of those of every ancestor mask — so the first
    session's lineage is used (``None`` means an unrestricted scan).
    """
    mask_order: list[int] = []
    mask_cands: list[Sequence[int] | None] = []
    seen: set[int] = set()
    for state in states:
        mask = state.session.candidates_mask
        if mask not in seen:
            seen.add(mask)
            mask_order.append(mask)
            mask_cands.append(state.lineage)
    return mask_order, mask_cands


@dataclass
class ScoringPlan:
    """Post-scan partition of sessions: how each one's question is chosen.

    ``groups`` deduplicates by ``(mask, scoring rule, exclusions)`` — all
    sessions of a group share one selection; ``primaries`` maps each group
    to its scoring function; ``singles`` are sessions whose selector has
    no batched form (they fall back to their own ``select`` over the
    primed cache); ``finished`` are sessions the scan revealed to be done.
    """

    groups: dict[tuple, list[SessionState]] = field(default_factory=dict)
    primaries: dict[tuple, object] = field(default_factory=dict)
    singles: list[SessionState] = field(default_factory=list)
    finished: list[SessionState] = field(default_factory=list)


def group_for_scoring(
    states: Sequence[SessionState],
    stats_by_mask: Mapping[int, tuple[Sequence[int], Sequence[int]]],
) -> ScoringPlan:
    """Partition scanned sessions for batched scoring.

    Also advances each state's lineage to the entities of the mask just
    scanned (the restriction for its *next* scan).  The ``finished`` check
    is a cache hit — the scan was just primed — and catches e.g. sessions
    whose informative entities are all excluded.
    """
    plan = ScoringPlan()
    for state in states:
        s = state.session
        mask = s.candidates_mask
        state.lineage = stats_by_mask[mask][0]
        if s.finished:
            plan.finished.append(state)
            continue
        try:
            primary = s.selector.batch_primary()
            gkey = (mask, s.selector.batch_key(), s.excluded)
        except NotImplementedError:
            plan.singles.append(state)
            continue
        plan.primaries.setdefault(gkey, primary)
        plan.groups.setdefault(gkey, []).append(state)
    return plan


class SessionRegistry:
    """Keyed session states and finished results over one collection.

    The registry is the bookkeeping layer every serving front-end shares:
    attach/spawn sessions, validate answers, retire finished sessions into
    :attr:`results`, and release cached informative stats once no active
    session still holds the mask (``release_caches=False`` to opt out).

    **Epochs.** :attr:`collection` is the *current* epoch: the one new
    sessions spawn against.  :meth:`advance_collection` moves it forward
    after a :meth:`~repro.core.collection.SetCollection.apply_delta`;
    sessions already attached stay **pinned** to the epoch they started on
    (``state.session.collection``), so their transcripts are unaffected by
    later deltas.  An old epoch object is kept alive only by its pinned
    sessions — when the last one finishes, nothing references it and it is
    garbage-collected.  Mask reference counts are kept per epoch: the same
    integer mask means different sub-collections on different epochs.
    """

    def __init__(
        self, collection: SetCollection, release_caches: bool = True
    ) -> None:
        self.collection = collection
        self._release = release_caches
        self._states: dict[Hashable, SessionState] = {}
        self._results: dict[Hashable, DiscoveryResult] = {}
        self._mask_refs: dict[tuple[int, int], int] = {}
        self._auto_key = 0

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #

    def add(
        self,
        session: DiscoverySession,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Attach a session (optionally with its answering oracle).

        Returns the session's key — auto-assigned integers unless given.
        """
        if session.collection is not self.collection:
            raise ValueError(
                "session discovers over a different collection (or a "
                "stale epoch); an engine batches masks of one shared "
                "collection — spawn() pins new sessions to the current "
                "epoch atomically"
            )
        return self._attach(session, oracle, key)

    def _attach(
        self,
        session: DiscoverySession,
        oracle: Oracle | None,
        key: Hashable | None,
    ) -> Hashable:
        if key is None:
            key = self._auto_key
            self._auto_key += 1
        if key in self._states or key in self._results:
            raise KeyError(f"duplicate session key {key!r}")
        self._states[key] = SessionState(key=key, session=session, oracle=oracle)
        return key

    def spawn(
        self,
        selector,
        initial: Iterable[Hashable] = (),
        initial_ids: Iterable[int] | None = None,
        max_questions: int | None = None,
        oracle: Oracle | None = None,
        key: Hashable | None = None,
    ) -> Hashable:
        """Construct a :class:`DiscoverySession` over the registry's
        collection and :meth:`add` it in one call.

        The current epoch is read once, so a concurrent
        :meth:`advance_collection` pins this session to either the old or
        the new epoch consistently — never a mix.
        """
        collection = self.collection
        session = DiscoverySession(
            collection,
            selector,
            initial=initial,
            initial_ids=initial_ids,
            max_questions=max_questions,
        )
        return self._attach(session, oracle=oracle, key=key)

    def advance_collection(self, collection: SetCollection) -> None:
        """Make ``collection`` the current epoch for new sessions.

        Active sessions are untouched: each stays pinned to the collection
        object it was spawned against, so in-flight scans and transcripts
        keep an exact snapshot.  The new collection must be a later epoch
        of the same lineage (same shared universe) — normally the return
        value of ``self.collection.apply_delta(batch)``.
        """
        current = self.collection
        if collection is current:
            return
        if collection.universe is not current.universe:
            raise ValueError(
                "advance_collection expects a delta-derived collection "
                "sharing the current collection's universe"
            )
        if collection.epoch <= current.epoch:
            raise ValueError(
                f"advance_collection expects a later epoch "
                f"(current {current.epoch}, got {collection.epoch})"
            )
        self.collection = collection

    def live_epochs(self) -> dict[int, int]:
        """Active-session count per pinned epoch (current epoch included).

        The current epoch is always present (possibly with 0 sessions);
        older epochs appear only while a session pinned to them is live —
        exactly the objects a delta cannot yet garbage-collect.
        """
        counts = {self.collection.epoch: 0}
        for state in self._states.values():
            epoch = state.session.collection.epoch
            counts[epoch] = counts.get(epoch, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def state(self, key: Hashable) -> SessionState:
        """The live state for ``key`` (clear ``KeyError`` otherwise)."""
        state = self._states.get(key)
        if state is not None:
            return state
        if key in self._results:
            raise KeyError(f"session {key!r} already finished")
        raise KeyError(f"unknown session key {key!r}")

    def session(self, key: Hashable) -> DiscoverySession:
        return self.state(key).session

    def active_states(self) -> list[SessionState]:
        """Live session states, in attachment order (snapshot)."""
        return list(self._states.values())

    @property
    def n_active(self) -> int:
        return len(self._states)

    @property
    def results(self) -> Mapping[Hashable, DiscoveryResult]:
        """Outcomes of every finished session, by key (grows over time)."""
        return dict(self._results)

    def result_of(self, key: Hashable) -> DiscoveryResult | None:
        """The finished result for ``key``, or ``None`` while it is live."""
        return self._results.get(key)

    def completed(self) -> dict[Hashable, DiscoveryResult]:
        """Drain and return the finished-session outcomes."""
        done = dict(self._results)
        self._results.clear()
        return done

    def pending(self) -> dict[Hashable, int]:
        """All questions currently awaiting an answer, by session key."""
        return {
            key: state.session.pending_entity
            for key, state in self._states.items()
            if state.session.pending_entity is not None
        }

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #

    def needs_question(self) -> list[SessionState]:
        """Sessions in ``NEEDS_SCAN``, retiring ``DONE`` ones on the way.

        This is the per-round sweep every front-end starts from: sessions
        with a pending question are skipped, sessions halted without a
        scan are finished for free, the rest need a batched scan.
        """
        need: list[SessionState] = []
        for state in self.active_states():
            phase = state.phase
            if phase is Phase.QUESTION_PENDING:
                continue
            if phase is Phase.DONE:
                self.finish(state)
                continue
            need.append(state)
        return need

    def answer(self, key: Hashable, value: bool | None) -> None:
        """Validate and apply a user's answer for session ``key``.

        Raises a clear ``KeyError`` for unknown or already-finished keys
        and ``ValueError`` when no question is pending (never asked, or
        answered twice before the next scheduling round) — an unknown key
        or a double answer must never corrupt another session's state.
        """
        state = self.state(key)
        if state.session.pending_entity is None:
            raise ValueError(
                f"session {key!r} has no pending question to answer "
                f"(already answered? the next scheduling round selects "
                f"a new one)"
            )
        state.session.answer(value)

    def note_visit(self, state: SessionState, mask: int) -> None:
        """Reference-count ``mask`` against ``state`` for cache release.

        Counted per ``(epoch, mask)``: the cache entries live on the
        session's pinned collection, and equal integer masks on different
        epochs are unrelated sub-collections.
        """
        if mask not in state.visited:
            state.visited.add(mask)
            ref = (state.session.collection.epoch, mask)
            self._mask_refs[ref] = self._mask_refs.get(ref, 0) + 1

    def finish(self, state: SessionState) -> DiscoveryResult:
        """Retire ``state`` into :attr:`results`, releasing its masks.

        A released mask's cached informative stats are dropped as soon as
        no other *active* session has visited the same sub-collection —
        the bounded-memory behaviour a long-lived server needs on top of
        the collection's LRU cap.
        """
        # Record the result BEFORE popping the live state: the async
        # front-end reads result_of()/state() from the event-loop thread
        # while finish() runs on the flush thread, and a pop-first order
        # opens a window where the key is in neither map (a spurious
        # "unknown session key").  Both-present is harmless — readers
        # check result_of() first.
        result = state.session.result()
        self._results[state.key] = result
        self._states.pop(state.key)
        self._release_visited(state)
        return result

    def discard(self, key: Hashable) -> bool:
        """Drop a live session without recording a result.

        The expiry path for abandoned sessions: the state is removed, its
        visited masks are released exactly as :meth:`finish` would, and no
        entry lands in :attr:`results`.  Returns whether ``key`` was live.
        """
        state = self._states.pop(key, None)
        if state is None:
            return False
        self._release_visited(state)
        return True

    def _release_visited(self, state: SessionState) -> None:
        # Release against the session's *pinned* collection: its cached
        # stats live on that epoch, not necessarily the current one.
        collection = state.session.collection
        epoch = collection.epoch
        for mask in state.visited:
            ref = (epoch, mask)
            refs = self._mask_refs.get(ref, 0) - 1
            if refs > 0:
                self._mask_refs[ref] = refs
            else:
                self._mask_refs.pop(ref, None)
                if self._release:
                    # Nobody active still holds this sub-collection: give
                    # its cached stats back before the LRU has to.
                    collection.release_cached(mask)
        state.visited = set()

    def __repr__(self) -> str:
        return (
            f"<SessionRegistry active={self.n_active} "
            f"finished={len(self._results)}>"
        )

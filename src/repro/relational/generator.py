"""Candidate CNF query generation from example tuples (Sec. 5.2.3).

Given a table, a set of example rows (members of the user's target query
output) and per-column configuration, this module generates the candidate
queries of the paper's five steps:

1. columns are grouped into categorical and numerical;
2. each numerical column has a list of *reference values*;
3. each categorical column yields **one** condition: the disjunction of the
   example tuples' distinct values on that column;
4. each numerical column yields a condition per interval of reference
   values containing all the example values: every two-sided pair
   ``(lo, hi)`` with ``lo < min`` and ``hi > max``, plus each one-sided
   bound;
5. every single-column condition is a candidate query, and so is the
   conjunction of any two conditions on *different* columns (the paper
   considers up to two columns; ``max_columns`` generalises this).

Every generated query contains the example tuples by construction; the
generator double-checks that invariant in debug builds (it is also covered
by tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .predicates import CNF, Clause, Eq, Gt, Lt
from .query import SelectQuery
from .table import Table

#: The paper's reference values for the baseball People table.
BASEBALL_REFERENCE_VALUES: dict[str, tuple[float, ...]] = {
    "height": (60, 65, 70, 75, 80),
    "weight": (120, 140, 160, 180, 200, 220, 240, 260, 280, 300),
    "birthYear": (1850, 1870, 1890, 1910, 1930, 1950, 1970, 1990),
}


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration for candidate-query generation.

    ``categorical``/``numerical`` default to the table's schema typing;
    ``reference_values`` must cover every numerical column used.
    """

    reference_values: Mapping[str, Sequence[float]]
    categorical: tuple[str, ...] = ()
    numerical: tuple[str, ...] = ()
    max_columns: int = 2

    def __post_init__(self) -> None:
        if self.max_columns < 1:
            raise ValueError("max_columns must be at least 1")
        missing = [
            c for c in self.numerical if c not in self.reference_values
        ]
        if missing:
            raise ValueError(
                f"numerical columns without reference values: {missing}"
            )


def categorical_condition(
    column: str, example_rows: Sequence[Mapping[str, object]]
) -> CNF:
    """Step 3: disjunction of the examples' distinct values on ``column``."""
    values = sorted({row[column] for row in example_rows}, key=repr)
    if not values:
        raise ValueError("no example rows given")
    return CNF([Clause(tuple(Eq(column, v) for v in values))])


def numerical_conditions(
    column: str,
    references: Sequence[float],
    example_rows: Sequence[Mapping[str, object]],
) -> list[CNF]:
    """Step 4: interval conditions containing every example value.

    Bounds are strict (``>`` / ``<``), so only references strictly below
    the minimum (resp. above the maximum) example value qualify.
    """
    values = [row[column] for row in example_rows]
    if any(v is None for v in values):
        return []
    lo_candidates = sorted(r for r in references if r < min(values))
    hi_candidates = sorted(r for r in references if r > max(values))
    conditions: list[CNF] = []
    for lo, hi in itertools.product(lo_candidates, hi_candidates):
        conditions.append(CNF([Gt(column, lo), Lt(column, hi)]))
    for lo in lo_candidates:
        conditions.append(CNF([Gt(column, lo)]))
    for hi in hi_candidates:
        conditions.append(CNF([Lt(column, hi)]))
    return conditions


@dataclass
class CandidateQueries:
    """Output of the generator: per-column conditions and the final list.

    ``query_parts[i]`` records which per-column conditions query ``i`` is
    the conjunction of, as ``(column, index into conditions_by_column)``
    pairs; evaluating each condition once and intersecting row sets is far
    cheaper than evaluating every query against every row.
    """

    table: Table
    example_rows: tuple[int, ...]
    conditions_by_column: dict[str, list[CNF]] = field(default_factory=dict)
    queries: list[SelectQuery] = field(default_factory=list)
    query_parts: list[tuple[tuple[str, int], ...]] = field(
        default_factory=list
    )

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def evaluate_all(self) -> list[frozenset[int]]:
        """Output row sets for every candidate query.

        Each per-column condition is materialised once; query outputs are
        intersections of their parts.  Equivalent to calling
        ``q.evaluate()`` per query (tested), but ~#conditions/#queries
        times cheaper.
        """
        condition_rows: dict[tuple[str, int], frozenset[int]] = {}
        for column, conditions in self.conditions_by_column.items():
            for idx, condition in enumerate(conditions):
                condition_rows[(column, idx)] = SelectQuery(
                    self.table, condition
                ).evaluate()
        outputs: list[frozenset[int]] = []
        for parts in self.query_parts:
            rows: frozenset[int] | None = None
            for part in parts:
                rows = (
                    condition_rows[part]
                    if rows is None
                    else rows & condition_rows[part]
                )
            assert rows is not None, "queries have at least one condition"
            outputs.append(rows)
        return outputs


def generate_candidate_queries(
    table: Table,
    example_row_ids: Iterable[int],
    config: GeneratorConfig | None = None,
) -> CandidateQueries:
    """Steps 1-5 of Sec. 5.2.3 for the given example rows.

    Returns the per-column condition lists (useful for diagnostics) and the
    deduplicated candidate queries.
    """
    example_row_ids = tuple(example_row_ids)
    if not example_row_ids:
        raise ValueError("at least one example row id is required")
    if config is None:
        config = GeneratorConfig(
            reference_values=BASEBALL_REFERENCE_VALUES,
            categorical=tuple(table.categorical_columns()),
            numerical=tuple(table.numerical_columns()),
        )
    categorical = config.categorical or tuple(table.categorical_columns())
    numerical = config.numerical or tuple(table.numerical_columns())
    rows = [table.row(rid) for rid in example_row_ids]

    by_column: dict[str, list[CNF]] = {}
    for column in categorical:
        by_column[column] = [categorical_condition(column, rows)]
    for column in numerical:
        conditions = numerical_conditions(
            column, config.reference_values[column], rows
        )
        if conditions:
            by_column[column] = conditions

    # Step 5: single-column conditions, then conjunctions across up to
    # max_columns distinct columns.
    seen: set[CNF] = set()
    queries: list[SelectQuery] = []
    query_parts: list[tuple[tuple[str, int], ...]] = []

    def add(condition: CNF, parts: tuple[tuple[str, int], ...]) -> None:
        if condition not in seen:
            seen.add(condition)
            queries.append(SelectQuery(table, condition))
            query_parts.append(parts)

    columns = sorted(by_column)
    for width in range(1, config.max_columns + 1):
        for combo in itertools.combinations(columns, width):
            per_column = [
                [(CNF(cond.clauses), (column, idx)) for idx, cond in
                 enumerate(by_column[column])]
                for column in combo
            ]
            for chosen in itertools.product(*per_column):
                merged = CNF(
                    [cl for cond, _ in chosen for cl in cond.clauses]
                )
                add(merged, tuple(part for _, part in chosen))

    return CandidateQueries(
        table=table,
        example_rows=example_row_ids,
        conditions_by_column=by_column,
        queries=queries,
        query_parts=query_parts,
    )

"""Selection queries: CNF predicates applied to a table.

A :class:`SelectQuery` is the paper's candidate-query object: evaluating it
materialises the set of row ids it selects, which is exactly the *set* the
discovery algorithms operate on ("our query discovery is done based on the
query output on a sample database", Sec. 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .predicates import CNF, Predicate
from .table import Table


@dataclass(frozen=True)
class SelectQuery:
    """``SELECT * FROM table WHERE cnf`` over one table."""

    table: Table
    condition: CNF

    def evaluate(self) -> frozenset[int]:
        """Row ids selected by the condition."""
        condition = self.condition
        return frozenset(
            row_id
            for row_id, row in self.table.rows()
            if condition.matches(row)
        )

    def cardinality(self) -> int:
        """Number of selected rows (no materialisation retained)."""
        condition = self.condition
        return sum(
            1 for _, row in self.table.rows() if condition.matches(row)
        )

    def contains_rows(self, row_ids: "frozenset[int] | set[int]") -> bool:
        """True when every given row satisfies the condition."""
        condition = self.condition
        return all(
            condition.matches(self.table.row(rid)) for rid in row_ids
        )

    def sql(self) -> str:
        """SQL-ish rendering, e.g. for experiment reports."""
        return (
            f"SELECT * FROM {self.table.name} "
            f"WHERE {self.condition.describe()}"
        )

    def conjoin(self, extra: Predicate) -> "SelectQuery":
        """A new query with an extra conjunct."""
        return SelectQuery(self.table, self.condition.conjoin(extra))

    def __repr__(self) -> str:
        return f"<SelectQuery {self.condition.describe()}>"

"""Mini relational engine and the baseball substrate (Sec. 5.2.3)."""

from .baseball import (
    DEFAULT_N_PLAYERS,
    PAPER_CANDIDATE_COUNTS,
    PAPER_TARGET_SIZES,
    PEOPLE_COLUMNS,
    QUERY_COLUMNS,
    generate_people_table,
    target_queries,
)
from .generator import (
    BASEBALL_REFERENCE_VALUES,
    CandidateQueries,
    GeneratorConfig,
    categorical_condition,
    generate_candidate_queries,
    numerical_conditions,
)
from .predicates import CNF, Clause, Eq, Gt, Lt, Predicate, interval
from .query import SelectQuery
from .table import Column, ColumnKind, Table

__all__ = [
    "DEFAULT_N_PLAYERS",
    "PAPER_CANDIDATE_COUNTS",
    "PAPER_TARGET_SIZES",
    "PEOPLE_COLUMNS",
    "QUERY_COLUMNS",
    "generate_people_table",
    "target_queries",
    "BASEBALL_REFERENCE_VALUES",
    "CandidateQueries",
    "GeneratorConfig",
    "categorical_condition",
    "generate_candidate_queries",
    "numerical_conditions",
    "CNF",
    "Clause",
    "Eq",
    "Gt",
    "Lt",
    "Predicate",
    "interval",
    "SelectQuery",
    "Column",
    "ColumnKind",
    "Table",
]

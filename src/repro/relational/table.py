"""A minimal in-memory relational table.

The query-discovery experiment (Sec. 5.2.3) runs CNF selection queries over
a single ``People`` table; this module supplies exactly that substrate: a
typed, immutable, row-id-addressable table.  It is deliberately small — no
joins, no indices beyond per-column value grouping — because the paper's
candidate queries are single-table selections.

Rows are addressed by dense integer row ids (0..n-1), which double as the
*entities* of the set-discovery formulation: each candidate query
materialises to the set of row ids it selects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence


class ColumnKind(enum.Enum):
    """Column typing used by the candidate-query generator (Sec. 5.2.3,
    step 1): categorical columns get equality disjunctions, numerical
    columns get reference-value intervals."""

    CATEGORICAL = "categorical"
    NUMERICAL = "numerical"


@dataclass(frozen=True)
class Column:
    """Schema entry: a named, typed column."""

    name: str
    kind: ColumnKind

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column names must be non-empty")


class Table:
    """An immutable table with named, typed columns and dense row ids."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        rows: Iterable[Mapping[str, Any]],
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, Column] = {c.name: c for c in columns}
        materialised: list[tuple[Any, ...]] = []
        for rownum, row in enumerate(rows):
            missing = [n for n in names if n not in row]
            if missing:
                raise ValueError(
                    f"row {rownum} is missing columns {missing}"
                )
            materialised.append(tuple(row[n] for n in names))
        self._rows: tuple[tuple[Any, ...], ...] = tuple(materialised)
        self._index: dict[str, int] = {n: i for i, n in enumerate(names)}

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {list(self._by_name)}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def categorical_columns(self) -> list[str]:
        return [
            c.name for c in self.columns if c.kind is ColumnKind.CATEGORICAL
        ]

    def numerical_columns(self) -> list[str]:
        return [
            c.name for c in self.columns if c.kind is ColumnKind.NUMERICAL
        ]

    # ------------------------------------------------------------------ #
    # Rows
    # ------------------------------------------------------------------ #

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def value(self, row_id: int, column: str) -> Any:
        return self._rows[row_id][self._index[column]]

    def row(self, row_id: int) -> dict[str, Any]:
        values = self._rows[row_id]
        return {name: values[i] for name, i in self._index.items()}

    def rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for row_id in range(len(self._rows)):
            yield row_id, self.row(row_id)

    def column_values(self, column: str) -> list[Any]:
        idx = self._index[column]
        return [row[idx] for row in self._rows]

    def distinct_values(self, column: str) -> set[Any]:
        return set(self.column_values(column))

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, {len(self.columns)} columns, "
            f"{self.n_rows} rows)"
        )

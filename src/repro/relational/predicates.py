"""Selection predicates and CNF formulas over table rows.

The paper's candidate queries (Sec. 5.2.3) are CNF selections: conjunctions
of clauses, where a clause is either a disjunction of equalities on one
categorical column (step 3) or a comparison interval on one numerical
column (step 4).  The classes here model exactly that shape, with
``matches(row) -> bool`` evaluation and SQL-ish rendering for reports.

Predicates are immutable, hashable and comparable so generated candidate
queries can be deduplicated structurally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping


class Predicate(ABC):
    """A boolean condition over a row (mapping column name -> value)."""

    @abstractmethod
    def matches(self, row: Mapping[str, Any]) -> bool:
        """Evaluate against a row; missing columns raise ``KeyError``."""

    @abstractmethod
    def describe(self) -> str:
        """SQL-ish rendering, e.g. ``birthCity = 'Chicago'``."""

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """Columns referenced by this predicate."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


class Eq(Predicate):
    """``column = value``."""

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: Any) -> None:
        self.column = column
        self.value = value

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] == self.value

    def describe(self) -> str:
        return f"{self.column} = {self.value!r}"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Eq)
            and self.column == other.column
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Eq", self.column, self.value))


class Gt(Predicate):
    """``column > value`` (numerical)."""

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: float) -> None:
        self.column = column
        self.value = value

    def matches(self, row: Mapping[str, Any]) -> bool:
        cell = row[self.column]
        return cell is not None and cell > self.value

    def describe(self) -> str:
        return f"{self.column} > {self.value}"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Gt)
            and self.column == other.column
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Gt", self.column, self.value))


class Lt(Predicate):
    """``column < value`` (numerical)."""

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: float) -> None:
        self.column = column
        self.value = value

    def matches(self, row: Mapping[str, Any]) -> bool:
        cell = row[self.column]
        return cell is not None and cell < self.value

    def describe(self) -> str:
        return f"{self.column} < {self.value}"

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lt)
            and self.column == other.column
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Lt", self.column, self.value))


class Clause(Predicate):
    """A disjunction of predicates over a single column (CNF clause).

    Step 3 of the paper builds ``birthCity = 'Chicago' OR birthCity =
    'Seattle'`` from the example tuples; an interval like ``height > 60 AND
    height < 75`` is represented as two single-literal clauses in the
    conjunction instead, keeping the formula CNF.
    """

    __slots__ = ("literals",)

    def __init__(self, literals: "tuple[Predicate, ...] | list[Predicate]") -> None:
        literals = tuple(literals)
        if not literals:
            raise ValueError("a clause needs at least one literal")
        cols = {c for lit in literals for c in lit.columns()}
        if len(cols) != 1:
            raise ValueError(
                f"clause literals must share one column, got {sorted(cols)}"
            )
        # Canonical order makes structurally equal clauses compare equal.
        self.literals = tuple(
            sorted(literals, key=lambda lit: lit.describe())
        )

    def matches(self, row: Mapping[str, Any]) -> bool:
        return any(lit.matches(row) for lit in self.literals)

    def describe(self) -> str:
        if len(self.literals) == 1:
            return self.literals[0].describe()
        inner = " OR ".join(lit.describe() for lit in self.literals)
        return f"({inner})"

    def columns(self) -> frozenset[str]:
        return self.literals[0].columns()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Clause) and self.literals == other.literals

    def __hash__(self) -> int:
        return hash(("Clause", self.literals))


class CNF(Predicate):
    """A conjunction of clauses — the paper's query shape.

    The empty conjunction is valid and selects every row (used for the
    degenerate "no condition" case).
    """

    __slots__ = ("clauses",)

    def __init__(
        self, clauses: "tuple[Predicate, ...] | list[Predicate]" = ()
    ) -> None:
        normalised: list[Predicate] = []
        for clause in clauses:
            if isinstance(clause, CNF):
                normalised.extend(clause.clauses)
            elif isinstance(clause, Clause):
                normalised.append(clause)
            else:
                normalised.append(Clause((clause,)))
        self.clauses = tuple(
            sorted(normalised, key=lambda c: c.describe())
        )

    def matches(self, row: Mapping[str, Any]) -> bool:
        return all(clause.matches(row) for clause in self.clauses)

    def describe(self) -> str:
        if not self.clauses:
            return "TRUE"
        return " AND ".join(clause.describe() for clause in self.clauses)

    def columns(self) -> frozenset[str]:
        cols: set[str] = set()
        for clause in self.clauses:
            cols |= clause.columns()
        return frozenset(cols)

    def conjoin(self, other: "Predicate") -> "CNF":
        """A new CNF with ``other``'s clauses appended."""
        return CNF((*self.clauses, other))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CNF) and self.clauses == other.clauses

    def __hash__(self) -> int:
        return hash(("CNF", self.clauses))


def interval(column: str, low: float | None, high: float | None) -> CNF:
    """CNF for ``low < column < high``; either bound may be open."""
    clauses: list[Predicate] = []
    if low is not None:
        clauses.append(Gt(column, low))
    if high is not None:
        clauses.append(Lt(column, high))
    if not clauses:
        raise ValueError("an interval needs at least one bound")
    return CNF(clauses)

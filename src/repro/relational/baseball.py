"""Synthetic baseball ``People`` table — substitute for the Lahman database.

The paper's query-discovery experiment (Sec. 5.2.3) uses the People table
of the Lahman baseball database [22]: 20,185 players with name, birth,
height/weight and handedness attributes.  The real database is not
shipped here, so this module generates a seeded synthetic table with the
same ten query columns and realistic marginal distributions:

* USA-dominant ``birthCountry`` with a tail of baseball-relevant countries;
* ``birthState``/``birthCity`` correlated with the country (including the
  real big cities the paper's target queries mention, e.g. Los Angeles);
* ``birthYear`` increasing over 1850-1996 (more recent players),
  ``birthMonth``/``birthDay`` near-uniform;
* ``height`` ~ N(72.2, 2.6) inches, ``weight`` correlated with height with
  a heavy upper tail (so the tall-and-heavy target T6 selects tens of
  rows, as in the paper);
* ``bats``/``throws`` correlated handedness (left-handed batters who throw
  right are common; right-handed batters who throw left are rare).

The paper's seven target queries (Table 2) are defined verbatim in
:func:`target_queries`.  Absolute result sizes differ from the paper's
(different underlying population) but stay in the same regime — hundreds
to thousands for T1-T4, tens for T5-T7 — which is what the discovery
experiments depend on.
"""

from __future__ import annotations

import random

from .predicates import CNF, Eq, Gt, Lt
from .query import SelectQuery
from .table import Column, ColumnKind, Table

#: Paper row count for the People table.
DEFAULT_N_PLAYERS = 20_185

_COUNTRIES = (
    ("USA", 0.868),
    ("D.R.", 0.040),
    ("Venezuela", 0.020),
    ("P.R.", 0.016),
    ("Canada", 0.015),
    ("Cuba", 0.012),
    ("Mexico", 0.008),
    ("Japan", 0.006),
    ("Panama", 0.005),
    ("Australia", 0.004),
    ("Colombia", 0.003),
    ("South Korea", 0.003),
)

_USA_STATES = (
    ("CA", 0.125),
    ("TX", 0.070),
    ("NY", 0.065),
    ("PA", 0.060),
    ("OH", 0.052),
    ("IL", 0.050),
    ("FL", 0.042),
    ("MO", 0.033),
    ("MA", 0.031),
    ("NC", 0.028),
    ("GA", 0.027),
    ("NJ", 0.026),
    ("MI", 0.025),
    ("AL", 0.023),
    ("TN", 0.021),
    ("VA", 0.020),
    ("WA", 0.018),
    ("KY", 0.018),
    ("IN", 0.018),
    ("OK", 0.017),
)

#: A few real anchor cities per state (first entry is the big one), the
#: rest of the mass goes to synthetic towns.
_ANCHOR_CITIES = {
    "CA": ("Los Angeles", 0.16, ("San Francisco", "San Diego", "Oakland")),
    "IL": ("Chicago", 0.30, ("Springfield", "Peoria")),
    "NY": ("New York", 0.28, ("Brooklyn", "Buffalo", "Rochester")),
    "TX": ("Houston", 0.14, ("Dallas", "San Antonio", "Austin")),
    "PA": ("Philadelphia", 0.22, ("Pittsburgh", "Erie")),
    "WA": ("Seattle", 0.25, ("Tacoma", "Spokane")),
    "MO": ("St. Louis", 0.25, ("Kansas City",)),
    "MA": ("Boston", 0.28, ("Worcester", "Springfield")),
}


def _weighted_choice(rng: random.Random, pairs) -> str:
    values = [v for v, _ in pairs]
    weights = [w for _, w in pairs]
    return rng.choices(values, weights=weights)[0]


def _birth_year(rng: random.Random) -> int:
    """Linear-increasing density over 1850..1996."""
    lo, hi = 1850, 1996
    # Inverse-CDF of a linear density on [lo, hi].
    u = rng.random()
    span = hi - lo
    return lo + int(span * (u**0.5))


def _height(rng: random.Random) -> int:
    h = rng.gauss(72.2, 2.6)
    return int(round(min(max(h, 60.0), 83.0)))


def _weight(rng: random.Random, height: int) -> int:
    if rng.random() < 0.05:
        w = rng.gauss(4.2 * height - 80.0, 25.0)  # bulky tail
    else:
        w = rng.gauss(4.2 * height - 110.0, 16.0)
    return int(round(min(max(w, 120.0), 320.0)))


def _handedness(rng: random.Random) -> tuple[str, str]:
    bats = _weighted_choice(
        rng, (("R", 0.67), ("L", 0.27), ("B", 0.06))
    )
    if bats == "L":
        throws = "R" if rng.random() < 0.45 else "L"
    elif bats == "B":
        throws = "R" if rng.random() < 0.85 else "L"
    else:
        throws = "R" if rng.random() < 0.97 else "L"
    return bats, throws


def _birth_place(rng: random.Random) -> tuple[str, str, str]:
    country = _weighted_choice(rng, _COUNTRIES)
    if country == "USA":
        remaining = 1.0 - sum(w for _, w in _USA_STATES)
        state = _weighted_choice(
            rng, (*_USA_STATES, ("OTHER", max(remaining, 0.0)))
        )
        if state == "OTHER":
            state = f"ST{rng.randrange(30)}"
        anchor = _ANCHOR_CITIES.get(state)
        if anchor is not None:
            big, share, others = anchor
            roll = rng.random()
            if roll < share:
                city = big
            elif roll < share + 0.2 and others:
                city = rng.choice(others)
            else:
                city = f"{state} Town {rng.randrange(40)}"
        else:
            city = f"{state} Town {rng.randrange(40)}"
    else:
        state = f"{country} Region {rng.randrange(8)}"
        city = f"{country} City {rng.randrange(25)}"
    return country, state, city


PEOPLE_COLUMNS = (
    Column("playerID", ColumnKind.CATEGORICAL),
    Column("birthCountry", ColumnKind.CATEGORICAL),
    Column("birthState", ColumnKind.CATEGORICAL),
    Column("birthCity", ColumnKind.CATEGORICAL),
    Column("birthYear", ColumnKind.NUMERICAL),
    Column("birthMonth", ColumnKind.CATEGORICAL),
    Column("birthDay", ColumnKind.CATEGORICAL),
    Column("height", ColumnKind.NUMERICAL),
    Column("weight", ColumnKind.NUMERICAL),
    Column("bats", ColumnKind.CATEGORICAL),
    Column("throws", ColumnKind.CATEGORICAL),
)

#: Query columns the paper uses (playerID excluded — it is the row's name).
QUERY_COLUMNS = tuple(c.name for c in PEOPLE_COLUMNS[1:])


def generate_people_table(
    n_players: int = DEFAULT_N_PLAYERS, seed: int = 20185
) -> Table:
    """Generate the synthetic People table (deterministic per seed)."""
    if n_players < 1:
        raise ValueError("n_players must be positive")
    rng = random.Random(seed)
    rows = []
    for i in range(n_players):
        country, state, city = _birth_place(rng)
        height = _height(rng)
        bats, throws = _handedness(rng)
        rows.append(
            {
                "playerID": f"player{i:05d}",
                "birthCountry": country,
                "birthState": state,
                "birthCity": city,
                "birthYear": _birth_year(rng),
                "birthMonth": rng.randint(1, 12),
                "birthDay": rng.randint(1, 28),
                "height": height,
                "weight": _weight(rng, height),
                "bats": bats,
                "throws": throws,
            }
        )
    return Table("People", PEOPLE_COLUMNS, rows)


def target_queries(table: Table) -> dict[str, SelectQuery]:
    """The paper's Table 2 target queries T1-T7, verbatim."""
    return {
        "T1": SelectQuery(
            table, CNF([Eq("birthCountry", "USA"), Gt("birthYear", 1990)])
        ),
        "T2": SelectQuery(
            table,
            CNF(
                [
                    Eq("birthCity", "Los Angeles"),
                    Gt("height", 70),
                    Lt("height", 80),
                ]
            ),
        ),
        "T3": SelectQuery(table, CNF([Eq("bats", "L"), Eq("throws", "R")])),
        "T4": SelectQuery(
            table, CNF([Eq("birthCountry", "USA"), Eq("bats", "B")])
        ),
        "T5": SelectQuery(
            table, CNF([Eq("birthMonth", 12), Eq("birthDay", 25)])
        ),
        "T6": SelectQuery(
            table, CNF([Gt("height", 75), Gt("weight", 260)])
        ),
        "T7": SelectQuery(
            table, CNF([Lt("height", 65), Lt("weight", 160)])
        ),
    }

#: Paper-reported output sizes (Table 2), for side-by-side reporting.
PAPER_TARGET_SIZES = {
    "T1": 892,
    "T2": 201,
    "T3": 2179,
    "T4": 939,
    "T5": 65,
    "T6": 49,
    "T7": 26,
}

#: Paper-reported candidate-query counts (Table 3).
PAPER_CANDIDATE_COUNTS = {
    "T1": 776,
    "T2": 987,
    "T3": 940,
    "T4": 916,
    "T5": 1339,
    "T6": 600,
    "T7": 1189,
}

"""Exact optimal decision trees for small collections.

Constructing an optimal binary decision tree is NP-complete (Hyafil &
Rivest [17]) and hard to approximate (Sieling [31]), so no polynomial exact
algorithm exists; for *small* collections, however, a memoised recursion
over sub-collection bitmasks is perfectly feasible and serves two purposes
in this reproduction:

* ground truth for the test suite (k-LP with ``k >= height of an optimal
  tree`` must reach the optimal cost, Sec. 4.4.1);
* the optimality-gap numbers of Sec. 5.3.2 ("the average difference in the
  average number of questions with optimal solution for InfoGain is only
  about 0.048").

The recursion is exact: memo entries are always fully explored values, and
the only pruning used is against the *current incumbent* with admissible
lower bounds (minimal external path length for AD, ``ceil(log2 n)`` for H),
which can never discard an optimal split.  Distinct entities inducing the
same bipartition are collapsed to one representative, which shrinks the
branching factor without affecting cost.

The search space is exponential in the number of sets; a guard rejects
collections above ``max_sets`` (default 16) rather than silently running
for hours.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bitmask import lowest_bit, popcount, single_bit
from .bounds import AD, CostMetric, ceil_log2, min_external_path_length
from .collection import SetCollection
from .tree import DecisionTree


class CollectionTooLargeError(ValueError):
    """Raised when an exact search is requested on too many sets."""


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of an exact search."""

    tree: DecisionTree
    cost: float
    metric: str
    #: number of distinct sub-collections fully evaluated
    explored: int


def _dedup_splits(
    collection: SetCollection, mask: int
) -> list[tuple[int, int, int]]:
    """Distinct ``(entity, C+ mask, |C+|)`` splits of ``mask``.

    Different entities inducing the same bipartition are interchangeable
    for cost purposes, so only one representative is kept; complementary
    splits (C+, C-) vs (C-, C+) are also collapsed.  Sorted most-even
    first so the first incumbent is strong.
    """
    seen: set[int] = set()
    splits: list[tuple[int, int, int]] = []
    for eid, cnt in collection.informative_entities(mask):
        pos = mask & collection.entity_mask(eid)
        canon = min(pos, mask & ~pos)
        if canon in seen:
            continue
        seen.add(canon)
        splits.append((eid, pos, cnt))
    n = popcount(mask)
    splits.sort(key=lambda t: abs(2 * t[2] - n))
    return splits


# --------------------------------------------------------------------- #
# AD: minimise the sum of leaf depths (integer-exact)
# --------------------------------------------------------------------- #


def _optimal_depth_sum(
    collection: SetCollection,
    mask: int,
    memo: dict[int, tuple[int, int | None]],
    counter: list[int],
) -> int:
    """Exact minimal sum of leaf depths for the sub-collection ``mask``."""
    if single_bit(mask):
        return 0
    hit = memo.get(mask)
    if hit is not None:
        return hit[0]
    counter[0] += 1
    n = popcount(mask)
    floor = min_external_path_length(n)
    best: int | None = None
    best_entity: int | None = None
    for eid, pos, cnt in _dedup_splits(collection, mask):
        n1, n2 = cnt, n - cnt
        # Splitting adds one level for all n leaves below this node.
        optimistic = (
            n + min_external_path_length(n1) + min_external_path_length(n2)
        )
        if best is not None and optimistic >= best:
            continue
        left = _optimal_depth_sum(collection, pos, memo, counter)
        if best is not None and n + left + min_external_path_length(n2) >= best:
            continue
        right = _optimal_depth_sum(collection, mask & ~pos, memo, counter)
        total = n + left + right
        if best is None or total < best:
            best = total
            best_entity = eid
            if best == floor:
                break  # matches the admissible bound: provably optimal
    assert best is not None and best_entity is not None, (
        "unique sets always admit an informative split"
    )
    memo[mask] = (best, best_entity)
    return best


# --------------------------------------------------------------------- #
# H: minimise the height
# --------------------------------------------------------------------- #


def _optimal_height(
    collection: SetCollection,
    mask: int,
    memo: dict[int, tuple[int, int | None]],
    counter: list[int],
) -> int:
    """Exact minimal height for the sub-collection ``mask``."""
    if single_bit(mask):
        return 0
    hit = memo.get(mask)
    if hit is not None:
        return hit[0]
    counter[0] += 1
    n = popcount(mask)
    floor = ceil_log2(n)
    best: int | None = None
    best_entity: int | None = None
    for eid, pos, cnt in _dedup_splits(collection, mask):
        n1, n2 = cnt, n - cnt
        optimistic = 1 + max(ceil_log2(n1), ceil_log2(n2))
        if best is not None and optimistic >= best:
            continue
        left = _optimal_height(collection, pos, memo, counter)
        if best is not None and 1 + max(left, ceil_log2(n2)) >= best:
            continue
        right = _optimal_height(collection, mask & ~pos, memo, counter)
        height = 1 + max(left, right)
        if best is None or height < best:
            best = height
            best_entity = eid
            if best == floor:
                break
    assert best is not None and best_entity is not None
    memo[mask] = (best, best_entity)
    return best


def _extract_tree(
    collection: SetCollection,
    mask: int,
    solve,
    memo: dict[int, tuple[int, int | None]],
    counter: list[int],
) -> DecisionTree:
    """Rebuild the optimal tree from memoised split choices.

    Incumbent pruning means a child's choice may be missing from the memo
    (its exact value was never needed); such children are re-solved on
    demand, which is cheap because the memo is already warm.
    """
    if single_bit(mask):
        return DecisionTree.leaf(lowest_bit(mask))
    if mask not in memo:
        solve(collection, mask, memo, counter)
    entity = memo[mask][1]
    assert entity is not None
    pos, neg = collection.partition(mask, entity)
    return DecisionTree.internal(
        entity,
        _extract_tree(collection, pos, solve, memo, counter),
        _extract_tree(collection, neg, solve, memo, counter),
    )


def optimal_tree(
    collection: SetCollection,
    metric: CostMetric = AD,
    mask: int | None = None,
    max_sets: int = 16,
) -> OptimalResult:
    """Exact minimum-cost tree for ``mask`` under ``metric``.

    Raises :class:`CollectionTooLargeError` beyond ``max_sets`` sets.
    """
    if mask is None:
        mask = collection.full_mask
    if mask == 0:
        raise ValueError("cannot optimise an empty sub-collection")
    n = popcount(mask)
    if n > max_sets:
        raise CollectionTooLargeError(
            f"exact optimal search limited to {max_sets} sets; got {n} "
            f"(raise max_sets explicitly if you accept the cost)"
        )
    if n == 1:
        return OptimalResult(
            DecisionTree.leaf(lowest_bit(mask)), 0.0, metric.name, 0
        )
    memo: dict[int, tuple[int, int | None]] = {}
    counter = [0]
    if metric.name == "AD":
        total = _optimal_depth_sum(collection, mask, memo, counter)
        cost = total / n
        solve = _optimal_depth_sum
    elif metric.name == "H":
        cost = float(_optimal_height(collection, mask, memo, counter))
        solve = _optimal_height
    else:
        raise ValueError(f"unsupported metric {metric!r}")
    tree = _extract_tree(collection, mask, solve, memo, counter)
    return OptimalResult(tree, cost, metric.name, counter[0])


def optimal_cost(
    collection: SetCollection,
    metric: CostMetric = AD,
    mask: int | None = None,
    max_sets: int = 16,
) -> float:
    """Exact minimum cost (see :func:`optimal_tree`)."""
    return optimal_tree(collection, metric, mask, max_sets).cost

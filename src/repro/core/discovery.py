"""Interactive set discovery (Algorithm 2, Sec. 4.5).

A :class:`DiscoverySession` drives the question/answer loop: starting from
the candidate sub-collection (all supersets of the user's initial example
set ``I``), it repeatedly picks the best entity via the configured selection
strategy, asks the user a membership question, and narrows the candidates
with the answer, until one set remains or a halt condition fires.

Two usage styles are supported:

* **pull** — call :meth:`DiscoverySession.next_question` and
  :meth:`DiscoverySession.answer` yourself (e.g. a UI event loop);
* **push** — :meth:`DiscoverySession.run` with an oracle object answering
  every question (the paper's simulated-user evaluation protocol).

"Don't know" answers (Sec. 6, *Unanswered questions*) are first-class: the
entity is excluded from further selection and the candidate sub-collection
is left untouched, exactly as the paper prescribes.  A session whose
remaining entities are all excluded ends with more than one candidate.

A session can also navigate a precomputed tree (Sec. 4.5, offline
construction) via :class:`TreeDiscoverySession`: follow one root-to-leaf
path with no selection cost at question time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from .bitmask import popcount
from .collection import SetCollection
from .selection import EntitySelector, NoInformativeEntityError
from .tree import DecisionTree

#: An oracle answers a membership question about an entity id with
#: True (in the target set), False (not in it), or None ("don't know").
Oracle = Callable[[int], "bool | None"]


@dataclass(frozen=True)
class Interaction:
    """One question/answer exchange of a session transcript."""

    entity: int
    answer: bool | None
    candidates_before: int
    candidates_after: int


@dataclass
class DiscoveryResult:
    """Outcome of a completed discovery run."""

    #: indices of the sets consistent with all answers (1 on full success)
    candidates: list[int]
    #: full transcript, in question order
    transcript: list[Interaction] = field(default_factory=list)
    #: wall-clock seconds spent selecting questions and filtering (the
    #: paper's *discovery time*; excludes the oracle's own answer time)
    seconds: float = 0.0

    @property
    def n_questions(self) -> int:
        """Questions that received a yes/no answer (don't-knows excluded)."""
        return sum(1 for i in self.transcript if i.answer is not None)

    @property
    def n_unanswered(self) -> int:
        return sum(1 for i in self.transcript if i.answer is None)

    @property
    def resolved(self) -> bool:
        """True when a single candidate set remains."""
        return len(self.candidates) == 1

    @property
    def target(self) -> int:
        """The discovered set index; raises unless :attr:`resolved`."""
        if not self.resolved:
            raise ValueError(
                f"discovery ended with {len(self.candidates)} candidates"
            )
        return self.candidates[0]


class DiscoverySession:
    """Algorithm 2 as a stateful session.

    Parameters
    ----------
    collection:
        The closed collection ``C``.
    selector:
        Entity-selection strategy ``Υ``.
    initial:
        The user's initial example set ``I`` (entity labels).  Candidates
        are the sets containing all of ``I`` (lines 2-4 of Algorithm 2).
    initial_ids:
        Alternative to ``initial`` with already-interned entity ids.
    max_questions:
        Optional halt condition ``Γ``: stop after this many answered
        questions even if several candidates remain.
    """

    def __init__(
        self,
        collection: SetCollection,
        selector: EntitySelector,
        initial: Iterable[Hashable] = (),
        initial_ids: Iterable[int] | None = None,
        max_questions: int | None = None,
    ) -> None:
        self.collection = collection
        self.selector = selector
        self.max_questions = max_questions
        if initial_ids is not None:
            self._mask = collection.supersets_of_ids(initial_ids)
        else:
            self._mask = collection.supersets_of(initial)
        self._excluded: set[int] = set()
        self._transcript: list[Interaction] = []
        self._pending: int | None = None
        self._seconds = 0.0
        self._n_candidates = popcount(self._mask)

    # ------------------------------------------------------------------ #
    # State inspection
    # ------------------------------------------------------------------ #

    @property
    def candidates_mask(self) -> int:
        """Bitmask of the sets consistent with all answers so far."""
        return self._mask

    @property
    def candidates(self) -> list[int]:
        return list(self.collection.sets_in(self._mask))

    @property
    def n_candidates(self) -> int:
        return self._n_candidates

    @property
    def transcript(self) -> list[Interaction]:
        return list(self._transcript)

    @property
    def n_questions(self) -> int:
        return sum(1 for i in self._transcript if i.answer is not None)

    @property
    def pending_entity(self) -> int | None:
        """The selected-but-unanswered question, if any."""
        return self._pending

    @property
    def excluded(self) -> frozenset[int]:
        """Entities removed from selection by "don't know" answers."""
        return frozenset(self._excluded)

    @property
    def budget_exhausted(self) -> bool:
        """True once ``max_questions`` answered questions have been spent."""
        return (
            self.max_questions is not None
            and self.n_questions >= self.max_questions
        )

    @property
    def halted_without_scan(self) -> bool:
        """Halt conditions decidable *without* an informative scan.

        A single remaining candidate and an exhausted question budget end a
        session for free; the third halt condition (no informative entity
        left) needs a kernel scan.  Schedulers use this to retire sessions
        before paying for a batched scan (:mod:`repro.serve.state`).
        """
        return self._n_candidates <= 1 or self.budget_exhausted

    @property
    def finished(self) -> bool:
        """True when the loop of Algorithm 2 would exit."""
        if self.halted_without_scan:
            return True
        return not self._has_askable_entity()

    def _has_askable_entity(self) -> bool:
        # A pending question is by construction informative and not
        # excluded for the current mask (the mask cannot have changed since
        # it was selected), so don't re-scan while one awaits its answer.
        if self._pending is not None:
            return True
        # The informative scan is real discovery-time work — the first scan
        # of every fresh sub-collection happens right here (the selector
        # afterwards hits the per-mask cache), so it must be timed or
        # DiscoveryResult.seconds undercounts the paper's metric.
        start = time.perf_counter()
        try:
            eids, _ = self.collection.informative_stats(self._mask)
        except ValueError:
            return False
        finally:
            self._seconds += time.perf_counter() - start
        if not self._excluded:
            return len(eids) > 0
        excluded = self._excluded
        if hasattr(eids, "tolist"):
            eids = eids.tolist()
        return any(e not in excluded for e in eids)

    # ------------------------------------------------------------------ #
    # Pull-style API
    # ------------------------------------------------------------------ #

    def next_question(self) -> int:
        """Select and return the entity id to ask about next (line 6).

        Idempotent until :meth:`answer` is called.  Raises ``RuntimeError``
        once the session is finished.
        """
        if self._pending is not None:
            return self._pending
        if self.finished:
            raise RuntimeError("session is finished; no further questions")
        start = time.perf_counter()
        entity = self.selector.select(
            self.collection, self._mask, exclude=self._excluded
        )
        self._seconds += time.perf_counter() - start
        self._pending = entity
        return entity

    def next_question_label(self) -> Hashable:
        """As :meth:`next_question`, translated to the entity's label."""
        return self.collection.universe.label(self.next_question())

    def push_question(self, entity: int) -> None:
        """Install an externally selected pending question.

        The multi-session engine (:mod:`repro.serve.engine`) selects
        questions for many sessions in one batched pass and pushes each
        session its result; from here on the session behaves exactly as if
        :meth:`next_question` had returned ``entity``.
        """
        if self._pending is not None:
            raise RuntimeError("a question is already pending")
        self._pending = entity

    def add_seconds(self, seconds: float) -> None:
        """Attribute externally spent selection time to this session.

        Batched engines do one kernel pass for many sessions; each
        session's share is added here so :attr:`DiscoveryResult.seconds`
        stays comparable with sequential runs.
        """
        self._seconds += seconds

    def answer(self, value: bool | None) -> None:
        """Record the user's answer to the pending question (lines 7-12).

        ``None`` means "don't know": the entity is excluded from future
        selection and the candidates are unchanged (Sec. 6).
        """
        if self._pending is None:
            raise RuntimeError("no pending question; call next_question()")
        entity = self._pending
        self._pending = None
        before = self._n_candidates
        start = time.perf_counter()
        if value is None:
            self._excluded.add(entity)
        else:
            positive, negative = self.collection.partition(self._mask, entity)
            self._mask = positive if value else negative
            self._n_candidates = popcount(self._mask)
        self._seconds += time.perf_counter() - start
        self._transcript.append(
            Interaction(entity, value, before, self._n_candidates)
        )

    # ------------------------------------------------------------------ #
    # Push-style API
    # ------------------------------------------------------------------ #

    def run(self, oracle: Oracle) -> DiscoveryResult:
        """Drive the full loop with ``oracle`` answering every question."""
        while not self.finished:
            try:
                entity = self.next_question()
            except (RuntimeError, NoInformativeEntityError):
                break
            self.answer(oracle(entity))
        return self.result()

    def result(self) -> DiscoveryResult:
        """Snapshot of the current outcome (line 13 of Algorithm 2)."""
        return DiscoveryResult(
            candidates=self.candidates,
            transcript=list(self._transcript),
            seconds=self._seconds,
        )


class TreeDiscoverySession:
    """Discovery over a precomputed tree (offline construction, Sec. 4.5).

    Follows a single root-to-leaf path, so the per-question cost is O(1)
    selection-wise.  Precomputed trees cannot honour "don't know" answers
    (the next question is fixed by the tree); callers needing that must use
    :class:`DiscoverySession`.
    """

    def __init__(self, collection: SetCollection, tree: DecisionTree) -> None:
        self.collection = collection
        self._node = tree
        self._transcript: list[Interaction] = []
        self._seconds = 0.0

    @property
    def finished(self) -> bool:
        return self._node.is_leaf

    @property
    def n_questions(self) -> int:
        return len(self._transcript)

    def next_question(self) -> int:
        if self._node.is_leaf:
            raise RuntimeError("reached a leaf; discovery is finished")
        assert self._node.entity is not None
        return self._node.entity

    def answer(self, value: bool) -> None:
        entity = self.next_question()
        start = time.perf_counter()
        node = self._node
        before_leaves = node.n_leaves
        self._node = node.pos if value else node.neg  # type: ignore[assignment]
        self._seconds += time.perf_counter() - start
        self._transcript.append(
            Interaction(entity, value, before_leaves, self._node.n_leaves)
        )

    def run(self, oracle: Oracle) -> DiscoveryResult:
        while not self.finished:
            entity = self.next_question()
            value = oracle(entity)
            if value is None:
                raise ValueError(
                    "precomputed trees cannot handle 'don't know' answers; "
                    "use DiscoverySession"
                )
            self.answer(value)
        assert self._node.set_index is not None
        return DiscoveryResult(
            candidates=[self._node.set_index],
            transcript=list(self._transcript),
            seconds=self._seconds,
        )


def discover(
    collection: SetCollection,
    selector: EntitySelector,
    oracle: Oracle,
    initial: Iterable[Hashable] = (),
    max_questions: int | None = None,
) -> DiscoveryResult:
    """One-shot convenience wrapper around :class:`DiscoverySession`."""
    session = DiscoverySession(
        collection,
        selector,
        initial=initial,
        max_questions=max_questions,
    )
    return session.run(oracle)

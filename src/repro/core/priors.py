"""Non-uniform target priors (Sec. 7, future work).

The paper's cost model assumes "all candidate sets in C being equally
likely to be the target"; Sec. 7 proposes "scenarios where the sets to be
discovered are not equally likely" as an extension.  This module supplies
that extension:

* **Weighted cost**: the expected number of questions under a prior ``p``
  is ``WAD(T) = sum_s p(s) * depth(s, T)``.
* **Lower bound**: by Shannon's noiseless-coding theorem, any binary
  decision tree satisfies ``WAD(T) >= H(p)`` (the entropy of the prior), a
  strictly tighter analogue of Lemma 3.3 — which it reduces to, up to the
  ceiling, for the uniform prior.
* **Selection**: :class:`WeightedEvenSelector` splits the *probability
  mass* (not the set count) most evenly, generalising the most-even rule;
  ties break toward even counts, then entity id.
* **Exact optimum**: :func:`weighted_optimal_cost` — a memoised exact
  search over sub-collections minimising the weighted depth sum, for
  small collections (ground truth in tests).
"""

from __future__ import annotations

import math
from typing import Collection as AbcCollection
from typing import Iterable, Mapping, Sequence

from .bitmask import iter_bits, popcount, single_bit
from .collection import SetCollection
from .selection import EntitySelector, NoInformativeEntityError, unevenness
from .tree import DecisionTree


class Prior:
    """A normalised probability distribution over the sets of a collection.

    Built from any non-negative weight per set; zero-weight sets are legal
    (they just never cost anything to mis-place).
    """

    def __init__(
        self, collection: SetCollection, weights: Sequence[float]
    ) -> None:
        if len(weights) != collection.n_sets:
            raise ValueError(
                f"need one weight per set: {collection.n_sets} sets, "
                f"{len(weights)} weights"
            )
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must have positive total mass")
        self.collection = collection
        self.p: tuple[float, ...] = tuple(w / total for w in weights)

    @classmethod
    def uniform(cls, collection: SetCollection) -> "Prior":
        return cls(collection, [1.0] * collection.n_sets)

    @classmethod
    def from_mapping(
        cls,
        collection: SetCollection,
        weights: Mapping[str, float],
        default: float = 0.0,
    ) -> "Prior":
        """Weights keyed by set name; unnamed sets get ``default``."""
        return cls(
            collection,
            [
                weights.get(collection.name_of(i), default)
                for i in range(collection.n_sets)
            ],
        )

    def mass(self, mask: int) -> float:
        """Total probability of the sets selected by ``mask``."""
        return sum(self.p[idx] for idx in iter_bits(mask))

    def entropy(self, mask: int | None = None) -> float:
        """Shannon entropy (bits) of the prior restricted to ``mask``.

        The restriction is renormalised; this is the weighted analogue of
        ``log2 n`` and the Kraft lower bound on the weighted average
        depth of any binary decision tree over those sets.
        """
        if mask is None:
            mask = self.collection.full_mask
        total = self.mass(mask)
        if total <= 0:
            return 0.0
        acc = 0.0
        for idx in iter_bits(mask):
            q = self.p[idx] / total
            if q > 0:
                acc -= q * math.log2(q)
        return acc

    def weighted_average_depth(self, tree: DecisionTree) -> float:
        """``WAD(T) = sum_s p(s) depth(s, T)`` over the tree's leaves."""
        return sum(self.p[idx] * depth for idx, depth in tree.leaves())


class WeightedEvenSelector(EntitySelector):
    """Split the probability mass most evenly (weighted most-even rule)."""

    name = "WeightedEven"

    def __init__(self, prior: Prior) -> None:
        self.prior = prior

    def select(
        self,
        collection: SetCollection,
        mask: int,
        candidates: Iterable[int] | None = None,
        exclude: AbcCollection[int] = frozenset(),
    ) -> int:
        if collection is not self.prior.collection:
            raise ValueError("prior belongs to a different collection")
        pairs = self._informative(collection, mask, candidates, exclude)
        n = popcount(mask)
        total = self.prior.mass(mask)
        best = None
        best_key = None
        for eid, cnt in pairs:
            pos_mass = self.prior.mass(mask & collection.entity_mask(eid))
            key = (
                abs(2.0 * pos_mass - total),
                unevenness(n, cnt),
                eid,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = eid
        assert best is not None
        return best


def weighted_optimal_cost(
    collection: SetCollection,
    prior: Prior,
    mask: int | None = None,
    max_sets: int = 16,
) -> float:
    """Exact minimal weighted average depth over all decision trees.

    Memoised recursion over sub-collection masks::

        W(mask) = 0                       if |mask| == 1
        W(mask) = mass(mask) + min_split [W(pos) + W(neg)]

    (every split adds one question for all the mass below it).  Exponential
    in the number of sets — guarded by ``max_sets`` like
    :func:`repro.core.optimal.optimal_tree`.
    """
    if mask is None:
        mask = collection.full_mask
    n = popcount(mask)
    if n > max_sets:
        raise ValueError(
            f"weighted optimal search limited to {max_sets} sets; got {n}"
        )
    if n == 0:
        raise ValueError("empty sub-collection")
    memo: dict[int, float] = {}

    def solve(sub: int) -> float:
        if single_bit(sub):
            return 0.0
        hit = memo.get(sub)
        if hit is not None:
            return hit
        seen: set[int] = set()
        best = math.inf
        for eid, _ in collection.informative_entities(sub):
            pos = sub & collection.entity_mask(eid)
            canon = min(pos, sub & ~pos)
            if canon in seen:
                continue
            seen.add(canon)
            value = solve(pos) + solve(sub & ~pos)
            if value < best:
                best = value
        if best is math.inf:
            raise NoInformativeEntityError(
                "unique sets always admit an informative split"
            )
        best += prior.mass(sub)
        memo[sub] = best
        return best

    return solve(mask)


def huffman_lower_bound(prior: Prior, mask: int | None = None) -> float:
    """The entropy lower bound ``H(p)`` on WAD (Kraft inequality).

    Decision trees are constrained by which splits entities can realise,
    so the true optimum can exceed this; it can never undercut it.
    """
    return prior.entropy(mask)


def expected_questions(
    prior: Prior,
    tree: DecisionTree,
) -> float:
    """Alias of :meth:`Prior.weighted_average_depth` (readability)."""
    return prior.weighted_average_depth(tree)


def skewed_prior(
    collection: SetCollection, zipf_s: float = 1.0
) -> Prior:
    """A Zipf-like prior over set indices (handy for experiments/tests)."""
    if zipf_s < 0:
        raise ValueError("zipf_s must be non-negative")
    weights = [
        1.0 / ((idx + 1) ** zipf_s) for idx in range(collection.n_sets)
    ]
    return Prior(collection, weights)

"""Decision trees for set discovery (Sec. 3).

A decision tree over a collection of ``n`` unique sets is a *full* binary
tree: every internal node carries a membership question about one entity and
has exactly two children (*yes* on the left / positive side, *no* on the
right / negative side); every leaf carries exactly one set of the collection.
A tree therefore has ``n`` leaves and ``n - 1`` internal nodes.

The class stores entity ids and set indices (ints); rendering helpers accept
the owning collection to translate back to labels.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .collection import SetCollection


class DecisionTree:
    """A node of a full binary decision tree.

    Exactly one of the two layouts is populated:

    * leaf: ``set_index`` is the collection index of the set found there;
    * internal: ``entity`` is the entity id asked about, ``pos``/``neg`` are
      the subtrees for *yes*/*no* answers.
    """

    __slots__ = ("entity", "pos", "neg", "set_index")

    def __init__(
        self,
        entity: int | None,
        pos: "DecisionTree | None",
        neg: "DecisionTree | None",
        set_index: int | None,
    ) -> None:
        internal = entity is not None
        if internal and (pos is None or neg is None or set_index is not None):
            raise ValueError("internal nodes need two children and no set")
        if not internal and (
            pos is not None or neg is not None or set_index is None
        ):
            raise ValueError("leaf nodes need a set index and no children")
        self.entity = entity
        self.pos = pos
        self.neg = neg
        self.set_index = set_index

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def leaf(cls, set_index: int) -> "DecisionTree":
        return cls(None, None, None, set_index)

    @classmethod
    def internal(
        cls, entity: int, pos: "DecisionTree", neg: "DecisionTree"
    ) -> "DecisionTree":
        return cls(entity, pos, neg, None)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def is_leaf(self) -> bool:
        return self.entity is None

    def leaves(self) -> Iterator[tuple[int, int]]:
        """Yield ``(set index, depth)`` for every leaf, left to right.

        Iterative to survive very deep (degenerate) trees.
        """
        stack: list[tuple[DecisionTree, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                yield node.set_index, depth  # type: ignore[misc]
            else:
                stack.append((node.neg, depth + 1))  # type: ignore[arg-type]
                stack.append((node.pos, depth + 1))  # type: ignore[arg-type]

    def leaf_depths(self) -> dict[int, int]:
        """Map ``set index -> depth`` (number of questions to reach it)."""
        return dict(self.leaves())

    def depths(self) -> list[int]:
        """Depths of all leaves (order unspecified)."""
        return [depth for _, depth in self.leaves()]

    @property
    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    @property
    def n_internal(self) -> int:
        return self.n_leaves - 1

    def height(self) -> int:
        """H: depth of the deepest leaf (worst-case #questions)."""
        return max(depth for _, depth in self.leaves())

    def average_depth(self) -> float:
        """AD: mean leaf depth (expected #questions, Definition 3.2)."""
        total = 0
        count = 0
        for _, depth in self.leaves():
            total += depth
            count += 1
        return total / count

    def weighted_average_depth(self, weights: dict[int, float]) -> float:
        """Prior-weighted AD (future-work extension): ``sum w(s)*depth(s)``.

        ``weights`` maps set index to a non-negative weight; they are
        normalised internally, so any positive scale works.
        """
        total = 0.0
        norm = 0.0
        for idx, depth in self.leaves():
            w = weights.get(idx, 0.0)
            total += w * depth
            norm += w
        if norm <= 0:
            raise ValueError("weights must have positive total mass")
        return total / norm

    def path_to(self, set_index: int) -> list[tuple[int, bool]]:
        """Question path from root to a leaf: ``(entity, answer)`` pairs.

        The answers are what a user looking for that set would give; raises
        ``KeyError`` if the set does not occur in this tree.
        """
        path: list[tuple[int, bool]] = []
        node = self
        while not node.is_leaf:
            assert node.entity is not None
            if node.pos is not None and set_index in (
                idx for idx, _ in node.pos.leaves()
            ):
                path.append((node.entity, True))
                node = node.pos
            else:
                path.append((node.entity, False))
                node = node.neg  # type: ignore[assignment]
        if node.set_index != set_index:
            raise KeyError(f"set {set_index} not present in this tree")
        return path

    def internal_entities(self) -> list[int]:
        """Entity ids asked anywhere in the tree (with repetitions)."""
        found: list[int] = []
        stack = [self]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                found.append(node.entity)  # type: ignore[arg-type]
                stack.append(node.pos)  # type: ignore[arg-type]
                stack.append(node.neg)  # type: ignore[arg-type]
        return found

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self, collection: SetCollection, mask: int | None = None) -> None:
        """Check the tree is a correct discovery tree for ``collection``.

        * leaves biject with the sets selected by ``mask`` (default: all);
        * at every internal node, the positive subtree holds exactly the
          member sets that contain the node's entity.

        Raises ``AssertionError`` with a description on the first violation.
        """
        if mask is None:
            mask = collection.full_mask
        expected = set(collection.sets_in(mask))
        seen = [idx for idx, _ in self.leaves()]
        assert len(seen) == len(set(seen)), "duplicate leaves"
        assert set(seen) == expected, "leaves do not biject with collection"
        stack: list[tuple[DecisionTree, int]] = [(self, mask)]
        while stack:
            node, node_mask = stack.pop()
            if node.is_leaf:
                assert node_mask == 1 << node.set_index, (
                    f"leaf for set {node.set_index} reached with mask "
                    f"{node_mask:b}"
                )
                continue
            assert node.entity is not None
            pos_mask, neg_mask = collection.partition(node_mask, node.entity)
            assert pos_mask != 0 and neg_mask != 0, (
                f"entity {node.entity} is uninformative at this node"
            )
            stack.append((node.pos, pos_mask))  # type: ignore[arg-type]
            stack.append((node.neg, neg_mask))  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe) for offline tree storage (Sec. 4.5)."""
        if self.is_leaf:
            return {"set": self.set_index}
        return {
            "entity": self.entity,
            "pos": self.pos.to_dict(),  # type: ignore[union-attr]
            "neg": self.neg.to_dict(),  # type: ignore[union-attr]
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionTree":
        if "set" in data:
            return cls.leaf(data["set"])
        return cls.internal(
            data["entity"],
            cls.from_dict(data["pos"]),
            cls.from_dict(data["neg"]),
        )

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def render(
        self,
        collection: SetCollection | None = None,
        entity_label: Callable[[int], str] | None = None,
        set_label: Callable[[int], str] | None = None,
    ) -> str:
        """ASCII rendering, one node per line, children indented.

        With a collection, entity ids and set indices are shown as labels.
        """
        if entity_label is None:
            if collection is not None:
                entity_label = lambda e: str(collection.universe.label(e))
            else:
                entity_label = lambda e: f"e{e}"
        if set_label is None:
            if collection is not None:
                set_label = collection.name_of
            else:
                set_label = lambda i: f"set#{i}"
        lines: list[str] = []

        def walk(node: DecisionTree, prefix: str, tag: str) -> None:
            if node.is_leaf:
                lines.append(f"{prefix}{tag}[{set_label(node.set_index)}]")
                return
            lines.append(f"{prefix}{tag}{entity_label(node.entity)}?")
            walk(node.pos, prefix + "  ", "+ ")  # type: ignore[arg-type]
            walk(node.neg, prefix + "  ", "- ")  # type: ignore[arg-type]

        walk(self, "", "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"DecisionTree.leaf({self.set_index})"
        return (
            f"DecisionTree(entity={self.entity}, leaves={self.n_leaves})"
        )

"""Cost-aware questions: when answers are not free.

The paper motivates saving questions with medical tests: "if the questions
are medical tests required to identify a disease, then a small reduction
even in the average number of tests could save the patients a large amount
of money and time" (Sec. 5.3.2).  When different questions cost different
amounts (a blood panel vs. an MRI), minimising the *count* of questions is
the wrong objective — the tree should minimise the expected *cost* along
the root-to-leaf path.

This module generalises the framework from unit-cost to per-entity costs:

* :class:`QuestionCosts` — a cost table over entities (default 1.0);
* :func:`expected_path_cost` / :func:`worst_path_cost` — tree costs where
  each internal node contributes its entity's cost to every leaf below it;
* :class:`CheapestEvenSelector` — a greedy rule trading split balance
  against question cost: pick the entity minimising
  ``cost(e) / InfoGain(e)`` (cost per bit of information), the standard
  generalisation of the information-gain heuristic to non-uniform costs;
* :func:`cost_optimal` — exact minimum expected path cost for small
  collections (memoised over sub-collection masks), ground truth in tests.

With all costs equal to 1 everything degenerates to the paper's AD/H
framework (tested).
"""

from __future__ import annotations

import math
from typing import Collection as AbcCollection
from typing import Hashable, Iterable, Mapping

from .bitmask import popcount, single_bit
from .collection import SetCollection
from .selection import (
    EntitySelector,
    NoInformativeEntityError,
    information_gain,
    unevenness,
)
from .tree import DecisionTree


class QuestionCosts:
    """Per-entity question costs, defaulting to 1.0 (the paper's model)."""

    def __init__(
        self,
        collection: SetCollection,
        costs: Mapping[Hashable, float] | None = None,
        default: float = 1.0,
    ) -> None:
        if default <= 0:
            raise ValueError("the default question cost must be positive")
        self.collection = collection
        self.default = default
        self._by_entity: dict[int, float] = {}
        if costs:
            for label, cost in costs.items():
                if cost <= 0:
                    raise ValueError(
                        f"question costs must be positive; "
                        f"{label!r} has {cost}"
                    )
                self._by_entity[collection.universe.intern(label)] = float(
                    cost
                )

    def cost(self, entity: int) -> float:
        return self._by_entity.get(entity, self.default)

    @classmethod
    def uniform(cls, collection: SetCollection) -> "QuestionCosts":
        return cls(collection)


def expected_path_cost(tree: DecisionTree, costs: QuestionCosts) -> float:
    """Mean, over leaves, of the summed question costs on the leaf's path.

    With unit costs this equals the tree's average depth.
    """
    total = 0.0
    leaves = 0

    def walk(node: DecisionTree, acc: float) -> None:
        nonlocal total, leaves
        if node.is_leaf:
            total += acc
            leaves += 1
            return
        assert node.entity is not None
        step = costs.cost(node.entity)
        walk(node.pos, acc + step)  # type: ignore[arg-type]
        walk(node.neg, acc + step)  # type: ignore[arg-type]

    walk(tree, 0.0)
    return total / leaves


def worst_path_cost(tree: DecisionTree, costs: QuestionCosts) -> float:
    """Maximum summed question cost over root-to-leaf paths.

    With unit costs this equals the tree's height.
    """
    best = 0.0

    def walk(node: DecisionTree, acc: float) -> None:
        nonlocal best
        if node.is_leaf:
            best = max(best, acc)
            return
        assert node.entity is not None
        step = costs.cost(node.entity)
        walk(node.pos, acc + step)  # type: ignore[arg-type]
        walk(node.neg, acc + step)  # type: ignore[arg-type]

    walk(tree, 0.0)
    return best


class CheapestEvenSelector(EntitySelector):
    """Greedy cost-per-bit rule: minimise ``cost(e) / InfoGain(e)``.

    Ties break toward the more even split, then the cheaper entity, then
    the entity id.  With uniform costs this selects the same entity as
    InfoGain / most-even (tested), so it is a strict generalisation of
    the paper's 1-step baseline.
    """

    name = "CheapestEven"

    def __init__(self, costs: QuestionCosts) -> None:
        self.costs = costs

    def select(
        self,
        collection: SetCollection,
        mask: int,
        candidates: Iterable[int] | None = None,
        exclude: AbcCollection[int] = frozenset(),
    ) -> int:
        if collection is not self.costs.collection:
            raise ValueError("costs belong to a different collection")
        pairs = self._informative(collection, mask, candidates, exclude)
        n = popcount(mask)
        best = None
        best_key = None
        for eid, cnt in pairs:
            gain = information_gain(n, cnt)
            price = self.costs.cost(eid)
            key = (
                price / gain if gain > 0 else math.inf,
                unevenness(n, cnt),
                price,
                eid,
            )
            if best_key is None or key < best_key:
                best_key = key
                best = eid
        assert best is not None
        return best


def cost_optimal(
    collection: SetCollection,
    costs: QuestionCosts,
    mask: int | None = None,
    max_sets: int = 14,
) -> float:
    """Exact minimum expected path cost over all decision trees.

    Memoised recursion over sub-collection masks::

        W(mask) = 0                                      if |mask| == 1
        W(mask) = min_e [ cost(e)
                          + (|pos| * W(pos) + |neg| * W(neg)) / |mask| ]

    Every leaf below the node pays the node's question cost, hence the
    ``cost(e)`` term applies to the whole sub-collection.  Exponential in
    the number of sets; guarded by ``max_sets``.
    """
    if mask is None:
        mask = collection.full_mask
    n = popcount(mask)
    if n == 0:
        raise ValueError("empty sub-collection")
    if n > max_sets:
        raise ValueError(
            f"cost_optimal limited to {max_sets} sets; got {n}"
        )
    memo: dict[int, float] = {}

    def solve(sub: int) -> float:
        if single_bit(sub):
            return 0.0
        hit = memo.get(sub)
        if hit is not None:
            return hit
        size = popcount(sub)
        best = math.inf
        seen: set[tuple[int, float]] = set()
        for eid, cnt in collection.informative_entities(sub):
            pos = sub & collection.entity_mask(eid)
            price = costs.cost(eid)
            canon = (min(pos, sub & ~pos), price)
            if canon in seen:
                continue  # same split at the same price
            seen.add(canon)
            value = price + (
                cnt * solve(pos) + (size - cnt) * solve(sub & ~pos)
            ) / size
            if value < best:
                best = value
        if best is math.inf:
            raise NoInformativeEntityError(
                "unique sets always admit an informative split"
            )
        memo[sub] = best
        return best

    return solve(mask)

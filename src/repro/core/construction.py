"""Offline decision-tree construction (Algorithm 3, Sec. 4.5).

For static collections the full decision tree can be precomputed once and
reused by every subsequent discovery: navigating the tree at question time is
then O(depth) with no selection cost.  :func:`build_tree` is a direct
transcription of Algorithm 3, generic over the entity-selection strategy.

:func:`tree_summary` packages the quality measures the evaluation reports
(AD, H, their lower bounds and optimality gaps) for one constructed tree.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from .bitmask import lowest_bit, popcount, single_bit
from .bounds import AD, H, CostMetric, lb_ad0, lb_h0
from .collection import SetCollection
from .selection import EntitySelector
from .tree import DecisionTree


def build_tree(
    collection: SetCollection,
    selector: EntitySelector,
    mask: int | None = None,
) -> DecisionTree:
    """Algorithm 3: construct a full binary decision tree for ``mask``.

    The recursion is implemented with an explicit stack so degenerate
    (path-shaped) trees over large collections cannot overflow Python's
    recursion limit.
    """
    if mask is None:
        mask = collection.full_mask
    if mask == 0:
        raise ValueError("cannot build a tree for an empty sub-collection")

    # Post-order construction over an explicit stack.  Each frame either
    # still needs expansion (children not yet built) or is ready to be
    # assembled from the two results on the result stack.
    EXPAND, ASSEMBLE = 0, 1
    stack: list[tuple[int, int, int | None, list[int] | None]] = [
        (EXPAND, mask, None, None)
    ]
    results: list[DecisionTree] = []
    while stack:
        action, node_mask, entity, candidates = stack.pop()
        if action == ASSEMBLE:
            neg = results.pop()
            pos = results.pop()
            assert entity is not None
            results.append(DecisionTree.internal(entity, pos, neg))
            continue
        if single_bit(node_mask):
            results.append(DecisionTree.leaf(lowest_bit(node_mask)))
            continue
        chosen = selector.select(collection, node_mask, candidates)
        pos_mask, neg_mask = collection.partition(node_mask, chosen)
        child_candidates = [
            e for e, _ in collection.informative_entities(node_mask, candidates)
        ]
        stack.append((ASSEMBLE, node_mask, chosen, None))
        # Children are pushed negative-first so the positive subtree is
        # built first and sits deeper on the result stack.
        stack.append((EXPAND, neg_mask, None, child_candidates))
        stack.append((EXPAND, pos_mask, None, child_candidates))
    assert len(results) == 1
    return results[0]


@dataclass(frozen=True)
class TreeSummary:
    """Quality summary of one constructed tree, as reported in Sec. 5."""

    n_sets: int
    n_entities: int
    average_depth: float
    height: int
    lb_average_depth: float
    lb_height: int
    construction_seconds: float
    selector: str

    @property
    def ad_gap(self) -> float:
        """AD minus its zero-step lower bound (0 when provably optimal)."""
        return self.average_depth - self.lb_average_depth

    @property
    def h_gap(self) -> int:
        """H minus its zero-step lower bound (0 when provably optimal)."""
        return self.height - self.lb_height

    def cost(self, metric: CostMetric) -> float:
        if metric is AD or metric.name == "AD":
            return self.average_depth
        if metric is H or metric.name == "H":
            return float(self.height)
        raise ValueError(f"unknown metric {metric!r}")


def build_and_summarize(
    collection: SetCollection,
    selector: EntitySelector,
    mask: int | None = None,
) -> tuple[DecisionTree, TreeSummary]:
    """Build a tree and collect the evaluation measures in one pass.

    Wall-clock time covers selection and construction only (this is the
    paper's *tree construction time*, distinct from discovery time).
    """
    if mask is None:
        mask = collection.full_mask
    start = time.perf_counter()
    tree = build_tree(collection, selector, mask)
    elapsed = time.perf_counter() - start
    n = popcount(mask)
    depths = tree.depths()
    summary = TreeSummary(
        n_sets=n,
        n_entities=len(collection.informative_entities(mask))
        if n > 1
        else 0,
        average_depth=sum(depths) / len(depths),
        height=max(depths),
        lb_average_depth=lb_ad0(n),
        lb_height=lb_h0(n),
        construction_seconds=elapsed,
        selector=selector.name,
    )
    return tree, summary


# --------------------------------------------------------------------- #
# Offline tree persistence (Sec. 4.5: precompute once, reuse many times)
# --------------------------------------------------------------------- #


def save_tree(tree: DecisionTree, path: "Path | str") -> None:
    """Serialise a tree to JSON for offline reuse."""
    Path(path).write_text(json.dumps(tree.to_dict()), encoding="utf-8")


def load_tree(path: "Path | str") -> DecisionTree:
    """Load a tree previously written by :func:`save_tree`."""
    return DecisionTree.from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )

"""Set collections: the closed collection ``C`` of unique sets (Sec. 3).

A :class:`SetCollection` stores:

* the sets themselves as frozensets of dense entity ids (see
  :class:`~repro.core.universe.Universe`),
* an inverted index ``entity id -> bitmask of containing sets``, which is the
  workhorse of every algorithm in the paper: partitioning a sub-collection
  ``C`` by entity ``e`` (the yes/no outcome of one membership question) is
  ``C+ = C & mask[e]`` and ``C- = C & ~mask[e]``.

The collection is **content-immutable**: no operation ever changes which
sets a constructed collection holds.  Mutation is expressed as *versioning*
instead — :meth:`SetCollection.apply_delta` takes a :class:`DeltaBatch` of
additions, removals and membership updates and returns a **new** collection
at ``epoch + 1`` that shares every unchanged structure (entity masks,
bit-matrix segments, cached informative stats) with its parent copy-on-write,
so a small delta costs O(changed) while readers of the old epoch keep a
consistent snapshot.  The one in-place operation is :meth:`reshard`, which
swaps the *execution strategy* (kernel sharding) without touching content and
therefore keeps the same epoch.  Sub-collections are plain integer bitmasks
(:mod:`repro.core.bitmask`), never copies of the sets, so algorithms can
explore millions of sub-collections cheaply and use the masks directly as
memoisation keys.

Uniqueness: the paper assumes all sets are unique ("if not, duplicates can be
removed without affecting the search task").  Construction therefore either
rejects duplicates (default) or silently merges them (``dedupe=True``),
remembering which input names collapsed onto each stored set.  Deltas always
reject duplicates: a batch whose result would contain two equal sets raises
:class:`DuplicateSetError`.

See ``docs/collections.md`` for the epoch model end to end (core deltas,
kernel segment sharing, serving epoch-pinning).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from . import kernels
from .bitmask import full_mask, iter_bits, popcount
from .universe import Universe


class DuplicateSetError(ValueError):
    """Raised when two input sets are equal and ``dedupe`` is off."""


class DeltaError(ValueError):
    """Raised when a :class:`DeltaBatch` is inconsistent with the collection.

    Examples: removing or updating a set name the collection does not have,
    adding a name that already exists (without removing it in the same
    batch), removing a membership label that is not a member.  The failed
    :meth:`SetCollection.apply_delta` leaves the collection untouched.
    """


#: Default bound on the per-mask informative-stats cache.  Sustained
#: multi-session serving visits an ever-growing stream of sub-collection
#: masks; an unbounded cache is a memory leak, so entries are evicted in
#: least-recently-used order beyond this many masks.
DEFAULT_INFORMATIVE_CACHE_SIZE = 8192


class DeltaBatch:
    """One atomic batch of collection mutations, applied by
    :meth:`SetCollection.apply_delta`.

    The builder methods chain and may be called repeatedly::

        batch = (
            DeltaBatch()
            .add_sets({"S9": ["milk", "eggs"]})
            .remove_sets(["S3"])
            .update_membership("S1", add=["butter"], remove=["salt"])
        )
        newer = collection.apply_delta(batch)   # epoch N+1

    Semantics (validated against the target collection at apply time):

    * ``add_sets`` — each name must be new, *unless* the same batch removes
      it, which reads as an atomic replacement (the new set reuses the old
      set's slot).
    * ``remove_sets`` — each name must exist and may be removed only once.
    * ``update_membership`` — the named set must exist and must not be
      removed in the same batch; removing a label that is not a member is
      an error, adding a label that is already a member is a no-op.

    A batch is a pure description: it holds no reference to any collection
    and the same batch may be applied to several collections.
    """

    __slots__ = ("_adds", "_removes", "_updates")

    def __init__(self) -> None:
        self._adds: list[tuple[str, tuple[Hashable, ...]]] = []
        self._removes: list[str] = []
        self._updates: list[
            tuple[str, tuple[Hashable, ...], tuple[Hashable, ...]]
        ] = []

    def add_sets(
        self, named: Mapping[str, Iterable[Hashable]]
    ) -> "DeltaBatch":
        """Queue new sets from a ``name -> iterable of labels`` mapping."""
        for name, labels in named.items():
            self._adds.append((name, tuple(labels)))
        return self

    def remove_sets(self, names: Iterable[str]) -> "DeltaBatch":
        """Queue existing sets for removal, by name."""
        self._removes.extend(names)
        return self

    def update_membership(
        self,
        name: str,
        add: Iterable[Hashable] = (),
        remove: Iterable[Hashable] = (),
    ) -> "DeltaBatch":
        """Queue a membership edit of the named set (labels in, labels out)."""
        self._updates.append((name, tuple(add), tuple(remove)))
        return self

    def __len__(self) -> int:
        """Number of queued operations (adds + removes + updates)."""
        return len(self._adds) + len(self._removes) + len(self._updates)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return (
            f"DeltaBatch(adds={len(self._adds)}, "
            f"removes={len(self._removes)}, updates={len(self._updates)})"
        )


class SetCollection:
    """An immutable collection of unique finite sets over a shared universe.

    Parameters
    ----------
    sets:
        Iterable of iterables of entity labels (any hashables).
    names:
        Optional human-readable name per set (defaults to ``S1..Sn`` as in
        the paper's running example).
    universe:
        Optional pre-existing :class:`Universe` to intern labels into; a new
        one is created when omitted.
    dedupe:
        When true, duplicate sets are merged instead of raising
        :class:`DuplicateSetError`.
    backend:
        Entity-statistics kernel backend: ``"bigint"``, ``"numpy"``,
        ``"native"`` or ``"auto"`` (honour ``$REPRO_BACKEND``, then pick
        the fastest importable backend — native's compiled popcount
        extension, else numpy — when the collection is large enough for
        vectorization to win).  See :mod:`repro.core.kernels`; all
        backends produce identical results, only throughput differs.
        Requesting ``"native"`` without the compiled extension degrades
        to numpy with a one-time warning.
    shards:
        When > 1, partition the set axis into this many contiguous ranges
        and run every batched statistic per shard on a worker pool
        (:mod:`repro.core.kernels.sharded`).  Results stay bit-identical
        to the unsharded kernels; only throughput changes.  ``None`` (the
        default) keeps the single-kernel path; see also :meth:`reshard`.
    shard_executor:
        Worker pool for the shards: ``"thread"`` (default), ``"process"``
        or ``"serial"``; ``None`` defers to ``$REPRO_SHARD_EXECUTOR``.
    informative_cache_size:
        Bound on the per-mask informative-stats cache
        (:data:`DEFAULT_INFORMATIVE_CACHE_SIZE` masks by default, LRU
        eviction).  ``None`` disables the bound — only sensible for
        short-lived collections.
    """

    __slots__ = (
        "universe",
        "_sets",
        "_names",
        "_entity_masks",
        "_full_mask",
        "_aliases",
        "_index_by_name",
        "_index_by_set",
        "_informative_cache",
        "_informative_cache_size",
        "_kernel",
        "_epoch",
    )

    def __init__(
        self,
        sets: Iterable[Iterable[Hashable]],
        names: Sequence[str] | None = None,
        universe: Universe | None = None,
        dedupe: bool = False,
        backend: str | None = None,
        shards: int | None = None,
        shard_executor: str | None = None,
        informative_cache_size: int | None = DEFAULT_INFORMATIVE_CACHE_SIZE,
    ) -> None:
        self.universe = universe if universe is not None else Universe()
        interned: list[frozenset[int]] = []
        kept_names: list[str] = []
        seen: dict[frozenset[int], int] = {}
        aliases: dict[int, list[str]] = {}
        for position, raw in enumerate(sets):
            name = (
                names[position]
                if names is not None
                else f"S{position + 1}"
            )
            fs = frozenset(self.universe.intern(label) for label in raw)
            if fs in seen:
                if not dedupe:
                    raise DuplicateSetError(
                        f"set {name!r} duplicates set "
                        f"{kept_names[seen[fs]]!r}; pass dedupe=True to merge"
                    )
                aliases.setdefault(seen[fs], []).append(name)
                continue
            seen[fs] = len(interned)
            interned.append(fs)
            kept_names.append(name)
        self._sets: tuple[frozenset[int], ...] = tuple(interned)
        self._names: tuple[str, ...] = tuple(kept_names)
        self._aliases: dict[int, tuple[str, ...]] = {
            idx: tuple(extra) for idx, extra in aliases.items()
        }
        # O(1) lookup maps (construction already had both at hand: ``seen``
        # is exactly set -> index, and names map to their first index).
        self._index_by_set: dict[frozenset[int], int] = seen
        name_index: dict[str, int] = {}
        for idx, name in enumerate(kept_names):
            name_index.setdefault(name, idx)
        self._index_by_name: dict[str, int] = name_index
        masks: dict[int, int] = {}
        for idx, fs in enumerate(self._sets):
            bit = 1 << idx
            for eid in fs:
                masks[eid] = masks.get(eid, 0) | bit
        self._entity_masks: dict[int, int] = masks
        self._full_mask: int = full_mask(len(self._sets))
        self._informative_cache: dict[int, tuple[Sequence[int], Sequence[int]]] = {}
        self._informative_cache_size = informative_cache_size
        self._epoch = 0
        self._kernel = kernels.make_kernel(
            backend,
            self._sets,
            self._entity_masks,
            len(self._sets),
            shards=shards,
            shard_executor=shard_executor,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_named_sets(
        cls,
        named: Mapping[str, Iterable[Hashable]],
        universe: Universe | None = None,
        dedupe: bool = False,
        backend: str | None = None,
    ) -> "SetCollection":
        """Build from a ``name -> iterable of labels`` mapping."""
        names = list(named)
        return cls(
            (named[name] for name in names),
            names=names,
            universe=universe,
            dedupe=dedupe,
            backend=backend,
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n_sets(self) -> int:
        """``n``: number of unique sets in the collection."""
        return len(self._sets)

    @property
    def n_entities(self) -> int:
        """``m``: number of distinct entities across all sets."""
        return len(self._entity_masks)

    @property
    def full_mask(self) -> int:
        """Bitmask selecting every set (the root sub-collection)."""
        return self._full_mask

    @property
    def epoch(self) -> int:
        """Version number of this collection's content.

        A freshly constructed collection is epoch 0; each
        :meth:`apply_delta` returns a collection at ``epoch + 1``.
        :meth:`reshard` changes only execution strategy and keeps the
        epoch.
        """
        return self._epoch

    @property
    def backend(self) -> str:
        """Name of the entity-statistics kernel backend in use.

        Sharded collections report ``"<base>[xN]"`` (e.g. ``"numpy[x4]"``).
        """
        return self._kernel.name

    @property
    def shards(self) -> int:
        """Number of set-range shards the kernel executes over (1 = none)."""
        return getattr(self._kernel, "n_shards", 1)

    @property
    def kernel(self) -> kernels.EntityStatsKernel:
        """The entity-statistics kernel in use (read-only; see
        :meth:`reshard` to swap execution strategies)."""
        return self._kernel

    def reshard(self, shards: int | None, executor: str | None = None) -> None:
        """Swap the kernel for a variant with ``shards`` set-range shards.

        A pure execution-strategy change: the backend stays the same, every
        statistic stays bit-identical, and the informative-stats cache is
        kept (its entries are exact under any sharding).  ``shards`` of
        ``None``/``0``/``1`` restores the unsharded kernel.  The
        multi-session engine calls this for ``SessionEngine(shards=...)``.

        This is the one *in-place* mutation of a collection.  It never
        changes content — sets, names, masks and every statistic are
        untouched — so the :attr:`epoch` stays the same.  Content changes
        go through :meth:`apply_delta`, which versions instead of
        mutating.
        """
        base = getattr(self._kernel, "base_name", self._kernel.name)
        old = self._kernel
        self._kernel = kernels.make_kernel(
            base,
            self._sets,
            self._entity_masks,
            len(self._sets),
            shards=shards,
            shard_executor=executor,
        )
        if hasattr(old, "close"):
            old.close()

    # ------------------------------------------------------------------ #
    # Epoch versioning: copy-on-write deltas
    # ------------------------------------------------------------------ #

    def apply_delta(self, batch: DeltaBatch) -> "SetCollection":
        """Apply a :class:`DeltaBatch` and return the epoch ``N+1`` collection.

        The result is a new, independent :class:`SetCollection` sharing
        every unchanged structure with this one copy-on-write:

        * the :class:`~repro.core.universe.Universe` is shared outright
          (interning is append-only, so new labels are safe to add);
        * the entity-mask index is a dict copy with only the masks of
          entities belonging to changed sets rewritten;
        * the kernel patches only the bit-matrix columns (and, for
          :class:`~repro.core.kernels.sharded.ShardedKernel`, only the
          shards) that the delta touches, on the same backend family;
        * cached informative stats survive for every mask that selects no
          changed slot.

        A delta touching ``k`` sets therefore costs ``O(k)`` set slots —
        plus one pass over the entity rows for the matrix column patch —
        instead of an ``O(n x m)`` rebuild, and this collection remains
        fully usable: in-flight readers of epoch ``N`` keep an exact
        snapshot.

        Slot layout is deterministic so that an equal-content rebuild is
        byte-identical: an added set fills the slot of a removed one
        (ascending removal order, batch add order), extra adds append at
        the tail, and when removals outnumber adds the kept tail sets swap
        down into the remaining holes (lowest hole takes the lowest kept
        tail set) before the set axis truncates.  Set order carries no
        semantic weight — every statistic is order-independent — it only
        pins down bit positions.

        Raises :class:`DeltaError` on an inconsistent batch and
        :class:`DuplicateSetError` if the result would contain two equal
        sets; either way this collection is left untouched (at most some
        new labels were interned into the shared universe, which is
        harmless).  An empty batch returns ``self`` unchanged — no new
        epoch.
        """
        if not isinstance(batch, DeltaBatch):
            raise TypeError(
                f"apply_delta expects a DeltaBatch, got {type(batch).__name__}"
            )
        if not batch:
            return self
        n_old = len(self._sets)

        # -- resolve removals against this collection ------------------- #
        removed: dict[int, str] = {}
        for name in batch._removes:
            idx = self._index_by_name.get(name)
            if idx is None:
                raise DeltaError(f"remove_sets: unknown set name {name!r}")
            if idx in removed:
                raise DeltaError(f"remove_sets: set {name!r} removed twice")
            removed[idx] = name

        # -- resolve membership updates --------------------------------- #
        updated: dict[int, frozenset[int]] = {}
        for name, add_labels, remove_labels in batch._updates:
            idx = self._index_by_name.get(name)
            if idx is None:
                raise DeltaError(
                    f"update_membership: unknown set name {name!r}"
                )
            if idx in removed:
                raise DeltaError(
                    f"update_membership: set {name!r} is removed in the "
                    f"same batch"
                )
            members = set(updated.get(idx, self._sets[idx]))
            for label in remove_labels:
                if label not in self.universe:
                    raise DeltaError(
                        f"update_membership: {label!r} is not a member "
                        f"of set {name!r}"
                    )
                eid = self.universe.id_of(label)
                if eid not in members:
                    raise DeltaError(
                        f"update_membership: {label!r} is not a member "
                        f"of set {name!r}"
                    )
                members.discard(eid)
            for label in add_labels:
                members.add(self.universe.intern(label))
            updated[idx] = frozenset(members)

        # -- resolve additions ------------------------------------------ #
        added_names: list[str] = []
        added_sets: list[frozenset[int]] = []
        for name, labels in batch._adds:
            if name in added_names:
                raise DeltaError(
                    f"add_sets: duplicate name {name!r} in one batch"
                )
            existing = self._index_by_name.get(name)
            if existing is not None and existing not in removed:
                raise DeltaError(
                    f"add_sets: set name {name!r} already exists; remove "
                    f"it in the same batch to replace it"
                )
            added_names.append(name)
            added_sets.append(
                frozenset(self.universe.intern(label) for label in labels)
            )

        # -- slot layout: replace, append, swap-from-tail, truncate ----- #
        new_sets = list(self._sets)
        new_names = list(self._names)
        dirty_new: set[int] = set()  # new-space slots whose content is new
        dirty_old: set[int] = set()  # old-space slots whose content is gone
        moved: dict[int, int] = {}  # old tail slot -> hole it fills
        for idx, fs in updated.items():
            if fs == self._sets[idx]:
                continue  # the update netted out: slot stays clean
            new_sets[idx] = fs
            dirty_new.add(idx)
            dirty_old.add(idx)
        removal_order = sorted(removed)
        n_replaced = min(len(removal_order), len(added_sets))
        for i in range(n_replaced):
            slot = removal_order[i]
            new_sets[slot] = added_sets[i]
            new_names[slot] = added_names[i]
            dirty_new.add(slot)
            dirty_old.add(slot)
        n_new = n_old - len(removal_order) + len(added_sets)
        for i in range(n_replaced, len(added_sets)):
            new_sets.append(added_sets[i])
            new_names.append(added_names[i])
            dirty_new.add(len(new_sets) - 1)
        if len(removal_order) > n_replaced:
            holes = set(removal_order[n_replaced:])
            low_holes = sorted(h for h in holes if h < n_new)
            kept_tail = [
                t for t in range(n_new, n_old) if t not in holes
            ]
            for hole, tail in zip(low_holes, kept_tail):
                new_sets[hole] = new_sets[tail]
                new_names[hole] = new_names[tail]
                moved[tail] = hole
                dirty_new.add(hole)
                dirty_old.add(hole)
            dirty_old.update(range(n_new, n_old))
            dirty_new.difference_update(range(n_new, n_old))
            del new_sets[n_new:]
            del new_names[n_new:]

        # -- uniqueness + set index (copy, pop old, insert new) --------- #
        index_by_set = dict(self._index_by_set)
        for slot in dirty_old:
            index_by_set.pop(self._sets[slot], None)
        for slot in sorted(dirty_new):
            fs = new_sets[slot]
            other = index_by_set.get(fs)
            if other is not None:
                raise DuplicateSetError(
                    f"delta would make set {new_names[slot]!r} a duplicate "
                    f"of set {new_names[other]!r}"
                )
            index_by_set[fs] = slot

        # -- entity masks: clear old bits, set new bits, drop zeros ----- #
        masks = dict(self._entity_masks)
        touched: set[int] = set()
        for slot in dirty_old:
            bit = 1 << slot
            for eid in self._sets[slot]:
                masks[eid] &= ~bit
                touched.add(eid)
        for slot in dirty_new:
            bit = 1 << slot
            for eid in new_sets[slot]:
                masks[eid] = masks.get(eid, 0) | bit
        for eid in touched:
            if masks[eid] == 0:
                del masks[eid]

        # -- names index (first-wins needs the full rebuild) and aliases  #
        name_index: dict[str, int] = {}
        for idx, name in enumerate(new_names):
            name_index.setdefault(name, idx)
        aliases: dict[int, tuple[str, ...]] = {}
        for old_idx, extra in self._aliases.items():
            if old_idx in removed:
                continue  # a removed set takes its merged aliases with it
            aliases[moved.get(old_idx, old_idx)] = extra

        # -- informative-stats cache carry-over ------------------------- #
        # A cached entry depends only on the membership of the sets its
        # mask selects; it survives iff the mask touches no old-space
        # dirty slot (truncated slots are dirty, so no separate guard).
        dirty_old_mask = 0
        for slot in dirty_old:
            dirty_old_mask |= 1 << slot
        cache: dict[int, tuple[Sequence[int], Sequence[int]]] = {}
        cap = self._informative_cache_size
        for mask, stats in self._informative_cache.items():
            if mask & dirty_old_mask == 0:
                cache[mask] = stats  # parent order keeps LRU recency

        # -- kernel: same backend family, patched segments -------------- #
        sets_tuple = tuple(new_sets)
        delta = kernels.KernelDelta(
            dirty_new=tuple(sorted(dirty_new)),
            dirty_old=tuple(sorted(dirty_old)),
        )
        kernel = kernels.delta_kernel(
            self._kernel, sets_tuple, masks, n_new, delta
        )

        child = object.__new__(SetCollection)
        child.universe = self.universe
        child._sets = sets_tuple
        child._names = tuple(new_names)
        child._aliases = aliases
        child._index_by_set = index_by_set
        child._index_by_name = name_index
        child._entity_masks = masks
        child._full_mask = full_mask(n_new)
        child._informative_cache = cache
        child._informative_cache_size = cap
        child._kernel = kernel
        child._epoch = self._epoch + 1
        return child

    @property
    def sets(self) -> tuple[frozenset[int], ...]:
        """All sets, as frozensets of entity ids, indexed by set number."""
        return self._sets

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def name_of(self, index: int) -> str:
        return self._names[index]

    def index_of(self, name: str) -> int:
        """Index of the set with the given name (O(1))."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise KeyError(name) from None

    def aliases_of(self, index: int) -> tuple[str, ...]:
        """Names of duplicate input sets merged into set ``index``."""
        return self._aliases.get(index, ())

    def set_labels(self, index: int) -> frozenset[Hashable]:
        """The stored set with entity ids translated back to labels."""
        return frozenset(self.universe.label(e) for e in self._sets[index])

    def entity_mask(self, eid: int) -> int:
        """Bitmask of the sets containing entity ``eid`` (0 if absent)."""
        return self._entity_masks.get(eid, 0)

    def entity_ids(self) -> Iterator[int]:
        """All entity ids present in at least one set."""
        return iter(self._entity_masks)

    def __len__(self) -> int:
        return len(self._sets)

    def __repr__(self) -> str:
        return (
            f"SetCollection(n_sets={self.n_sets}, "
            f"n_entities={self.n_entities})"
        )

    # ------------------------------------------------------------------ #
    # Sub-collection algebra
    # ------------------------------------------------------------------ #

    def count(self, mask: int) -> int:
        """Number of sets in the sub-collection ``mask``."""
        return popcount(mask)

    def partition(self, mask: int, eid: int) -> tuple[int, int]:
        """Split ``mask`` by entity ``eid`` into ``(C+, C-)``.

        ``C+`` holds the sets containing the entity (the user answered
        *yes*), ``C-`` the rest (*no*).
        """
        positive = mask & self._entity_masks.get(eid, 0)
        return positive, mask & ~positive

    def positive_count(self, mask: int, eid: int) -> int:
        """``|C+|`` without materialising the negative side."""
        return popcount(mask & self._entity_masks.get(eid, 0))

    def positive_counts(self, mask: int, eids: Iterable[int]) -> list[int]:
        """Batched :meth:`positive_count` over many entities at once.

        One kernel pass instead of a per-entity loop; on the numpy backend
        the counts for all entities come out of a single batched popcount
        over the packed bit-matrix.  Unknown entity ids count 0.
        """
        counts = self._kernel.positive_counts(mask, eids)
        return counts if isinstance(counts, list) else counts.tolist()

    def positive_counts_many(
        self, masks: Sequence[int], eids: Iterable[int]
    ) -> list[list[int]]:
        """Stacked :meth:`positive_counts`: one count list per mask.

        A single kernel pass answers the same entity questions for many
        sub-collections (sessions) at once; row ``i`` equals
        ``positive_counts(masks[i], eids)`` on every backend.
        """
        rows = self._kernel.positive_counts_many(masks, eids)
        return [
            row if isinstance(row, list) else row.tolist() for row in rows
        ]

    def partition_many(
        self, mask: int, eids: Iterable[int]
    ) -> list[tuple[int, int]]:
        """Batched :meth:`partition` over many entities at once.

        Returns ``(C+, C-)`` pairs parallel to ``eids``; the lookahead
        selectors use this to expand all children of a node in one kernel
        call.
        """
        return self._kernel.partition_many(mask, eids)

    def sets_in(self, mask: int) -> Iterator[int]:
        """Indices of the sets selected by ``mask``, ascending."""
        return iter_bits(mask)

    def entities_in(self, mask: int) -> set[int]:
        """Union of entities over the sets selected by ``mask``."""
        return self._kernel.member_union(mask)

    def informative_entities(
        self,
        mask: int,
        candidates: Iterable[int] | None = None,
    ) -> list[tuple[int, int]]:
        """Informative entities of the sub-collection ``mask``.

        An entity is *informative* (Sec. 3) when it is present in some but
        not all sets of the sub-collection; only informative entities can
        reduce the candidate space, so only they may label tree nodes.

        Returns ``(entity id, |C+|)`` pairs, in ascending entity-id order
        (identical on every backend).  ``candidates`` restricts the scan
        (children of a node only need their parent's informative entities)
        and preserves the caller's order.  Results for the no-candidates
        form are cached per mask since the same sub-collection recurs
        across lookahead invocations.
        """
        eids, counts = self.informative_stats(mask, candidates)
        if isinstance(eids, (list, tuple)):
            return list(zip(eids, counts))
        return list(zip(eids.tolist(), counts.tolist()))

    def informative_stats(
        self,
        mask: int,
        candidates: Iterable[int] | None = None,
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Informative entities as parallel ``(eids, counts)`` sequences.

        The batched form of :meth:`informative_entities` — the hot path of
        every selector.  On the numpy backend both sequences are integer
        arrays produced by one vectorized popcount pass, ready for batched
        scoring (:mod:`repro.core.kernels.scoring`); on the big-int backend
        they are plain lists.  Callers must treat the result as read-only:
        the no-candidates form is cached per mask.

        Ordering contract: ascending entity id when ``candidates`` is
        omitted (identical across backends), the caller's order otherwise.
        """
        n = popcount(mask)
        if candidates is None:
            cached = self._cache_get(mask)
            if cached is not None:
                return cached
            stats = self._freeze_stats(
                self._kernel.scan_informative(mask, n, None)
            )
            self._cache_put(mask, stats)
            return stats
        return self._kernel.scan_informative(mask, n, candidates)

    def informative_stats_many(
        self,
        masks: Sequence[int],
        candidates_list: Sequence[Iterable[int] | None] | None = None,
    ) -> list[tuple[Sequence[int], Sequence[int]]]:
        """Batched :meth:`informative_stats` over many sub-collections.

        Cache hits are returned directly; all misses are answered by *one*
        stacked kernel pass (the multi-session engine's hot path) and then
        cached, so a later per-mask :meth:`informative_stats` call on any
        of these masks is a hit.

        ``candidates_list`` optionally restricts each miss's scan.  Because
        the result is cached as if it came from a full scan, each
        restriction MUST be a superset of the mask's informative entities
        presented in ascending entity-id order — e.g. the informative
        entities of any ancestor sub-collection, which always qualify
        (narrowing can only shrink the informative set).  Results are then
        identical to the unrestricted scan, just cheaper.
        """
        out: list = [None] * len(masks)
        miss_at: list[int] = []
        miss_masks: list[int] = []
        miss_ns: list[int] = []
        miss_cands: list[Iterable[int] | None] = []
        pending: dict[int, list[int]] = {}
        for i, mask in enumerate(masks):
            cached = self._cache_get(mask)
            if cached is not None:
                out[i] = cached
                continue
            if mask in pending:  # duplicate miss: scan once, share result
                pending[mask].append(i)
                continue
            pending[mask] = [i]
            miss_at.append(i)
            miss_masks.append(mask)
            miss_ns.append(popcount(mask))
            miss_cands.append(
                candidates_list[i] if candidates_list is not None else None
            )
        if miss_masks:
            scanned = self._kernel.scan_informative_many(
                miss_masks, miss_ns, miss_cands
            )
            for mask, raw in zip(miss_masks, scanned):
                stats = self._freeze_stats(raw)
                self._cache_put(mask, stats)
                for i in pending[mask]:
                    out[i] = stats
        return out

    def _freeze_stats(
        self, raw: tuple[Sequence[int], Sequence[int]]
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Make scan results immutable before caching.

        The same objects are handed to every caller, so a mutable cached
        list would let one caller corrupt all later selections on its mask.
        """
        eids, counts = raw
        if isinstance(eids, list):
            return tuple(eids), tuple(counts)
        eids.flags.writeable = False
        counts.flags.writeable = False
        return eids, counts

    def _cache_get(
        self, mask: int
    ) -> tuple[Sequence[int], Sequence[int]] | None:
        """Cache lookup; a hit is re-marked as most recently used."""
        cache = self._informative_cache
        stats = cache.get(mask)
        if stats is not None and self._informative_cache_size is not None:
            del cache[mask]  # move to the end: dicts iterate oldest-first
            cache[mask] = stats
        return stats

    def _cache_put(
        self, mask: int, stats: tuple[Sequence[int], Sequence[int]]
    ) -> None:
        cache = self._informative_cache
        cap = self._informative_cache_size
        if cap is not None:
            while len(cache) >= max(cap, 1):
                del cache[next(iter(cache))]
        cache[mask] = stats

    def is_cached(self, mask: int) -> bool:
        """Whether ``mask``'s informative stats are cached (no LRU touch)."""
        return mask in self._informative_cache

    def release_cached(self, mask: int) -> None:
        """Drop one mask's cached stats (a finished session's footprint)."""
        self._informative_cache.pop(mask, None)

    def cached_mask_count(self) -> int:
        """Number of sub-collection masks currently held in the cache."""
        return len(self._informative_cache)

    def clear_caches(self) -> None:
        """Drop the informative-entity cache (frees memory after a run)."""
        self._informative_cache.clear()

    # ------------------------------------------------------------------ #
    # Candidate filtering (Algorithm 2, lines 2-4)
    # ------------------------------------------------------------------ #

    def supersets_of(self, initial: Iterable[Hashable]) -> int:
        """Mask of the sets that contain every entity in ``initial``.

        This is the candidate sub-collection ``CS`` seeded by the user's
        initial example set ``I``.  Labels unknown to the universe cannot be
        contained in any set, so they yield the empty mask.
        """
        mask = self._full_mask
        for label in initial:
            if label not in self.universe:
                return 0
            mask &= self._entity_masks.get(self.universe.id_of(label), 0)
            if mask == 0:
                return 0
        return mask

    def supersets_of_ids(self, initial_ids: Iterable[int]) -> int:
        """Like :meth:`supersets_of` but over already-interned entity ids."""
        mask = self._full_mask
        for eid in initial_ids:
            mask &= self._entity_masks.get(eid, 0)
            if mask == 0:
                return 0
        return mask

    def find(self, labels: Iterable[Hashable]) -> int | None:
        """Index of the set exactly equal to ``labels``, or ``None`` (O(1))."""
        try:
            fs = frozenset(self.universe.id_of(label) for label in labels)
        except KeyError:
            return None
        return self._index_by_set.get(fs)

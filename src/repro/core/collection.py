"""Set collections: the closed collection ``C`` of unique sets (Sec. 3).

A :class:`SetCollection` stores:

* the sets themselves as frozensets of dense entity ids (see
  :class:`~repro.core.universe.Universe`),
* an inverted index ``entity id -> bitmask of containing sets``, which is the
  workhorse of every algorithm in the paper: partitioning a sub-collection
  ``C`` by entity ``e`` (the yes/no outcome of one membership question) is
  ``C+ = C & mask[e]`` and ``C- = C & ~mask[e]``.

The collection is immutable after construction.  Sub-collections are plain
integer bitmasks (:mod:`repro.core.bitmask`), never copies of the sets, so
algorithms can explore millions of sub-collections cheaply and use the masks
directly as memoisation keys.

Uniqueness: the paper assumes all sets are unique ("if not, duplicates can be
removed without affecting the search task").  Construction therefore either
rejects duplicates (default) or silently merges them (``dedupe=True``),
remembering which input names collapsed onto each stored set.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from . import kernels
from .bitmask import full_mask, iter_bits, popcount
from .universe import Universe


class DuplicateSetError(ValueError):
    """Raised when two input sets are equal and ``dedupe`` is off."""


#: Default bound on the per-mask informative-stats cache.  Sustained
#: multi-session serving visits an ever-growing stream of sub-collection
#: masks; an unbounded cache is a memory leak, so entries are evicted in
#: least-recently-used order beyond this many masks.
DEFAULT_INFORMATIVE_CACHE_SIZE = 8192


class SetCollection:
    """An immutable collection of unique finite sets over a shared universe.

    Parameters
    ----------
    sets:
        Iterable of iterables of entity labels (any hashables).
    names:
        Optional human-readable name per set (defaults to ``S1..Sn`` as in
        the paper's running example).
    universe:
        Optional pre-existing :class:`Universe` to intern labels into; a new
        one is created when omitted.
    dedupe:
        When true, duplicate sets are merged instead of raising
        :class:`DuplicateSetError`.
    backend:
        Entity-statistics kernel backend: ``"bigint"``, ``"numpy"``,
        ``"native"`` or ``"auto"`` (honour ``$REPRO_BACKEND``, then pick
        the fastest importable backend — native's compiled popcount
        extension, else numpy — when the collection is large enough for
        vectorization to win).  See :mod:`repro.core.kernels`; all
        backends produce identical results, only throughput differs.
        Requesting ``"native"`` without the compiled extension degrades
        to numpy with a one-time warning.
    shards:
        When > 1, partition the set axis into this many contiguous ranges
        and run every batched statistic per shard on a worker pool
        (:mod:`repro.core.kernels.sharded`).  Results stay bit-identical
        to the unsharded kernels; only throughput changes.  ``None`` (the
        default) keeps the single-kernel path; see also :meth:`reshard`.
    shard_executor:
        Worker pool for the shards: ``"thread"`` (default), ``"process"``
        or ``"serial"``; ``None`` defers to ``$REPRO_SHARD_EXECUTOR``.
    informative_cache_size:
        Bound on the per-mask informative-stats cache
        (:data:`DEFAULT_INFORMATIVE_CACHE_SIZE` masks by default, LRU
        eviction).  ``None`` disables the bound — only sensible for
        short-lived collections.
    """

    __slots__ = (
        "universe",
        "_sets",
        "_names",
        "_entity_masks",
        "_full_mask",
        "_aliases",
        "_index_by_name",
        "_index_by_set",
        "_informative_cache",
        "_informative_cache_size",
        "_kernel",
    )

    def __init__(
        self,
        sets: Iterable[Iterable[Hashable]],
        names: Sequence[str] | None = None,
        universe: Universe | None = None,
        dedupe: bool = False,
        backend: str | None = None,
        shards: int | None = None,
        shard_executor: str | None = None,
        informative_cache_size: int | None = DEFAULT_INFORMATIVE_CACHE_SIZE,
    ) -> None:
        self.universe = universe if universe is not None else Universe()
        interned: list[frozenset[int]] = []
        kept_names: list[str] = []
        seen: dict[frozenset[int], int] = {}
        aliases: dict[int, list[str]] = {}
        for position, raw in enumerate(sets):
            name = (
                names[position]
                if names is not None
                else f"S{position + 1}"
            )
            fs = frozenset(self.universe.intern(label) for label in raw)
            if fs in seen:
                if not dedupe:
                    raise DuplicateSetError(
                        f"set {name!r} duplicates set "
                        f"{kept_names[seen[fs]]!r}; pass dedupe=True to merge"
                    )
                aliases.setdefault(seen[fs], []).append(name)
                continue
            seen[fs] = len(interned)
            interned.append(fs)
            kept_names.append(name)
        self._sets: tuple[frozenset[int], ...] = tuple(interned)
        self._names: tuple[str, ...] = tuple(kept_names)
        self._aliases: dict[int, tuple[str, ...]] = {
            idx: tuple(extra) for idx, extra in aliases.items()
        }
        # O(1) lookup maps (construction already had both at hand: ``seen``
        # is exactly set -> index, and names map to their first index).
        self._index_by_set: dict[frozenset[int], int] = seen
        name_index: dict[str, int] = {}
        for idx, name in enumerate(kept_names):
            name_index.setdefault(name, idx)
        self._index_by_name: dict[str, int] = name_index
        masks: dict[int, int] = {}
        for idx, fs in enumerate(self._sets):
            bit = 1 << idx
            for eid in fs:
                masks[eid] = masks.get(eid, 0) | bit
        self._entity_masks: dict[int, int] = masks
        self._full_mask: int = full_mask(len(self._sets))
        self._informative_cache: dict[int, tuple[Sequence[int], Sequence[int]]] = {}
        self._informative_cache_size = informative_cache_size
        self._kernel = kernels.make_kernel(
            backend,
            self._sets,
            self._entity_masks,
            len(self._sets),
            shards=shards,
            shard_executor=shard_executor,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_named_sets(
        cls,
        named: Mapping[str, Iterable[Hashable]],
        universe: Universe | None = None,
        dedupe: bool = False,
        backend: str | None = None,
    ) -> "SetCollection":
        """Build from a ``name -> iterable of labels`` mapping."""
        names = list(named)
        return cls(
            (named[name] for name in names),
            names=names,
            universe=universe,
            dedupe=dedupe,
            backend=backend,
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n_sets(self) -> int:
        """``n``: number of unique sets in the collection."""
        return len(self._sets)

    @property
    def n_entities(self) -> int:
        """``m``: number of distinct entities across all sets."""
        return len(self._entity_masks)

    @property
    def full_mask(self) -> int:
        """Bitmask selecting every set (the root sub-collection)."""
        return self._full_mask

    @property
    def backend(self) -> str:
        """Name of the entity-statistics kernel backend in use.

        Sharded collections report ``"<base>[xN]"`` (e.g. ``"numpy[x4]"``).
        """
        return self._kernel.name

    @property
    def shards(self) -> int:
        """Number of set-range shards the kernel executes over (1 = none)."""
        return getattr(self._kernel, "n_shards", 1)

    @property
    def kernel(self) -> kernels.EntityStatsKernel:
        """The entity-statistics kernel in use (read-only; see
        :meth:`reshard` to swap execution strategies)."""
        return self._kernel

    def reshard(self, shards: int | None, executor: str | None = None) -> None:
        """Swap the kernel for a variant with ``shards`` set-range shards.

        A pure execution-strategy change: the backend stays the same, every
        statistic stays bit-identical, and the informative-stats cache is
        kept (its entries are exact under any sharding).  ``shards`` of
        ``None``/``0``/``1`` restores the unsharded kernel.  The
        multi-session engine calls this for ``SessionEngine(shards=...)``.
        """
        base = getattr(self._kernel, "base_name", self._kernel.name)
        old = self._kernel
        self._kernel = kernels.make_kernel(
            base,
            self._sets,
            self._entity_masks,
            len(self._sets),
            shards=shards,
            shard_executor=executor,
        )
        if hasattr(old, "close"):
            old.close()

    @property
    def sets(self) -> tuple[frozenset[int], ...]:
        """All sets, as frozensets of entity ids, indexed by set number."""
        return self._sets

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def name_of(self, index: int) -> str:
        return self._names[index]

    def index_of(self, name: str) -> int:
        """Index of the set with the given name (O(1))."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise KeyError(name) from None

    def aliases_of(self, index: int) -> tuple[str, ...]:
        """Names of duplicate input sets merged into set ``index``."""
        return self._aliases.get(index, ())

    def set_labels(self, index: int) -> frozenset[Hashable]:
        """The stored set with entity ids translated back to labels."""
        return frozenset(self.universe.label(e) for e in self._sets[index])

    def entity_mask(self, eid: int) -> int:
        """Bitmask of the sets containing entity ``eid`` (0 if absent)."""
        return self._entity_masks.get(eid, 0)

    def entity_ids(self) -> Iterator[int]:
        """All entity ids present in at least one set."""
        return iter(self._entity_masks)

    def __len__(self) -> int:
        return len(self._sets)

    def __repr__(self) -> str:
        return (
            f"SetCollection(n_sets={self.n_sets}, "
            f"n_entities={self.n_entities})"
        )

    # ------------------------------------------------------------------ #
    # Sub-collection algebra
    # ------------------------------------------------------------------ #

    def count(self, mask: int) -> int:
        """Number of sets in the sub-collection ``mask``."""
        return popcount(mask)

    def partition(self, mask: int, eid: int) -> tuple[int, int]:
        """Split ``mask`` by entity ``eid`` into ``(C+, C-)``.

        ``C+`` holds the sets containing the entity (the user answered
        *yes*), ``C-`` the rest (*no*).
        """
        positive = mask & self._entity_masks.get(eid, 0)
        return positive, mask & ~positive

    def positive_count(self, mask: int, eid: int) -> int:
        """``|C+|`` without materialising the negative side."""
        return popcount(mask & self._entity_masks.get(eid, 0))

    def positive_counts(self, mask: int, eids: Iterable[int]) -> list[int]:
        """Batched :meth:`positive_count` over many entities at once.

        One kernel pass instead of a per-entity loop; on the numpy backend
        the counts for all entities come out of a single batched popcount
        over the packed bit-matrix.  Unknown entity ids count 0.
        """
        counts = self._kernel.positive_counts(mask, eids)
        return counts if isinstance(counts, list) else counts.tolist()

    def positive_counts_many(
        self, masks: Sequence[int], eids: Iterable[int]
    ) -> list[list[int]]:
        """Stacked :meth:`positive_counts`: one count list per mask.

        A single kernel pass answers the same entity questions for many
        sub-collections (sessions) at once; row ``i`` equals
        ``positive_counts(masks[i], eids)`` on every backend.
        """
        rows = self._kernel.positive_counts_many(masks, eids)
        return [
            row if isinstance(row, list) else row.tolist() for row in rows
        ]

    def partition_many(
        self, mask: int, eids: Iterable[int]
    ) -> list[tuple[int, int]]:
        """Batched :meth:`partition` over many entities at once.

        Returns ``(C+, C-)`` pairs parallel to ``eids``; the lookahead
        selectors use this to expand all children of a node in one kernel
        call.
        """
        return self._kernel.partition_many(mask, eids)

    def sets_in(self, mask: int) -> Iterator[int]:
        """Indices of the sets selected by ``mask``, ascending."""
        return iter_bits(mask)

    def entities_in(self, mask: int) -> set[int]:
        """Union of entities over the sets selected by ``mask``."""
        return self._kernel.member_union(mask)

    def informative_entities(
        self,
        mask: int,
        candidates: Iterable[int] | None = None,
    ) -> list[tuple[int, int]]:
        """Informative entities of the sub-collection ``mask``.

        An entity is *informative* (Sec. 3) when it is present in some but
        not all sets of the sub-collection; only informative entities can
        reduce the candidate space, so only they may label tree nodes.

        Returns ``(entity id, |C+|)`` pairs, in ascending entity-id order
        (identical on every backend).  ``candidates`` restricts the scan
        (children of a node only need their parent's informative entities)
        and preserves the caller's order.  Results for the no-candidates
        form are cached per mask since the same sub-collection recurs
        across lookahead invocations.
        """
        eids, counts = self.informative_stats(mask, candidates)
        if isinstance(eids, (list, tuple)):
            return list(zip(eids, counts))
        return list(zip(eids.tolist(), counts.tolist()))

    def informative_stats(
        self,
        mask: int,
        candidates: Iterable[int] | None = None,
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Informative entities as parallel ``(eids, counts)`` sequences.

        The batched form of :meth:`informative_entities` — the hot path of
        every selector.  On the numpy backend both sequences are integer
        arrays produced by one vectorized popcount pass, ready for batched
        scoring (:mod:`repro.core.kernels.scoring`); on the big-int backend
        they are plain lists.  Callers must treat the result as read-only:
        the no-candidates form is cached per mask.

        Ordering contract: ascending entity id when ``candidates`` is
        omitted (identical across backends), the caller's order otherwise.
        """
        n = popcount(mask)
        if candidates is None:
            cached = self._cache_get(mask)
            if cached is not None:
                return cached
            stats = self._freeze_stats(
                self._kernel.scan_informative(mask, n, None)
            )
            self._cache_put(mask, stats)
            return stats
        return self._kernel.scan_informative(mask, n, candidates)

    def informative_stats_many(
        self,
        masks: Sequence[int],
        candidates_list: Sequence[Iterable[int] | None] | None = None,
    ) -> list[tuple[Sequence[int], Sequence[int]]]:
        """Batched :meth:`informative_stats` over many sub-collections.

        Cache hits are returned directly; all misses are answered by *one*
        stacked kernel pass (the multi-session engine's hot path) and then
        cached, so a later per-mask :meth:`informative_stats` call on any
        of these masks is a hit.

        ``candidates_list`` optionally restricts each miss's scan.  Because
        the result is cached as if it came from a full scan, each
        restriction MUST be a superset of the mask's informative entities
        presented in ascending entity-id order — e.g. the informative
        entities of any ancestor sub-collection, which always qualify
        (narrowing can only shrink the informative set).  Results are then
        identical to the unrestricted scan, just cheaper.
        """
        out: list = [None] * len(masks)
        miss_at: list[int] = []
        miss_masks: list[int] = []
        miss_ns: list[int] = []
        miss_cands: list[Iterable[int] | None] = []
        pending: dict[int, list[int]] = {}
        for i, mask in enumerate(masks):
            cached = self._cache_get(mask)
            if cached is not None:
                out[i] = cached
                continue
            if mask in pending:  # duplicate miss: scan once, share result
                pending[mask].append(i)
                continue
            pending[mask] = [i]
            miss_at.append(i)
            miss_masks.append(mask)
            miss_ns.append(popcount(mask))
            miss_cands.append(
                candidates_list[i] if candidates_list is not None else None
            )
        if miss_masks:
            scanned = self._kernel.scan_informative_many(
                miss_masks, miss_ns, miss_cands
            )
            for mask, raw in zip(miss_masks, scanned):
                stats = self._freeze_stats(raw)
                self._cache_put(mask, stats)
                for i in pending[mask]:
                    out[i] = stats
        return out

    def _freeze_stats(
        self, raw: tuple[Sequence[int], Sequence[int]]
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Make scan results immutable before caching.

        The same objects are handed to every caller, so a mutable cached
        list would let one caller corrupt all later selections on its mask.
        """
        eids, counts = raw
        if isinstance(eids, list):
            return tuple(eids), tuple(counts)
        eids.flags.writeable = False
        counts.flags.writeable = False
        return eids, counts

    def _cache_get(
        self, mask: int
    ) -> tuple[Sequence[int], Sequence[int]] | None:
        """Cache lookup; a hit is re-marked as most recently used."""
        cache = self._informative_cache
        stats = cache.get(mask)
        if stats is not None and self._informative_cache_size is not None:
            del cache[mask]  # move to the end: dicts iterate oldest-first
            cache[mask] = stats
        return stats

    def _cache_put(
        self, mask: int, stats: tuple[Sequence[int], Sequence[int]]
    ) -> None:
        cache = self._informative_cache
        cap = self._informative_cache_size
        if cap is not None:
            while len(cache) >= max(cap, 1):
                del cache[next(iter(cache))]
        cache[mask] = stats

    def is_cached(self, mask: int) -> bool:
        """Whether ``mask``'s informative stats are cached (no LRU touch)."""
        return mask in self._informative_cache

    def release_cached(self, mask: int) -> None:
        """Drop one mask's cached stats (a finished session's footprint)."""
        self._informative_cache.pop(mask, None)

    def cached_mask_count(self) -> int:
        """Number of sub-collection masks currently held in the cache."""
        return len(self._informative_cache)

    def clear_caches(self) -> None:
        """Drop the informative-entity cache (frees memory after a run)."""
        self._informative_cache.clear()

    # ------------------------------------------------------------------ #
    # Candidate filtering (Algorithm 2, lines 2-4)
    # ------------------------------------------------------------------ #

    def supersets_of(self, initial: Iterable[Hashable]) -> int:
        """Mask of the sets that contain every entity in ``initial``.

        This is the candidate sub-collection ``CS`` seeded by the user's
        initial example set ``I``.  Labels unknown to the universe cannot be
        contained in any set, so they yield the empty mask.
        """
        mask = self._full_mask
        for label in initial:
            if label not in self.universe:
                return 0
            mask &= self._entity_masks.get(self.universe.id_of(label), 0)
            if mask == 0:
                return 0
        return mask

    def supersets_of_ids(self, initial_ids: Iterable[int]) -> int:
        """Like :meth:`supersets_of` but over already-interned entity ids."""
        mask = self._full_mask
        for eid in initial_ids:
            mask &= self._entity_masks.get(eid, 0)
            if mask == 0:
                return 0
        return mask

    def find(self, labels: Iterable[Hashable]) -> int | None:
        """Index of the set exactly equal to ``labels``, or ``None`` (O(1))."""
        try:
            fs = frozenset(self.universe.id_of(label) for label in labels)
        except KeyError:
            return None
        return self._index_by_set.get(fs)

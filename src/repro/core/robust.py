"""Error-tolerant discovery (Sec. 6, *Possibility of errors in answers*).

Users make mistakes.  With a perfect oracle, Algorithm 2's candidate
sub-collection always contains the target; a wrong answer can filter the
target out, and once the *entire* sub-collection empties the contradiction
becomes observable.  The paper sketches two recovery ideas, both
implemented here:

* **Backtracking** (:class:`BacktrackingDiscoverySession`): "backtrack when
  no target set satisfies all constraints and revisit those constraints".
  When the candidate set empties, previously given answers are revisited —
  least-confident first — by flipping one answer and replaying the
  remainder; the search over flip sets proceeds breadth-first (single
  flips, then pairs, ...) up to ``max_flips``.
* **Certainty weighting** (:func:`rank_by_violations`): "assign a level of
  certainty, and make the optimization process aware of the uncertainties".
  Instead of hard filtering, every set is scored by the confidence-weighted
  number of answers it violates; discovery then returns a ranking, and the
  target is recoverable as long as wrong answers carry less total
  confidence than right ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from .bitmask import popcount
from .collection import SetCollection
from .selection import EntitySelector, NoInformativeEntityError

#: A confident oracle returns (answer, confidence in [0, 1]).
ConfidentOracle = Callable[[int], tuple[bool, float]]


@dataclass(frozen=True)
class AnsweredQuestion:
    """One answer with an attached confidence."""

    entity: int
    answer: bool
    confidence: float = 1.0


def consistent_mask(
    collection: SetCollection,
    base_mask: int,
    answers: Iterable[AnsweredQuestion],
) -> int:
    """Sets of ``base_mask`` consistent with every answer."""
    mask = base_mask
    for qa in answers:
        positive = mask & collection.entity_mask(qa.entity)
        mask = positive if qa.answer else mask & ~positive
        if mask == 0:
            break
    return mask


def violation_scores(
    collection: SetCollection,
    base_mask: int,
    answers: Iterable[AnsweredQuestion],
) -> dict[int, float]:
    """Confidence-weighted violation count per candidate set.

    A set violates a *yes* answer when it lacks the entity, and a *no*
    answer when it contains it; each violation costs that answer's
    confidence.  Zero score means fully consistent.
    """
    answers = list(answers)
    scores: dict[int, float] = {}
    for idx in collection.sets_in(base_mask):
        members = collection.sets[idx]
        score = 0.0
        for qa in answers:
            holds = qa.entity in members
            if holds != qa.answer:
                score += qa.confidence
        scores[idx] = score
    return scores


def rank_by_violations(
    collection: SetCollection,
    base_mask: int,
    answers: Iterable[AnsweredQuestion],
) -> list[tuple[int, float]]:
    """Candidates of ``base_mask`` ranked best-first by violation score."""
    scores = violation_scores(collection, base_mask, answers)
    return sorted(scores.items(), key=lambda kv: (kv[1], kv[0]))


@dataclass
class RobustDiscoveryResult:
    """Outcome of an error-tolerant discovery run."""

    candidates: list[int]
    answers: list[AnsweredQuestion] = field(default_factory=list)
    #: answers the recovery decided were wrong (flipped), question order
    flipped: list[int] = field(default_factory=list)
    #: total questions asked, including those asked again after backtracks
    n_questions: int = 0
    backtracks: int = 0

    @property
    def resolved(self) -> bool:
        return len(self.candidates) == 1

    @property
    def target(self) -> int:
        if not self.resolved:
            raise ValueError(
                f"discovery ended with {len(self.candidates)} candidates"
            )
        return self.candidates[0]


class BacktrackingDiscoverySession:
    """Discovery that survives wrong answers by revisiting them.

    The loop mirrors Algorithm 2, but instead of mutating a single mask it
    keeps the full answer list and recomputes consistency.  On
    contradiction (no set satisfies every answer), it searches for the
    smallest set of answers to flip — trying low-confidence answers first —
    such that the remaining constraints are satisfiable, then resumes.

    ``max_flips`` bounds the flip-set size (the number of user errors the
    session can recover from); beyond it, the best-effort ranking is
    returned instead of an exact result.
    """

    def __init__(
        self,
        collection: SetCollection,
        selector: EntitySelector,
        initial: Iterable[Hashable] = (),
        max_flips: int = 2,
        max_questions: int | None = None,
        verify_questions: int = 0,
    ) -> None:
        if max_flips < 0:
            raise ValueError("max_flips must be non-negative")
        if verify_questions < 0:
            raise ValueError("verify_questions must be non-negative")
        self.collection = collection
        self.selector = selector
        self.max_flips = max_flips
        self.max_questions = max_questions
        self.verify_questions = verify_questions
        self._base_mask = collection.supersets_of(initial)
        self._answers: list[AnsweredQuestion] = []
        self._flipped: set[int] = set()
        self._n_questions = 0
        self._backtracks = 0

    # ------------------------------------------------------------------ #

    def _current_mask(self) -> int:
        return consistent_mask(
            self.collection, self._base_mask, self._answers
        )

    def _try_recover(self) -> bool:
        """Flip the cheapest answer subset that restores consistency.

        Returns True on success.  Single flips are tried before pairs
        (breadth-first in flip-set size), and within a size, subsets with
        the lowest total confidence first — the least trusted answers are
        the most likely mistakes.
        """
        indices = [
            i for i in range(len(self._answers)) if i not in self._flipped
        ]
        for size in range(1, self.max_flips - len(self._flipped) + 1):
            combos = sorted(
                itertools.combinations(indices, size),
                key=lambda combo: sum(
                    self._answers[i].confidence for i in combo
                ),
            )
            for combo in combos:
                trial = list(self._answers)
                for i in combo:
                    qa = trial[i]
                    trial[i] = AnsweredQuestion(
                        qa.entity, not qa.answer, qa.confidence
                    )
                if consistent_mask(
                    self.collection, self._base_mask, trial
                ):
                    self._answers = trial
                    self._flipped.update(combo)
                    self._backtracks += 1
                    return True
        return False

    # ------------------------------------------------------------------ #

    def run(self, oracle: ConfidentOracle) -> RobustDiscoveryResult:
        """Drive the loop; ``oracle`` returns ``(answer, confidence)``.

        With ``verify_questions > 0``, reaching a single candidate does not
        end the session immediately: up to that many extra questions are
        asked about entities distinguishing the found set from the
        next-most-plausible candidate.  A wrong earlier answer usually
        steers the search to a wrong leaf *without* a contradiction (every
        answer pattern leads somewhere); verification converts such silent
        mistakes into detectable contradictions that backtracking can fix.
        """
        asked: set[int] = set()
        verifications_left = self.verify_questions
        while True:
            mask = self._current_mask()
            if mask == 0:
                if not self._try_recover():
                    return self._best_effort()
                continue
            if (
                self.max_questions is not None
                and self._n_questions >= self.max_questions
            ):
                break
            if popcount(mask) == 1:
                if verifications_left <= 0:
                    break
                entity = self._verification_entity(mask, asked)
                if entity is None:
                    break
                verifications_left -= 1
            else:
                try:
                    entity = self.selector.select(
                        self.collection, mask, exclude=asked
                    )
                except NoInformativeEntityError:
                    break
            asked.add(entity)
            answer, confidence = oracle(entity)
            self._n_questions += 1
            self._answers.append(
                AnsweredQuestion(entity, answer, confidence)
            )
        mask = self._current_mask()
        return RobustDiscoveryResult(
            candidates=list(self.collection.sets_in(mask)),
            answers=list(self._answers),
            flipped=sorted(self._flipped),
            n_questions=self._n_questions,
            backtracks=self._backtracks,
        )

    def _verification_entity(
        self, mask: int, asked: "set[int]"
    ) -> int | None:
        """An unasked entity separating the found set from the runner-up.

        The runner-up is the best-scoring *other* set under the
        confidence-weighted violation ranking; entities in the symmetric
        difference of the two sets are exactly the questions whose answer
        can tell them apart.
        """
        found_idx = next(iter(self.collection.sets_in(mask)))
        ranking = rank_by_violations(
            self.collection, self._base_mask, self._answers
        )
        found_members = self.collection.sets[found_idx]
        for other_idx, _score in ranking:
            if other_idx == found_idx:
                continue
            diff = found_members ^ self.collection.sets[other_idx]
            fresh = sorted(e for e in diff if e not in asked)
            if fresh:
                return fresh[0]
        return None

    def _best_effort(self) -> RobustDiscoveryResult:
        """Certainty-weighted fallback when flips cannot restore
        consistency: rank all initial candidates by violation score."""
        ranking = rank_by_violations(
            self.collection, self._base_mask, self._answers
        )
        best_score = ranking[0][1] if ranking else 0.0
        best = [idx for idx, score in ranking if score == best_score]
        return RobustDiscoveryResult(
            candidates=best,
            answers=list(self._answers),
            flipped=sorted(self._flipped),
            n_questions=self._n_questions,
            backtracks=self._backtracks,
        )


def with_confidence(
    oracle: Callable[[int], bool], confidence: float = 1.0
) -> ConfidentOracle:
    """Adapt a plain bool oracle to the (answer, confidence) protocol."""
    if not 0.0 <= confidence <= 1.0:
        raise ValueError("confidence must be in [0, 1]")

    def wrapped(entity: int) -> tuple[bool, float]:
        return bool(oracle(entity)), confidence

    return wrapped

"""Offline tree index (Sec. 4.5, *Offline tree construction*).

"Our tree construction may be done offline for static collections, for
example, when the initial query sets are known in advance or are always
empty.  An offline construction may be useful when the same decision tree
is constructed multiple times or is used by multiple queries."

A :class:`TreeIndex` is exactly that artifact: a persistent map from an
initial example set (canonicalised) to the precomputed decision tree over
its candidate sub-collection.  Discoveries against an indexed initial set
follow a single root-to-leaf path with zero selection cost; unindexed
initial sets either fall back to online construction or raise, as
configured.

The index serialises to a single JSON file next to the collection; trees
are stored via :meth:`~repro.core.tree.DecisionTree.to_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterable

from .bitmask import single_bit
from .collection import SetCollection
from .construction import build_tree
from .discovery import DiscoveryResult, Oracle, TreeDiscoverySession
from .selection import EntitySelector
from .tree import DecisionTree


def _key_for(collection: SetCollection, initial: Iterable[Hashable]) -> str:
    """Canonical string key for an initial example set.

    Entity ids (not labels) are used so the key survives label types;
    order-independent via sorting.
    """
    ids = sorted(
        collection.universe.id_of(label)
        for label in set(initial)
        if label in collection.universe
    )
    return ",".join(str(i) for i in ids)


class TreeIndex:
    """Precomputed decision trees keyed by initial example set."""

    def __init__(self, collection: SetCollection) -> None:
        self.collection = collection
        self._trees: dict[str, DecisionTree] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add(
        self,
        initial: Iterable[Hashable],
        selector: EntitySelector,
    ) -> DecisionTree | None:
        """Build and index the tree for one initial set.

        Returns the tree, or ``None`` when the initial set matches fewer
        than two candidate sets (nothing to precompute: zero candidates
        cannot be searched, one candidate needs no questions).
        """
        initial = list(initial)
        mask = self.collection.supersets_of(initial)
        if mask == 0 or single_bit(mask):
            return None
        selector.reset()
        tree = build_tree(self.collection, selector, mask)
        self._trees[_key_for(self.collection, initial)] = tree
        return tree

    def add_all(
        self,
        initial_sets: Iterable[Iterable[Hashable]],
        selector: EntitySelector,
    ) -> int:
        """Index many initial sets; returns how many produced trees."""
        added = 0
        for initial in initial_sets:
            if self.add(initial, selector) is not None:
                added += 1
        return added

    # ------------------------------------------------------------------ #
    # Lookup and discovery
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._trees)

    def __contains__(self, initial: Iterable[Hashable]) -> bool:
        return _key_for(self.collection, initial) in self._trees

    def get(self, initial: Iterable[Hashable]) -> DecisionTree | None:
        return self._trees.get(_key_for(self.collection, initial))

    def discover(
        self,
        initial: Iterable[Hashable],
        oracle: Oracle,
        fallback: EntitySelector | None = None,
    ) -> DiscoveryResult:
        """Run a discovery for ``initial`` using the indexed tree.

        Unindexed initial sets use ``fallback`` for online selection
        (Algorithm 2) when given, otherwise raise ``KeyError``.
        """
        initial = list(initial)
        tree = self.get(initial)
        if tree is not None:
            return TreeDiscoverySession(self.collection, tree).run(oracle)
        if fallback is None:
            raise KeyError(
                f"initial set {initial!r} is not indexed and no fallback "
                "selector was given"
            )
        from .discovery import DiscoverySession

        return DiscoverySession(
            self.collection, fallback, initial=initial
        ).run(oracle)

    def stats(self) -> dict[str, float]:
        """Aggregate quality of the indexed trees."""
        if not self._trees:
            return {"trees": 0, "mean_ad": 0.0, "max_height": 0}
        ads = []
        heights = []
        for tree in self._trees.values():
            depths = tree.depths()
            ads.append(sum(depths) / len(depths))
            heights.append(max(depths))
        return {
            "trees": len(self._trees),
            "mean_ad": sum(ads) / len(ads),
            "max_height": max(heights),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: "Path | str") -> None:
        payload = {
            "n_sets": self.collection.n_sets,
            "trees": {
                key: tree.to_dict() for key, tree in self._trees.items()
            },
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(
        cls, collection: SetCollection, path: "Path | str"
    ) -> "TreeIndex":
        """Load an index; validates it was built for a same-sized
        collection (full structural validation is per-tree on use)."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("n_sets") != collection.n_sets:
            raise ValueError(
                f"index was built for {payload.get('n_sets')} sets; "
                f"collection has {collection.n_sets}"
            )
        index = cls(collection)
        for key, data in payload["trees"].items():
            index._trees[key] = DecisionTree.from_dict(data)
        return index

"""Bitmask algebra over sub-collections.

Sub-collections of a :class:`~repro.core.collection.SetCollection` are
represented as arbitrary-precision Python integers used as bitsets: bit ``i``
set means "set number ``i`` is a member of this sub-collection".  Python's
big-int bitwise operations run at C speed, which makes partitioning a
sub-collection by an entity a couple of machine-level AND operations even
when the collection holds hundreds of thousands of sets.

All helpers here are pure functions of plain ints so they are trivially
reusable by every module (bounds, lookahead, optimal search, experiments).
"""

from __future__ import annotations

from typing import Iterable, Iterator


def full_mask(n: int) -> int:
    """Mask selecting all of sets ``0..n-1``."""
    if n < 0:
        raise ValueError(f"collection size must be non-negative, got {n}")
    return (1 << n) - 1


def bit(i: int) -> int:
    """Mask selecting only set ``i``."""
    if i < 0:
        raise ValueError(f"set indices are non-negative, got {i}")
    return 1 << i


def popcount(mask: int) -> int:
    """Number of sets selected by ``mask``."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order.

    >>> list(iter_bits(0b10110))
    [1, 2, 4]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def lowest_bit(mask: int) -> int:
    """Index of the lowest set bit; raises on the empty mask."""
    if mask == 0:
        raise ValueError("empty mask has no bits")
    return (mask & -mask).bit_length() - 1

def single_bit(mask: int) -> bool:
    """True when exactly one set is selected."""
    return mask != 0 and mask & (mask - 1) == 0


def mask_of(indices: Iterable[int]) -> int:
    """Build a mask from any iterable of set indices.

    Accepts every iterable — lists, tuples, sets, generators — not just the
    concrete types the old annotation named.

    >>> mask_of([1, 2, 4])
    22
    >>> mask_of(())
    0
    >>> mask_of({0})
    1
    >>> mask_of(i for i in range(3))
    7
    >>> mask_of([3, 3]) == mask_of([3])
    True
    """
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


def subtract(mask: int, other: int) -> int:
    """Sets in ``mask`` but not in ``other`` (``C - P`` in Algorithm 2)."""
    return mask & ~other

"""Prior-aware online discovery (Sec. 7 future work, online half).

:mod:`repro.core.priors` handles the *offline* side of non-uniform targets
(weighted costs, weighted trees); this module is the *online* counterpart:
a discovery session that tracks the posterior over candidate sets as
answers arrive and can stop early once one candidate holds enough of the
probability mass — the natural halt condition Γ when targets are not
equally likely (a triage machine does not need certainty to suggest the
overwhelmingly probable diagnosis).

With a uniform prior and ``confidence_threshold=1.0`` the session behaves
exactly like :class:`~repro.core.discovery.DiscoverySession` (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from .bitmask import iter_bits, popcount
from .collection import SetCollection
from .discovery import Oracle
from .priors import Prior, WeightedEvenSelector
from .selection import EntitySelector, NoInformativeEntityError


@dataclass
class PosteriorResult:
    """Outcome of a posterior-driven discovery run."""

    #: candidates with their posterior probability, best first
    ranked: list[tuple[int, float]] = field(default_factory=list)
    n_questions: int = 0
    stopped_early: bool = False

    @property
    def top(self) -> int:
        if not self.ranked:
            raise ValueError("no candidate remains")
        return self.ranked[0][0]

    @property
    def top_probability(self) -> float:
        if not self.ranked:
            return 0.0
        return self.ranked[0][1]

    @property
    def resolved(self) -> bool:
        return len(self.ranked) == 1


class PosteriorDiscoverySession:
    """Discovery that stops once one candidate is probable enough.

    Parameters
    ----------
    collection, prior:
        The closed collection and a prior over its sets.
    selector:
        Defaults to the weighted most-even rule for the prior; any
        :class:`~repro.core.selection.EntitySelector` works.
    confidence_threshold:
        Stop as soon as some candidate's posterior reaches this value.
        1.0 (the paper's base setting) demands logical certainty — a
        single surviving candidate — so a confident prior alone never
        ends a session.
    max_questions:
        Optional hard cap (halt condition Γ).
    """

    def __init__(
        self,
        collection: SetCollection,
        prior: Prior,
        selector: EntitySelector | None = None,
        initial: Iterable[Hashable] = (),
        confidence_threshold: float = 1.0,
        max_questions: int | None = None,
    ) -> None:
        if prior.collection is not collection:
            raise ValueError("prior belongs to a different collection")
        if not 0.0 < confidence_threshold <= 1.0:
            raise ValueError(
                "confidence_threshold must be in (0, 1], got "
                f"{confidence_threshold}"
            )
        self.collection = collection
        self.prior = prior
        self.selector = selector or WeightedEvenSelector(prior)
        self.confidence_threshold = confidence_threshold
        self.max_questions = max_questions
        self._mask = collection.supersets_of(initial)
        self._n_questions = 0

    # ------------------------------------------------------------------ #

    def posterior(self) -> list[tuple[int, float]]:
        """Current posterior over consistent candidates, best first.

        The posterior is the prior restricted to the consistent mask and
        renormalised; with zero surviving mass (the target had zero prior)
        the restriction falls back to uniform over survivors.
        """
        indices = list(iter_bits(self._mask))
        if not indices:
            return []
        weights = [self.prior.p[i] for i in indices]
        total = sum(weights)
        if total <= 0:
            weights = [1.0] * len(indices)
            total = float(len(indices))
        ranked = sorted(
            zip(indices, (w / total for w in weights)),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked

    @property
    def n_candidates(self) -> int:
        return popcount(self._mask)

    def _confident(self) -> bool:
        # Threshold 1.0 demands *logical* certainty (a single surviving
        # candidate), not a prior that merely claims probability 1 — a
        # point-mass prior must not end the session before any evidence.
        if self.confidence_threshold >= 1.0:
            return False
        ranked = self.posterior()
        return bool(ranked) and ranked[0][1] >= self.confidence_threshold

    @property
    def finished(self) -> bool:
        if popcount(self._mask) <= 1:
            return True
        if self._confident():
            return True
        if (
            self.max_questions is not None
            and self._n_questions >= self.max_questions
        ):
            return True
        return False

    # ------------------------------------------------------------------ #

    def run(self, oracle: Oracle) -> PosteriorResult:
        stopped_early = False
        excluded: set[int] = set()
        while not self.finished:
            try:
                entity = self.selector.select(
                    self.collection, self._mask, exclude=excluded
                )
            except NoInformativeEntityError:
                break
            answer = oracle(entity)
            self._n_questions += 1
            if answer is None:
                excluded.add(entity)
                continue
            positive = self._mask & self.collection.entity_mask(entity)
            self._mask = positive if answer else self._mask & ~positive
        ranked = self.posterior()
        if len(ranked) > 1 and self._confident():
            stopped_early = True
        return PosteriorResult(
            ranked=ranked,
            n_questions=self._n_questions,
            stopped_early=stopped_early,
        )

"""Vectorized backend: the inverted index as a packed ``uint64`` bit-matrix.

Layout: row ``r`` of ``matrix`` (shape ``(n_entities, ceil(n_sets / 64))``)
is the little-endian 64-bit-word packing of entity ``row_eids[r]``'s big-int
set mask.  A sub-collection mask packs the same way into one word vector, so
the split counts of *all* candidate entities are one broadcast AND plus one
batched popcount::

    counts = popcount(matrix & mask_words).sum(axis=1)

which replaces the per-entity Python loop of the big-int reference with a
handful of C-level passes.  Big-int masks remain the sub-collection currency
of the whole package; packing/unpacking happens only at the kernel boundary
(``int.to_bytes`` / ``int.from_bytes`` are C-speed).

For small sub-collections deep in lookahead recursions a full-matrix pass
would touch far more rows than the union of member sets; below a crossover
the scan falls back to gathering just the union's rows.  Both paths return
identical, ascending-entity-id results.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .base import EntityStatsKernel

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

HAS_NUMPY = np is not None

if HAS_NUMPY and hasattr(np, "bitwise_count"):

    def _popcount_rows(words: "np.ndarray") -> "np.ndarray":
        """Per-row popcount of a 2-D uint64 word array."""
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

elif HAS_NUMPY:  # pragma: no cover - NumPy < 2.0 fallback

    def _popcount_rows(words: "np.ndarray") -> "np.ndarray":
        bits = np.unpackbits(words.view(np.uint8), axis=1)
        return bits.sum(axis=1, dtype=np.int64)


class NumpyKernel(EntityStatsKernel):
    """Entity statistics via one batched popcount over a bit-matrix."""

    name = "numpy"

    def __init__(
        self,
        sets: Sequence[frozenset[int]],
        entity_masks: dict[int, int],
        n_sets: int,
    ) -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend_name
            raise RuntimeError("NumpyKernel requires numpy")
        super().__init__(sets, entity_masks, n_sets)
        self._n_words = max(1, (n_sets + 63) // 64)
        self._n_bytes = self._n_words * 8
        self._valid = (1 << n_sets) - 1
        row_eids = np.fromiter(
            sorted(entity_masks), dtype=np.int64, count=len(entity_masks)
        )
        matrix = np.empty((len(row_eids), self._n_words), dtype=np.uint64)
        for row, eid in enumerate(row_eids.tolist()):
            matrix[row] = np.frombuffer(
                entity_masks[eid].to_bytes(self._n_bytes, "little"),
                dtype=np.uint64,
            )
        self._row_eids = row_eids
        self._matrix = matrix
        self._row_of = {eid: row for row, eid in enumerate(row_eids.tolist())}
        total_membership = sum(len(s) for s in sets)
        self._avg_set_size = total_membership / n_sets if n_sets else 0.0

    # ------------------------------------------------------------------ #
    # Packing helpers
    # ------------------------------------------------------------------ #

    def _words_of(self, mask: int) -> "np.ndarray":
        """Pack a sub-collection big-int into a uint64 word vector.

        Bits above ``n_sets`` are dropped; they cannot intersect any entity
        mask, and the big-int reference ignores them identically on the
        positive side.
        """
        return np.frombuffer(
            (mask & self._valid).to_bytes(self._n_bytes, "little"),
            dtype=np.uint64,
        )

    def _rows_for(
        self, eids: Iterable[int]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(row indices, known?)`` arrays for an entity id sequence."""
        row_of = self._row_of
        idx = np.fromiter(
            (row_of.get(int(e), -1) for e in eids), dtype=np.int64
        )
        return idx, idx >= 0

    # ------------------------------------------------------------------ #
    # EntityStatsKernel API
    # ------------------------------------------------------------------ #

    def positive_counts(self, mask: int, eids: Iterable[int]) -> "np.ndarray":
        idx, known = self._rows_for(eids)
        words = self._words_of(mask)
        counts = np.zeros(len(idx), dtype=np.int64)
        if known.any():
            counts[known] = _popcount_rows(self._matrix[idx[known]] & words)
        return counts

    def partition_many(
        self, mask: int, eids: Iterable[int]
    ) -> list[tuple[int, int]]:
        idx, known = self._rows_for(eids)
        words = self._words_of(mask)
        positive_words = np.zeros((len(idx), self._n_words), dtype=np.uint64)
        if known.any():
            positive_words[known] = self._matrix[idx[known]] & words
        out = []
        for row in positive_words:
            positive = int.from_bytes(row.tobytes(), "little")
            out.append((positive, mask & ~positive))
        return out

    def scan_informative(
        self,
        mask: int,
        n_selected: int,
        candidates: Iterable[int] | None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        words = self._words_of(mask)
        if candidates is None:
            # Crossover: a full-matrix pass costs one row per entity of the
            # collection; walking the union costs roughly the summed sizes
            # of the selected sets.  Deep recursion masks are tiny, root
            # masks are huge — pick per call.
            union_estimate = n_selected * self._avg_set_size
            if union_estimate >= len(self._row_eids) / 4:
                counts = _popcount_rows(self._matrix & words)
                keep = (counts > 0) & (counts < n_selected)
                return self._row_eids[keep], counts[keep]
            union = self.member_union(mask)
            eids = np.fromiter(sorted(union), dtype=np.int64, count=len(union))
        else:
            eids = np.fromiter((int(e) for e in candidates), dtype=np.int64)
        counts = self.positive_counts(mask, eids)
        keep = (counts > 0) & (counts < n_selected)
        return eids[keep], counts[keep]

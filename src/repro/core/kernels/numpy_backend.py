"""Vectorized backend: the inverted index as a packed ``uint64`` bit-matrix.

Layout: row ``r`` of ``matrix`` (shape ``(n_entities, ceil(n_sets / 64))``)
is the little-endian 64-bit-word packing of entity ``row_eids[r]``'s big-int
set mask.  A sub-collection mask packs the same way into one word vector, so
the split counts of *all* candidate entities are one broadcast AND plus one
batched popcount::

    counts = popcount(matrix & mask_words).sum(axis=1)

which replaces the per-entity Python loop of the big-int reference with a
handful of C-level passes.  Big-int masks remain the sub-collection currency
of the whole package; packing/unpacking happens only at the kernel boundary
(``int.to_bytes`` / ``int.from_bytes`` are C-speed).

For small sub-collections deep in lookahead recursions a full-matrix pass
would touch far more rows than the union of member sets; below a calibrated
crossover (:mod:`repro.core.kernels.tuning`) the scan switches to the
set-major CSR gather (or, on tiny collections, to gathering just the
member union's rows).  All paths return identical, ascending-entity-id
results — routing is a throughput decision, never a semantic one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .base import EntityStatsKernel, KernelDelta
from .tuning import CSR_MIN_MEMBERSHIP, KernelTuning, get_tuning

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

HAS_NUMPY = np is not None

if HAS_NUMPY and hasattr(np, "bitwise_count"):

    def _popcount_rows(words: "np.ndarray") -> "np.ndarray":
        """Popcount of a uint64 word array, summed over the last axis."""
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)

elif HAS_NUMPY:  # pragma: no cover - NumPy < 2.0 fallback

    def _popcount_rows(words: "np.ndarray") -> "np.ndarray":
        flat = words.reshape(-1, words.shape[-1])
        bits = np.unpackbits(flat.view(np.uint8), axis=1)
        return bits.sum(axis=1, dtype=np.int64).reshape(words.shape[:-1])


#: Byte budget for the ``(n_entities, chunk, n_words)`` temporary of the
#: stacked full-matrix scan; masks beyond it are processed in chunks.
_STACKED_SCAN_BUDGET = 32 << 20


class NumpyKernel(EntityStatsKernel):
    """Entity statistics via one batched popcount over a bit-matrix."""

    name = "numpy"

    def __init__(
        self,
        sets: Sequence[frozenset[int]],
        entity_masks: dict[int, int],
        n_sets: int,
        tuning: "KernelTuning | None" = None,
    ) -> None:
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_backend_name
            raise RuntimeError("NumpyKernel requires numpy")
        super().__init__(sets, entity_masks, n_sets)
        self._tuning = tuning if tuning is not None else get_tuning()
        self._n_words = max(1, (n_sets + 63) // 64)
        self._n_bytes = self._n_words * 8
        row_eids = np.fromiter(
            sorted(entity_masks), dtype=np.int64, count=len(entity_masks)
        )
        matrix = np.empty((len(row_eids), self._n_words), dtype=np.uint64)
        for row, eid in enumerate(row_eids.tolist()):
            matrix[row] = np.frombuffer(
                entity_masks[eid].to_bytes(self._n_bytes, "little"),
                dtype=np.uint64,
            )
        self._row_eids = row_eids
        self._matrix = matrix
        self._row_of = {eid: row for row, eid in enumerate(row_eids.tolist())}
        # Set-major (CSR) mirror of the index, built lazily by the stacked
        # scans: row indices of each set's members, concatenated.
        self._set_indptr: "np.ndarray | None" = None
        self._set_flat_rows: "np.ndarray | None" = None
        # When entity ids are dense (0..E-1, the common Universe interning
        # outcome), row index == entity id and array-valued candidate
        # lookups skip the per-element dict walk entirely.
        self._rows_dense = bool(
            len(row_eids)
            and int(row_eids[0]) == 0
            and int(row_eids[-1]) == len(row_eids) - 1
        )
        self._total_membership = sum(len(s) for s in sets)
        self._avg_set_size = self._total_membership / n_sets if n_sets else 0.0

    # ------------------------------------------------------------------ #
    # Copy-on-write delta construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_delta(
        cls,
        old: "NumpyKernel",
        sets: Sequence[frozenset[int]],
        entity_masks: dict[int, int],
        n_sets: int,
        delta: KernelDelta,
    ) -> "NumpyKernel":
        """Kernel over a delta-applied index, patching the parent's matrix.

        The expensive part of :meth:`__init__` is the per-entity big-int
        pack loop over the whole index; a delta touching ``k`` set slots
        only needs those ``k`` *columns* rewritten, so this copies the
        parent matrix (a flat memcpy) and patches the dirty bit columns,
        grouped by 64-bit word.  When the entity row set changed, surviving
        rows are gathered from the parent and rows of brand-new entities
        start zero — correct, because a new entity's membership lies
        entirely in dirty slots, which the patch rewrites wholesale.

        Works for any subclass (the native backend inherits it via
        ``cls``); the parent matrix is never modified, so epoch N readers
        keep an exact snapshot.
        """
        self = cls.__new__(cls)
        EntityStatsKernel.__init__(self, sets, entity_masks, n_sets)
        self._tuning = old._tuning
        self._n_words = max(1, (n_sets + 63) // 64)
        self._n_bytes = self._n_words * 8
        copy_words = min(self._n_words, old._n_words)
        row_eids = np.fromiter(
            sorted(entity_masks), dtype=np.int64, count=len(entity_masks)
        )
        if len(row_eids) == len(old._row_eids) and np.array_equal(
            row_eids, old._row_eids
        ):
            row_eids = old._row_eids  # share the parent's row frame
            self._row_of = old._row_of
            self._rows_dense = old._rows_dense
            if self._n_words == old._n_words:
                matrix = old._matrix.copy()
            else:
                matrix = np.zeros(
                    (len(row_eids), self._n_words), dtype=np.uint64
                )
                matrix[:, :copy_words] = old._matrix[:, :copy_words]
        else:
            matrix = np.zeros((len(row_eids), self._n_words), dtype=np.uint64)
            if len(row_eids) and len(old._row_eids):
                pos = np.searchsorted(old._row_eids, row_eids)
                pos = np.minimum(pos, len(old._row_eids) - 1)
                kept = old._row_eids[pos] == row_eids
                matrix[kept, :copy_words] = old._matrix[pos[kept], :copy_words]
            self._row_of = {
                eid: row for row, eid in enumerate(row_eids.tolist())
            }
            self._rows_dense = bool(
                len(row_eids)
                and int(row_eids[0]) == 0
                and int(row_eids[-1]) == len(row_eids) - 1
            )
        self._row_eids = row_eids
        # Patch the dirty columns, grouped by word: one vectorized clear
        # per touched word, then one row-scatter OR per dirty set.
        row_of = self._row_of
        clear_bits: dict[int, int] = {}
        set_bits: dict[int, list[tuple[int, "np.ndarray"]]] = {}
        for slot in delta.dirty_new:
            word, bit = divmod(slot, 64)
            clear_bits[word] = clear_bits.get(word, 0) | (1 << bit)
            members = sets[slot]
            if members:
                rows = np.fromiter(
                    (row_of[e] for e in members),
                    dtype=np.int64,
                    count=len(members),
                )
                set_bits.setdefault(word, []).append((1 << bit, rows))
        for slot in delta.dirty_old:
            # Vacated/truncated old columns that still fall inside the new
            # word range carry stale bits (shared rows keep the parent's
            # words); clear them.  dirty_new slots are covered above.
            if slot < self._n_words * 64:
                word, bit = divmod(slot, 64)
                clear_bits[word] = clear_bits.get(word, 0) | (1 << bit)
        for word, bits in clear_bits.items():
            if word < self._n_words:
                matrix[:, word] &= np.uint64(0xFFFFFFFFFFFFFFFF ^ bits)
        for word, patches in set_bits.items():
            column = matrix[:, word]
            for bit, rows in patches:
                column[rows] |= np.uint64(bit)
        if n_sets < self._n_words * 64:
            # Bits at/above n_sets select nothing anywhere, but keep the
            # matrix canonical (CSR builds and tests compare it raw).
            tail = n_sets - (self._n_words - 1) * 64
            matrix[:, -1] &= np.uint64((1 << tail) - 1)
        self._matrix = matrix
        self._set_indptr = None  # CSR mirror rebuilt lazily on demand
        self._set_flat_rows = None
        self._total_membership = (
            old._total_membership
            - sum(len(old._sets[j]) for j in delta.dirty_old)
            + sum(len(sets[j]) for j in delta.dirty_new)
        )
        self._avg_set_size = self._total_membership / n_sets if n_sets else 0.0
        return self

    # ------------------------------------------------------------------ #
    # Packing helpers
    # ------------------------------------------------------------------ #

    def _words_of(self, mask: int) -> "np.ndarray":
        """Pack a sub-collection big-int into a uint64 word vector.

        Bits above ``n_sets`` are dropped; they cannot intersect any entity
        mask, and the big-int reference ignores them identically on the
        positive side.
        """
        return np.frombuffer(
            (mask & self._valid).to_bytes(self._n_bytes, "little"),
            dtype=np.uint64,
        )

    def _rows_for(
        self, eids: Iterable[int]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(row indices, known?)`` arrays for an entity id sequence."""
        if self._rows_dense and isinstance(eids, np.ndarray):
            idx = eids.astype(np.int64, copy=False)
            known = (idx >= 0) & (idx < len(self._row_eids))
            return np.where(known, idx, -1), known
        row_of = self._row_of
        idx = np.fromiter(
            (row_of.get(int(e), -1) for e in eids), dtype=np.int64
        )
        return idx, idx >= 0

    # ------------------------------------------------------------------ #
    # EntityStatsKernel API
    # ------------------------------------------------------------------ #

    def positive_counts(self, mask: int, eids: Iterable[int]) -> "np.ndarray":
        idx, known = self._rows_for(eids)
        words = self._words_of(mask)
        counts = np.zeros(len(idx), dtype=np.int64)
        if known.any():
            counts[known] = _popcount_rows(self._matrix[idx[known]] & words)
        return counts

    def partition_many(
        self, mask: int, eids: Iterable[int]
    ) -> list[tuple[int, int]]:
        idx, known = self._rows_for(eids)
        words = self._words_of(mask)
        positive_words = np.zeros((len(idx), self._n_words), dtype=np.uint64)
        if known.any():
            positive_words[known] = self._matrix[idx[known]] & words
        out = []
        for row in positive_words:
            positive = int.from_bytes(row.tobytes(), "little")
            out.append((positive, mask & ~positive))
        return out

    def _row_unit_cost(self) -> float:
        """Cost of one row-pass element in the tuned units.

        The routing hook subclasses override: the native backend's fused C
        sweep is cheaper per element, so it scales this unit down
        (``tuning.native_row_cost``) instead of duplicating the formula.
        """
        return self._tuning.row_cost

    def _set_major_wins(self, n_selected: int, width: int) -> bool:
        """Tuned cost model: set-major gather vs bit-matrix row pass.

        In calibrated "row-pass element" units: the gather pays the mask
        unpack plus ``member_cost`` per membership of the selected sets; a
        row pass pays :meth:`_row_unit_cost` per (candidate, nonzero mask
        word) element.  Small masks are membership-bound, big masks
        width-bound — route per mask.
        """
        t = self._tuning
        member = (
            self._n_sets / 8
            + n_selected * self._avg_set_size * t.member_cost
        )
        row = (
            width * min(self._n_words, n_selected + 1) * self._row_unit_cost()
        )
        return member < row

    def _route_set_major(self, n_selected: int, width: int) -> bool:
        """:meth:`_set_major_wins` plus the mirror-build amortization guard.

        On tiny collections the one-off CSR build is pure overhead, so the
        set-major route is only taken once the mirror exists or the total
        membership is large enough to amortize it.  Shared by the
        single-mask scan and the sharded per-shard routing so the guard
        lives in exactly one place.
        """
        return self._set_major_wins(n_selected, width) and (
            self._set_indptr is not None
            or self._total_membership >= CSR_MIN_MEMBERSHIP
        )

    def scan_informative(
        self,
        mask: int,
        n_selected: int,
        candidates: Iterable[int] | None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        words = self._words_of(mask)
        if candidates is None:
            # Three strategies, picked per call by the calibrated cost
            # model: deep recursion masks are tiny (membership-bound), root
            # masks are huge (width-bound), and on tiny collections the
            # plain member-union gather avoids building the CSR mirror.
            n_rows = len(self._row_eids)
            if self._route_set_major(n_selected, n_rows):
                counts = self._counts_by_members(mask, words)
                keep = (counts > 0) & (counts < n_selected)
                return self._row_eids[keep], counts[keep]
            union_estimate = n_selected * self._avg_set_size
            if union_estimate >= n_rows / 4:
                counts = _popcount_rows(self._matrix & words)
                keep = (counts > 0) & (counts < n_selected)
                return self._row_eids[keep], counts[keep]
            union = self.member_union(mask)
            eids = np.fromiter(sorted(union), dtype=np.int64, count=len(union))
        else:
            eids = np.fromiter((int(e) for e in candidates), dtype=np.int64)
        counts = self.positive_counts(mask, eids)
        keep = (counts > 0) & (counts < n_selected)
        return eids[keep], counts[keep]

    # ------------------------------------------------------------------ #
    # Stacked-mask API (multi-session serving)
    # ------------------------------------------------------------------ #

    def _stack_words(self, masks: Sequence[int]) -> "np.ndarray":
        """Pack many sub-collection masks into a (n_masks, n_words) matrix."""
        words = np.empty((len(masks), self._n_words), dtype=np.uint64)
        for row, mask in enumerate(masks):
            words[row] = self._words_of(mask)
        return words

    def _ensure_set_rows(self) -> None:
        """Build the set-major CSR mirror (member row indices per set).

        Derived from the bit matrix itself: unpacking it to booleans and
        taking the transposed nonzero yields (set, member row) pairs
        grouped by set — the CSR flat array — without a Python-level walk
        over every membership.
        """
        if self._set_indptr is not None:
            return
        bits = np.unpackbits(
            self._matrix.view(np.uint8), axis=1, bitorder="little"
        )[:, : self._n_sets]
        set_idx, member_rows = np.nonzero(bits.T)
        lengths = np.bincount(set_idx, minlength=self._n_sets)
        indptr = np.zeros(self._n_sets + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        self._set_indptr = indptr
        self._set_flat_rows = member_rows.astype(np.int64, copy=False)

    def _counts_by_members(self, mask: int, words_row: "np.ndarray") -> "np.ndarray":
        """Per-entity positive counts of ``mask`` via a set-major gather.

        Cost is O(n_sets / 8) to unpack the mask plus O(total membership of
        the selected sets) for the gather+bincount — for sub-collections of
        few sets this is far below any bit-matrix pass, whose cost stays
        O(width) per entity regardless of how small the mask is.
        """
        self._ensure_set_rows()
        bits = np.unpackbits(
            words_row.view(np.uint8), bitorder="little"
        )[: self._n_sets]
        sets = np.flatnonzero(bits)
        indptr = self._set_indptr
        starts = indptr[sets]
        lens = indptr[sets + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.zeros(len(self._row_eids), dtype=np.int64)
        offsets = np.zeros(len(lens), dtype=np.int64)
        np.cumsum(lens[:-1], out=offsets[1:])
        gather = np.arange(total, dtype=np.int64) + np.repeat(
            starts - offsets, lens
        )
        rows = self._set_flat_rows[gather]
        return np.bincount(rows, minlength=len(self._row_eids))

    def scan_informative_many(
        self,
        masks: Sequence[int],
        ns: Sequence[int],
        candidates_list: "Sequence[Iterable[int] | None] | None" = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        if not masks:
            return []
        cands = candidates_list or [None] * len(masks)
        results: list = [None] * len(masks)
        full_rows: list[int] = []
        restricted: list[int] = []
        set_major: list[int] = []
        n_entities = len(self._row_eids)
        for i in range(len(masks)):
            cand = cands[i]
            width = (
                len(cand)
                if cand is not None and hasattr(cand, "__len__")
                else n_entities
            )
            if self._set_major_wins(ns[i], width):
                set_major.append(i)
            elif cand is not None:
                restricted.append(i)
            else:
                full_rows.append(i)
        for i in set_major:
            counts = self._counts_by_members(
                masks[i], self._words_of(masks[i])
            )
            keep = (counts > 0) & (counts < ns[i])
            results[i] = (self._row_eids[keep], counts[keep])
        if full_rows:
            self._scan_full_stacked(masks, ns, full_rows, results)
        if restricted:
            self._scan_restricted_stacked(masks, ns, cands, restricted, results)
        return results

    def _scan_full_stacked(
        self,
        masks: Sequence[int],
        ns: Sequence[int],
        rows: list[int],
        results: list,
    ) -> None:
        """Full-entity scans of many masks via chunked broadcast popcount.

        One ``(n_entities, chunk, n_words)`` AND+popcount per chunk answers
        ``chunk`` sessions at once; the chunk size keeps the temporary
        under :data:`_STACKED_SCAN_BUDGET`.
        """
        words = self._stack_words([masks[i] for i in rows])
        per_mask = len(self._row_eids) * self._n_words * 8
        chunk = max(1, _STACKED_SCAN_BUDGET // max(per_mask, 1))
        for start in range(0, len(rows), chunk):
            block = words[start : start + chunk]  # (c, W)
            # (E, c): counts of every entity against every mask of the block
            counts = _popcount_rows(
                self._matrix[:, None, :] & block[None, :, :]
            )
            for j in range(block.shape[0]):
                i = rows[start + j]
                col = counts[:, j]
                keep = (col > 0) & (col < ns[i])
                results[i] = (self._row_eids[keep], col[keep])

    def _scan_restricted_stacked(
        self,
        masks: Sequence[int],
        ns: Sequence[int],
        cands: Sequence,
        rows: list[int],
        results: list,
    ) -> None:
        """Candidate-restricted scans of many masks, word-sharded per mask.

        Deep session masks select few sets, so their packed word vector is
        mostly zero: gathering only the *nonzero words* of each mask bounds
        the AND+popcount at ``n_candidates x min(n_words, popcount words)``
        instead of a full-width pass — the work shrinks with the session
        instead of staying O(collection width).
        """
        empty = np.empty(0, dtype=np.int64)
        for i in rows:
            cand = cands[i]
            if isinstance(cand, np.ndarray):
                eids = cand.astype(np.int64, copy=False)
            else:
                eids = np.fromiter((int(e) for e in cand), dtype=np.int64)
            if len(eids) == 0:
                results[i] = (empty, empty)
                continue
            idx, known = self._rows_for(eids)
            words_row = self._words_of(masks[i])
            counts = np.zeros(len(eids), dtype=np.int64)
            if known.any():
                rows_idx = idx if known.all() else idx[known]
                nz = np.flatnonzero(words_row)
                if len(nz) * 2 < self._n_words:
                    sub = self._matrix[np.ix_(rows_idx, nz)] & words_row[nz]
                else:
                    sub = self._matrix[rows_idx] & words_row
                if known.all():
                    counts = _popcount_rows(sub)
                else:
                    counts[known] = _popcount_rows(sub)
            keep = (counts > 0) & (counts < ns[i])
            results[i] = (eids[keep], counts[keep])

    def positive_counts_many(
        self, masks: Sequence[int], eids: Iterable[int]
    ) -> "list[np.ndarray]":
        if not masks:
            return []
        idx, known = self._rows_for(eids)
        words = self._stack_words(masks)  # (S, W)
        counts = np.zeros((len(masks), len(idx)), dtype=np.int64)
        if known.any():
            rows = self._matrix[idx[known]]  # (E', W)
            per_mask = rows.shape[0] * self._n_words * 8
            chunk = max(1, _STACKED_SCAN_BUDGET // max(per_mask, 1))
            for start in range(0, len(masks), chunk):
                block = words[start : start + chunk]
                counts[start : start + chunk][:, known] = _popcount_rows(
                    block[:, None, :] & rows[None, :, :]
                )
        return list(counts)

"""First-use micro-calibration of the kernel routing constants.

Backend routing used to rest on two magic numbers: ``AUTO_MIN_CELLS`` (the
bit-matrix size above which ``backend="auto"`` switches from the big-int
reference to the vectorized kernel) and the ``member_cost``/``row_cost``
units of the stacked-scan cost model (set-major CSR gather vs bit-matrix
row pass, :mod:`repro.core.kernels.numpy_backend`).  Both are machine
dependent: the crossover moves with NumPy's fixed per-call overhead and the
gather/popcount throughput ratio moves with cache sizes.

This module replaces them with a :class:`KernelTuning` measured once per
process.  On the first :func:`get_tuning` call a ~tens-of-milliseconds
micro-benchmark times the same deterministic synthetic workload through
both backends and through both stacked-scan strategies, derives the
crossover and the cost units, and caches the result for the lifetime of
the process (build a thousand collections, calibrate once).

Calibration only ever changes *routing*, never results — every path is
exact (see the parity contract in :mod:`repro.core.kernels.base`), which is
what makes measuring instead of hard-coding safe.  Set ``REPRO_TUNING=off``
to skip measurement and use the legacy constants (useful for perfectly
reproducible benchmark baselines); :func:`set_tuning` overrides the values
explicitly (the randomized parity harness forces each strategy this way).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable

#: Environment variable controlling calibration: ``auto`` (default,
#: measure on first use) or ``off`` (use :data:`DEFAULT_TUNING`).
TUNING_ENV_VAR = "REPRO_TUNING"

#: Legacy fixed crossover: bit-matrix cells below which ``auto`` keeps the
#: big-int backend.  Used verbatim when calibration is off or numpy is
#: missing, and re-exported as ``kernels.AUTO_MIN_CELLS`` for callers that
#: want the uncalibrated default.
DEFAULT_AUTO_MIN_CELLS = 1 << 15

#: Legacy stacked-scan cost units (in "row-pass elements"): the set-major
#: gather pays ``member_cost`` per membership of the selected sets, a row
#: pass pays ``row_cost`` per (candidate row, nonzero mask word) element.
DEFAULT_MEMBER_COST = 2.0
DEFAULT_ROW_COST = 1.0

#: Uncalibrated cost of one *native* row-pass element relative to a numpy
#: row-pass element (the fused C sweep skips numpy's temporaries, so its
#: per-element cost is a fraction of the ufunc pipeline's).  Scales the
#: ``row_cost`` term in :meth:`NativeKernel._set_major_wins`, moving the
#: CSR-gather crossover toward smaller masks.
DEFAULT_NATIVE_ROW_COST = 0.4

#: Total collection membership below which the single-mask scan never
#: builds the set-major CSR mirror: on tiny collections the member-union
#: walk is already free and the mirror build is pure overhead.
CSR_MIN_MEMBERSHIP = 4096

#: Uncalibrated crossover for the in-C threaded scan: bit-matrix cells
#: (``n_entities * n_words``) a stacked scan must touch per mask before
#: ``NativeKernel(scan_threads=N)`` dispatches the pthread pool instead
#: of the serial sweep.  Below it the pool's wake/merge barrier costs
#: more than the scan; threading never changes results, only which code
#: path produces them.
DEFAULT_THREAD_MIN_CELLS = 1 << 18

#: Calibrated ``auto_min_cells`` is clamped into this range so that a noisy
#: measurement can neither route toy collections (``tests`` worked
#: examples) to numpy nor keep genuinely large matrices on the reference
#: backend.
AUTO_MIN_CELLS_CLAMP = (1 << 12, 1 << 20)

#: Clamp for the calibrated member/row unit-cost ratio.
MEMBER_COST_CLAMP = (0.25, 16.0)

#: Clamp for the calibrated native/numpy row unit-cost ratio.  The bottom
#: guards against a degenerate timing claiming a free scan; the top
#: allows ratios above 1.0 because a compiler without a hardware-popcount
#: path (e.g. MSVC on non-x64 targets falls back to the software
#: popcount) can genuinely produce a native pass slower than numpy's
#: SIMD pipeline — calibration must be able to say so and push the
#: CSR-gather crossover the other way.
NATIVE_ROW_COST_CLAMP = (1.0 / 64.0, 8.0)

#: Clamp for the calibrated threaded-scan crossover.  The bottom keeps
#: barrier-dominated toy scans serial even under a flattering
#: measurement; the top is where calibration lands when threads cannot
#: help at all (a single-core box), effectively disabling dispatch.
THREAD_MIN_CELLS_CLAMP = (1 << 14, 1 << 26)


@dataclass(frozen=True)
class KernelTuning:
    """Routing constants consumed by ``make_kernel`` and the numpy kernel.

    ``source`` records where the values came from (``default``,
    ``calibrated`` or ``override``) — surfaced in benchmark reports so a
    perf trajectory can tell tuned runs from fallback runs.
    """

    auto_min_cells: int = DEFAULT_AUTO_MIN_CELLS
    member_cost: float = DEFAULT_MEMBER_COST
    row_cost: float = DEFAULT_ROW_COST
    native_row_cost: float = DEFAULT_NATIVE_ROW_COST
    thread_min_cells: int = DEFAULT_THREAD_MIN_CELLS
    source: str = "default"


#: The uncalibrated fallback (legacy magic numbers).
DEFAULT_TUNING = KernelTuning()

_lock = threading.Lock()
_tuning: KernelTuning | None = None


def get_tuning() -> KernelTuning:
    """The process-wide tuning, calibrating on first use unless disabled."""
    global _tuning
    if _tuning is not None:
        return _tuning
    with _lock:
        if _tuning is None:
            mode = (os.environ.get(TUNING_ENV_VAR, "auto") or "auto").lower()
            if mode in ("off", "default", "0", "false", "no"):
                _tuning = DEFAULT_TUNING
            else:
                _tuning = calibrate()
    return _tuning


def set_tuning(tuning: KernelTuning | None) -> None:
    """Install an explicit tuning, or reset to uncalibrated with ``None``.

    Resetting makes the next :func:`get_tuning` call re-consult the
    environment (and re-calibrate when enabled).
    """
    global _tuning
    with _lock:
        _tuning = (
            replace(tuning, source="override") if tuning is not None else None
        )


def _avg_seconds(fn: Callable[[], object], min_seconds: float = 0.002) -> float:
    """Average per-call seconds of ``fn``, repeated until measurable.

    Micro-ops here run in microseconds; accumulating at least
    ``min_seconds`` keeps the estimate above timer resolution without
    letting the whole calibration exceed a few tens of milliseconds.
    """
    fn()  # warm-up: JIT-free but primes caches and lazy structures
    calls = 0
    total = 0.0
    while total < min_seconds:
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
        calls += 1
        if calls >= 64:  # pathological timer/fn: bail with what we have
            break
    return total / max(calls, 1)


def _synthetic_index(
    n_sets: int, n_entities: int, set_size: int, seed: int = 0xC0FFEE
) -> tuple[tuple[frozenset[int], ...], dict[int, int]]:
    """A deterministic random inverted index for the micro-benchmark."""
    rng = random.Random(seed)
    sets: list[frozenset[int]] = []
    entity_masks = {e: 0 for e in range(n_entities)}
    for idx in range(n_sets):
        members = rng.sample(range(n_entities), set_size)
        sets.append(frozenset(members))
        for e in members:
            entity_masks[e] |= 1 << idx
    return tuple(sets), entity_masks


def calibrate() -> KernelTuning:
    """Measure the routing constants on this machine (one-off, ~tens of ms).

    Without numpy there is nothing to route between, so the defaults are
    returned unchanged.
    """
    from .bigint import BigIntKernel
    from .numpy_backend import HAS_NUMPY, NumpyKernel

    if not HAS_NUMPY:
        return DEFAULT_TUNING

    # -- full-scan throughput of both backends at a mid-size matrix ------ #
    n_sets, n_entities, set_size = 192, 192, 12
    sets, masks = _synthetic_index(n_sets, n_entities, set_size)
    full = (1 << n_sets) - 1
    big = BigIntKernel(sets, masks, n_sets)
    vec = NumpyKernel(sets, masks, n_sets, tuning=DEFAULT_TUNING)
    cells = n_sets * n_entities
    t_big = _avg_seconds(lambda: big.scan_informative(full, n_sets, None))
    t_vec = _avg_seconds(lambda: vec.scan_informative(full, n_sets, None))

    # -- numpy fixed per-call overhead from a tiny matrix ---------------- #
    s_sets, s_masks = _synthetic_index(16, 32, 4, seed=0xBEEF)
    s_full = (1 << 16) - 1
    s_vec = NumpyKernel(s_sets, s_masks, 16, tuning=DEFAULT_TUNING)
    t_overhead = _avg_seconds(lambda: s_vec.scan_informative(s_full, 16, None))

    # Solve ``big_rate * cells == overhead + vec_rate * cells`` for the
    # matrix size where vectorization starts winning.
    big_rate = t_big / cells
    vec_rate = max((t_vec - t_overhead) / cells, 0.0)
    if big_rate > vec_rate and t_overhead > 0.0:
        crossover = int(t_overhead / (big_rate - vec_rate))
    else:  # pragma: no cover - degenerate timing; keep the legacy constant
        crossover = DEFAULT_AUTO_MIN_CELLS
    lo, hi = AUTO_MIN_CELLS_CLAMP
    auto_min_cells = min(max(crossover, lo), hi)

    # -- set-major gather vs row-pass unit costs ------------------------- #
    # Unit of the row pass: one (candidate row, word) AND+popcount element.
    # Both micro-workloads are small enough that NumPy's fixed per-call
    # overhead would dominate a naive division and bias the ratio toward
    # whichever side touches fewer elements; subtract the measured
    # overhead so the units reflect *marginal* throughput.
    row_unit = max(t_vec - t_overhead, 1e-9) / (n_entities * vec._n_words)
    small_mask = (1 << 32) - 1  # 32 sets: firmly membership-bound
    vec._ensure_set_rows()
    memberships = sum(len(sets[i]) for i in range(32))
    t_member = _avg_seconds(
        lambda: vec._counts_by_members(small_mask, vec._words_of(small_mask))
    )
    member_unit = max(t_member - t_overhead, 1e-9) / max(memberships, 1)
    lo_m, hi_m = MEMBER_COST_CLAMP
    member_cost = min(max(member_unit / max(row_unit, 1e-12), lo_m), hi_m)

    # -- native crossover: fused C sweep vs the numpy row pass ----------- #
    # Measured on the same mid-size full scan so the ratio captures the
    # marginal per-element cost; routing-only, like everything here.
    native_row_cost = DEFAULT_NATIVE_ROW_COST
    thread_min_cells = DEFAULT_THREAD_MIN_CELLS
    from .native_backend import HAS_NATIVE, NativeKernel

    if HAS_NATIVE:
        nat = NativeKernel(sets, masks, n_sets, tuning=DEFAULT_TUNING)
        t_nat = _avg_seconds(
            lambda: nat.scan_informative(full, n_sets, None)
        )
        native_unit = max(t_nat - t_overhead, 1e-9) / (
            n_entities * nat._n_words
        )
        lo_n, hi_n = NATIVE_ROW_COST_CLAMP
        native_row_cost = min(
            max(native_unit / max(row_unit, 1e-12), lo_n), hi_n
        )

        # -- threaded-scan crossover: pool barrier vs serial sweep ------- #
        # The pthread pool's fixed cost per dispatch (wake, band merge) is
        # measured directly by running the same stacked scan serially and
        # with two bands on the calibration matrix (small enough that the
        # barrier dominates).  Breakeven with T bands saves
        # ``cells * native_unit * (1 - 1/T)``; solve at T=2.  On a
        # single-core box threads cannot help, so the crossover pins to
        # the top clamp (dispatch effectively disabled by default).
        from ._native import ext as _ext

        lo_t, hi_t = THREAD_MIN_CELLS_CLAMP
        if _ext is not None and _ext.threaded_scan_available():
            if (os.cpu_count() or 1) <= 1:
                thread_min_cells = hi_t
            else:
                import numpy as _np

                words = nat._stack_words([full])
                ns_arr = _np.array([n_sets], dtype=_np.int64)
                n_rows = len(nat._row_eids)
                out_r = _np.empty(n_rows, dtype=_np.int64)
                out_c = _np.empty(n_rows, dtype=_np.int64)
                ip = _np.empty(2, dtype=_np.int64)
                t_ser = _avg_seconds(
                    lambda: _ext.scan_informative_many(
                        nat._matrix, nat._n_words, words, ns_arr, out_r,
                        out_c, ip,
                    )
                )
                t_thr = _avg_seconds(
                    lambda: _ext.scan_informative_threaded(
                        nat._matrix, nat._n_words, words, ns_arr, 2, out_r,
                        out_c, ip,
                    )
                )
                overhead = max(t_thr - t_ser, 1e-7)
                crossover_t = int(2.0 * overhead / max(native_unit, 1e-12))
                thread_min_cells = min(max(crossover_t, lo_t), hi_t)

    return KernelTuning(
        auto_min_cells=auto_min_cells,
        member_cost=member_cost,
        row_cost=DEFAULT_ROW_COST,
        native_row_cost=native_row_cost,
        thread_min_cells=thread_min_cells,
        source="calibrated",
    )

"""Abstract interface shared by the entity-statistics backends.

A kernel is built once per :class:`~repro.core.collection.SetCollection`
from the collection's immutable inverted index and answers *batched*
questions about sub-collections (plain int bitmasks, see
:mod:`repro.core.bitmask`):

* :meth:`positive_counts` — ``|C & mask[e]|`` for many entities at once;
* :meth:`partition_many` — the ``(C+, C-)`` splits for many entities;
* :meth:`scan_informative` — the informative-entity scan of Sec. 3, the
  single hottest loop in the system;
* :meth:`scan_informative_many` / :meth:`positive_counts_many` — the
  *stacked-mask* forms: the same statistics for many sub-collections in one
  kernel pass, the building block of multi-session serving
  (:mod:`repro.serve.engine`).

Backends may additionally execute *sharded*
(:mod:`repro.core.kernels.sharded`): the set axis partitioned into
contiguous ranges whose exact per-shard statistics merge by summation /
shifted OR on a worker pool.

The contract is *exact* equivalence between backends — sharded or not:
identical counts, identical masks and — because every selector breaks ties
deterministically on ``(score, unevenness, entity id)`` — identical
selections.  To make the
no-candidates scan comparable across backends its result is defined to be
ordered by ascending entity id; with explicit ``candidates`` the caller's
order is preserved (tree construction passes a parent's informative
entities to its children).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..bitmask import iter_bits


@dataclass(frozen=True)
class KernelDelta:
    """Slot-level description of one collection delta, for kernel reuse.

    :meth:`~repro.core.collection.SetCollection.apply_delta` computes this
    once and hands it to :func:`repro.core.kernels.delta_kernel` so the new
    epoch's kernel can patch a copy of its parent instead of repacking the
    whole index.  Both tuples are sorted ascending.

    Attributes
    ----------
    dirty_new:
        Set slots (columns) of the **new** index whose content must be
        (re)written: updated in place, replaced, appended, or filled by a
        set swapped down from the truncated tail.
    dirty_old:
        Set slots of the **old** index whose previous content is gone:
        updated, replaced, vacated by a swap, or truncated off the tail.
        Every slot ``< new n_sets`` in here is also in ``dirty_new``; the
        remainder lie in the truncated range ``[new n_sets, old n_sets)``.
    """

    dirty_new: tuple[int, ...]
    dirty_old: tuple[int, ...]


class EntityStatsKernel(ABC):
    """Batched entity-statistics over one immutable inverted index."""

    #: backend name as accepted by ``SetCollection(backend=...)``
    name: str = "?"

    #: number of set-range shards this kernel executes over; single-kernel
    #: backends are their own one shard (``ShardedKernel`` overrides)
    n_shards: int = 1

    def __init__(
        self,
        sets: Sequence[frozenset[int]],
        entity_masks: dict[int, int],
        n_sets: int,
    ) -> None:
        self._sets = sets
        self._entity_masks = entity_masks
        self._n_sets = n_sets
        #: all-sets mask; bits above it select nothing and are dropped
        self._valid = (1 << n_sets) - 1

    def member_union(self, mask: int) -> set[int]:
        """Union of entities over the sets selected by ``mask``.

        The one inverted-index walk shared by every backend's
        small-sub-collection scan path (and by
        :meth:`~repro.core.collection.SetCollection.entities_in`).

        Bits above ``n_sets`` are ignored: they select no set, exactly as
        the numpy backend's word packing drops them, so every scan path
        tolerates stray high mask bits identically.
        """
        if mask.bit_length() > self._n_sets:  # O(1) test, rare case pays
            mask &= self._valid
        union: set[int] = set()
        for idx in iter_bits(mask):
            union.update(self._sets[idx])
        return union

    @abstractmethod
    def positive_counts(self, mask: int, eids: Iterable[int]) -> "Sequence[int]":
        """``|mask & entity_mask(e)|`` for every ``e`` in ``eids``, in order.

        Unknown entity ids count 0.  Backends may return a list or a NumPy
        integer array; callers must treat the result as a read-only
        sequence of ints parallel to ``eids``.
        """

    @abstractmethod
    def partition_many(
        self, mask: int, eids: Iterable[int]
    ) -> list[tuple[int, int]]:
        """``(C+, C-)`` big-int mask pairs for every ``e`` in ``eids``.

        Semantics per entity match
        :meth:`~repro.core.collection.SetCollection.partition`: the positive
        side is ``mask & entity_mask(e)``, the negative side keeps every
        remaining bit of ``mask``.
        """

    @abstractmethod
    def scan_informative(
        self,
        mask: int,
        n_selected: int,
        candidates: Iterable[int] | None,
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Informative entities of ``mask`` and their positive counts.

        Returns parallel sequences ``(eids, counts)`` with
        ``0 < count < n_selected`` (``n_selected`` is ``popcount(mask)``,
        passed in because every caller already has it).  With
        ``candidates=None`` the scan covers every entity of the collection
        and the result is ordered by ascending entity id; otherwise only
        ``candidates`` are examined, in their given order.
        """

    def scan_informative_many(
        self,
        masks: Sequence[int],
        ns: Sequence[int],
        candidates_list: "Sequence[Iterable[int] | None] | None" = None,
    ) -> list[tuple[Sequence[int], Sequence[int]]]:
        """Stacked :meth:`scan_informative` over many sub-collections.

        ``masks``/``ns`` are parallel (``ns[i] == popcount(masks[i])``).
        Per-mask results are defined to be *identical* to the full scan
        ``scan_informative(masks[i], ns[i], None)`` — backends may only
        change how the work is batched, never what comes out.

        ``candidates_list`` entries are optimisation *hints*, not filters:
        each one, when given, MUST be a superset of its mask's informative
        entities in ascending entity-id order (e.g. the informative
        entities of any ancestor sub-collection — narrowing only shrinks
        the informative set).  Under that precondition a hint-restricted
        scan returns exactly the full-scan result while touching far fewer
        rows; backends are also free to ignore the hint when another
        strategy (e.g. a set-major gather) is cheaper.
        """
        cands = candidates_list or [None] * len(masks)
        return [
            self.scan_informative(mask, n, cand)
            for mask, n, cand in zip(masks, ns, cands)
        ]

    def positive_counts_many(
        self, masks: Sequence[int], eids: Iterable[int]
    ) -> list[Sequence[int]]:
        """Stacked :meth:`positive_counts`: the same entities against many
        sub-collections.

        Returns one count sequence per mask, each identical to
        ``positive_counts(masks[i], eids)``.
        """
        eids = list(eids)
        return [self.positive_counts(mask, eids) for mask in masks]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} backend={self.name}>"
